"""AES-NI-aware CPU baseline: cost model plus a full execution backend.

The paper's Figure 10 argument is that the GPU's win is *conditional*:
at large batch the fused expansion amortizes launch overheads and the
GPU's raw AES rate dominates, but at small batch a server-class CPU
with AES-NI answers a query in a few tree walks' worth of hardware AES
and never pays a kernel launch.  Reproducing that argument needs an
executable CPU side, which this module provides in the same two pieces
the GPU substrate has:

* :class:`CpuCostModel` — analytic latency for one batch on a modeled
  socket (:class:`CpuSpec`).  Three terms, mirroring the simulator's
  compute/memory/overhead split: PRF work at the socket's AES-NI block
  rate scaled by the PRF's ``cpu_cost`` (AES-128 via AES-NI = 1.0, so
  ChaCha20's pure-software 4.0 is where the GPU's lead is largest), a
  memory-bandwidth term for streaming the expanded shares through the
  table dot product, and fixed per-batch + per-query dispatch
  overheads.  Streaming batches additionally pay the wire-key parse;
  resident arenas amortize it to zero, exactly like the GPU plans.
* :class:`CpuBackend` — the full :class:`~repro.exec.ExecutionBackend`
  contract (``plan`` / ``run`` / ``plan_key`` / ``run_with_plan`` /
  ``model_latency_s``).  Answers come from the reference level-by-level
  walk (:func:`repro.dpf.dpf.eval_full`), so the backend is bit-exact
  to every GPU backend and drops behind :class:`~repro.exec.plan_cache
  .PlanCache`, :class:`~repro.serve.fleet.FleetScheduler`, and the
  serving loops unchanged.  Unlike the GPU model, the CPU prices
  *every* shape — host memory is ample and there is no occupancy
  cliff — so ``model_latency_s`` never returns ``None`` and never
  raises, which is what lets drain-time admission stop failing open
  when a CPU sits in the fleet.

Calibration: :data:`CPU_BASELINE`'s AES-NI block rate is set so the
aes128 / 2^20-entry large-batch point lands at the paper's roughly
13-14x GPU-over-CPU throughput ratio against the calibrated V100
model, while a single-query batch still beats the V100's modeled
per-batch overheads across the bench grid's table sizes — the two
anchors of the Figure 10 crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.prf import get_prf
from repro.dpf.dpf import eval_full, eval_range
from repro.dpf.ggm import log2_ceil
from repro.dpf.keys import key_size_bytes
from repro.exec.backend import ExecutionBackend
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.gpu.arena import ExpansionWorkspace
from repro.gpu.kernel import KernelPhase, KernelPlan, KernelStats
from repro.gpu.multigpu import MultiGpuStats, ShardReport
from repro.gpu.scheduler import Selection
from repro.gpu.strategies import StrategyCost

CPU_STRATEGY = "cpu_reference"
"""Strategy name CPU plans report.  Not a :mod:`repro.gpu.strategies`
registry entry — the CPU has exactly one traversal (the reference
walk), so there is no selection to make and nothing to look up."""


@dataclass(frozen=True)
class CpuSpec:
    """Modeled parameters of one server-class CPU socket.

    Attributes:
        name: Human-readable model name (shows up in fleet routing
            labels exactly like a GPU's device name).
        aes_rate: Socket-wide AES-128 block evaluations/s with AES-NI,
            all cores engaged.  Per-PRF rates divide this by the PRF's
            ``cpu_cost`` (the CPU-side analogue of
            :attr:`~repro.gpu.device.DeviceSpec.aes_rate` +
            ``gpu_cost``).
        mem_bandwidth: Sustained memory bandwidth, bytes/s — prices
            streaming the expanded share matrix through the table dot
            product.
        parse_bandwidth: Wire-key parse rate, bytes/s (the host-side
            ingest cost streaming batches pay and resident arenas
            amortize away).
        batch_overhead_s: Fixed per-batch dispatch cost (thread-pool
            wake, NUMA placement) — the CPU's entire analogue of a
            kernel launch, and why it wins small batches.
        per_query_overhead_s: Fixed per-query bookkeeping cost.
        threads: Hardware thread contexts (caps exposed parallelism in
            the reported utilization).
    """

    name: str
    aes_rate: float
    mem_bandwidth: float
    parse_bandwidth: float
    batch_overhead_s: float
    per_query_overhead_s: float
    threads: int


CPU_BASELINE = CpuSpec(
    name="xeon-aesni",
    # ~13.5x below the V100's calibrated 2.9e9: the Figure 10 / Table 4
    # large-batch aes128 throughput gap at 2^20 entries.
    aes_rate=2.15e8,
    mem_bandwidth=100e9,  # six DDR4 channels, sustained
    parse_bandwidth=2.0e9,  # matches repro.gpu.sim.HOST_PARSE_BANDWIDTH
    batch_overhead_s=30e-6,
    per_query_overhead_s=1e-6,
    threads=32,
)
"""The calibrated default socket (see module docstring)."""


class CpuCostModel:
    """Analytic batch latency on a :class:`CpuSpec`.

    Emits the same :class:`~repro.gpu.kernel.KernelPlan` /
    :class:`~repro.gpu.kernel.KernelStats` vocabulary the GPU simulator
    does, so plans from both sides compare field-for-field in fleet
    routing, bench artifacts, and figure sweeps.

    Args:
        spec: Socket to price against.
        entry_bytes: Bytes per table entry.
    """

    def __init__(self, spec: CpuSpec = CPU_BASELINE, entry_bytes: int = 8):
        self.spec = spec
        self.entry_bytes = entry_bytes
        self._memo: dict[tuple[int, int, str, bool], Selection] = {}

    def _build(
        self, batch_size: int, table_entries: int, prf_name: str, resident: bool
    ) -> Selection:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        depth = log2_ceil(table_entries)
        padded_domain = 1 << depth
        # The reference walk expands every level of the GGM tree: the
        # frontier doubles per level, so total PRF blocks per key are
        # 2 + 4 + ... + 2^depth = 2 * (padded_domain - 1).
        prf_blocks = batch_size * 2 * max(padded_domain - 1, 1)
        key_bytes = batch_size * key_size_bytes(table_entries, prf_name)
        share_bytes = batch_size * table_entries * self.entry_bytes
        plan = KernelPlan(
            strategy=CPU_STRATEGY,
            batch_size=batch_size,
            table_entries=table_entries,
            entry_bytes=self.entry_bytes,
            fused=False,
            phases=[
                KernelPhase(
                    label="expand+dot",
                    prf_blocks=prf_blocks,
                    parallel_width=min(batch_size, self.spec.threads),
                    # Expanded shares are written once and read back
                    # through the dot product; the table streams once.
                    bytes_read=share_bytes + table_entries * self.entry_bytes,
                    bytes_written=share_bytes,
                    mac_ops=batch_size * table_entries,
                    launches=0,
                )
            ],
            # Frontier ping-pong buffers plus the expanded share rows.
            peak_mem_bytes=2 * padded_domain * 16 + share_bytes,
            host_bytes_in=0 if resident else key_bytes,
            host_bytes_out=batch_size * self.entry_bytes,
            resident_bytes=key_bytes if resident else 0,
            prf_name=prf_name,
            prf_cost=get_prf(prf_name).cpu_cost,
        )
        rate = self.spec.aes_rate / plan.prf_cost
        compute = prf_blocks / rate
        phase = plan.phases[0]
        memory = (phase.bytes_read + phase.bytes_written) / self.spec.mem_bandwidth
        overhead = (
            self.spec.batch_overhead_s
            + batch_size * self.spec.per_query_overhead_s
            + plan.host_bytes_in / self.spec.parse_bandwidth
        )
        latency = compute + memory + overhead
        stats = KernelStats(
            latency_s=latency,
            throughput_qps=batch_size / latency,
            utilization=min(1.0, batch_size / self.spec.threads),
            peak_mem_bytes=plan.peak_mem_bytes,
            prf_blocks=prf_blocks,
            compute_time_s=compute,
            memory_time_s=memory,
            overhead_time_s=overhead,
            feasible=True,  # host memory is ample; every shape prices
        )
        return Selection(
            strategy=CPU_STRATEGY,
            plan=plan,
            stats=stats,
            rankings=((CPU_STRATEGY, stats),),
        )

    def select(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
    ) -> Selection:
        """The (single) CPU plan for a workload shape, memoized."""
        key = (batch_size, table_entries, prf_name, resident)
        selection = self._memo.get(key)
        if selection is None:
            selection = self._build(batch_size, table_entries, prf_name, resident)
            self._memo[key] = selection
        return selection

    def latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
    ) -> float:
        """Modeled batch latency; defined for every shape."""
        return self.select(batch_size, table_entries, prf_name, resident).stats.latency_s


class CpuBackend(ExecutionBackend):
    """The CPU baseline behind the standard execution protocol.

    ``run`` answers through the reference walk (bit-identical to every
    GPU backend); ``plan`` prices through :class:`CpuCostModel`.  The
    backend exposes its :class:`CpuSpec` as ``device`` so fleet labels
    and heterogeneous routing treat it exactly like a GPU entry.

    Args:
        spec: Socket model (default: the calibrated baseline).
    """

    name = "cpu"
    device_class = "cpu"

    def __init__(self, spec: CpuSpec = CPU_BASELINE):
        self.device = spec
        self._models: dict[int, CpuCostModel] = {}

    def _model(self, entry_bytes: int) -> CpuCostModel:
        model = self._models.get(entry_bytes)
        if model is None:
            model = CpuCostModel(self.device, entry_bytes=entry_bytes)
            self._models[entry_bytes] = model
        return model

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        arena = request.arena()
        selection = self._model(request.entry_bytes).select(
            arena.batch,
            arena.domain_size,
            prf_name=request.resolved_prf_name,
            resident=request.resident,
        )
        latency = selection.stats.latency_s
        return ExecutionPlan(
            backend=self.name,
            resident=request.resident,
            stats=MultiGpuStats(
                batch_size=arena.batch,
                table_entries=arena.domain_size,
                prf_name=request.resolved_prf_name,
                latency_s=latency,
                throughput_qps=arena.batch / latency,
                shards=(
                    ShardReport(
                        device_name=self.device.name,
                        batch_size=arena.batch,
                        selection=selection,
                    ),
                ),
            ),
        )

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self._model(entry_bytes).latency_s(
            batch_size, table_entries, prf_name, resident
        )

    @property
    def plan_key(self) -> tuple:
        return (self.name, self.device.name)

    def run(self, request: EvalRequest) -> EvalResult:
        return self.run_with_plan(request, self.plan(request))

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        # The reference walk allocates per key; the cache's pinned
        # workspace is a GPU-scratch concept with nothing to pin here.
        del workspace
        prf = get_prf(request.resolved_prf_name)
        lo, hi = request.resolved_range()
        if (lo, hi) == (0, request.arena().domain_size):
            rows = [eval_full(key, prf) for key in request.arena().to_keys()]
        else:
            rows = [
                eval_range(key, prf, lo, hi) for key in request.arena().to_keys()
            ]
        # CPU_STRATEGY is not a GPU-strategy registry name, so the cost
        # comes from the plan's own kernel recipe, not merged_cost().
        # Like merged_cost, it describes the *plan's* batch (the bucket
        # size under a PlanCache), not the exact request.
        shard = plan.stats.shards[0]
        cost = StrategyCost(
            strategy=CPU_STRATEGY,
            batch_size=plan.stats.batch_size,
            domain_size=plan.stats.table_entries,
            prf_blocks=shard.selection.plan.total_prf_blocks,
            peak_mem_bytes=shard.selection.plan.peak_mem_bytes,
            parallel_width=min(plan.stats.batch_size, self.device.threads),
        )
        return EvalResult(answers=np.stack(rows), plan=plan, cost=cost)
