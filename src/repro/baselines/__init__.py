"""Non-GPU baseline execution models (the paper's comparison points).

The reproduction's main substrate models GPUs (:mod:`repro.gpu`); this
package holds the baselines those numbers are compared *against*.
Today that is the AES-NI-aware CPU baseline (:mod:`repro.baselines
.cpu`) behind Figure 10's GPU-vs-CPU crossover argument: a
:class:`~repro.baselines.cpu.CpuCostModel` priced from the PRFs'
``cpu_cost`` metadata and a :class:`~repro.baselines.cpu.CpuBackend`
speaking the full :class:`~repro.exec.ExecutionBackend` protocol, so a
CPU can sit in the same plan caches, fleets, and serving loops as the
modeled GPUs.
"""

from repro.baselines.cpu import CPU_BASELINE, CpuBackend, CpuCostModel, CpuSpec

__all__ = [
    "CPU_BASELINE",
    "CpuBackend",
    "CpuCostModel",
    "CpuSpec",
]
