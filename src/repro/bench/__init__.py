"""Benchmark harness for the DPF hot path.

Every perf-oriented PR is judged against the numbers this package
produces: wall-clock timing of ``eval_full`` / ``eval_batch`` across a
PRF x strategy x batch x log-domain x ingest-mode grid (how the keys
arrive: per-call object stacking, wire-bytes parsing, or a persistent
key arena), reported as queries per second, nanoseconds per PRF block,
and peak metered bytes, and emitted as ``BENCH_dpf.json`` so the
trajectory is diffable across commits.  Schema 4 added the
``pir_roundtrip`` family (the end-to-end two-server pipeline timed over
the same ingest-mode axis); schema 5 adds the ``serving`` family (the
async batch-aggregation loop under concurrent clients, reporting QPS
and p50/p99 latency vs offered load and SLO deadline); schema 9 adds
the ``backend_select`` family (the Figure 10 CPU-vs-GPU-vs-hybrid
comparison, priced through the same cost models the fleet router acts
on, answers verified bit-exact before pricing).

``scripts/bench.py`` is the CLI front end; ``--smoke`` runs the small
CI grid, ``--list``/``--filter`` inspect and subset the case grid.
"""

from repro.bench.harness import (
    BACKEND_SELECT,
    BACKEND_SELECT_BACKENDS,
    INGEST_MODES,
    PIR_ROUNDTRIP,
    SERVING,
    BenchCase,
    BenchResult,
    default_grid,
    run_case,
    run_grid,
    smoke_grid,
    results_payload,
    write_results,
)

__all__ = [
    "BACKEND_SELECT",
    "BACKEND_SELECT_BACKENDS",
    "BenchCase",
    "BenchResult",
    "INGEST_MODES",
    "PIR_ROUNDTRIP",
    "SERVING",
    "default_grid",
    "smoke_grid",
    "run_case",
    "run_grid",
    "results_payload",
    "write_results",
]
