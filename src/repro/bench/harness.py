"""Timing harness for full-domain DPF evaluation.

Methodology (see ``docs/performance.md``):

* Keys are generated once per case from a fixed RNG seed, so repeated
  runs measure the same work.
* Each case runs ``warmup`` untimed iterations (populating cipher
  scratch buffers and caches), then ``repeats`` timed iterations; the
  *minimum* wall time is reported, which is the standard way to reject
  scheduler noise on a shared machine.
* ``prf_blocks`` is the analytic count from the strategy cost model
  (for strategies) or the reference ``2 * (2**n - 1)`` per query (for
  the reference evaluator), so ``ns_per_prf_block`` is comparable
  across strategies that do different amounts of recomputation.
* ``peak_mem_bytes`` comes from one extra metered run through
  :class:`~repro.gpu.memory.MemoryMeter` (the Figure 6 working set);
  the timed runs are unmetered.
* Unless disabled, every case's output is verified bit-identical to
  ``repro.dpf.dpf.eval_full`` before timing — a benchmark of a wrong
  kernel is worse than no benchmark.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.crypto import available_prfs, get_prf
from repro.dpf import eval_full, gen
from repro.gpu import MemoryMeter, available_strategies, get_strategy

REFERENCE = "reference"
"""Pseudo-strategy name for the reference ``dpf.eval_full`` walk."""

SCHEMA_VERSION = 2


@dataclass(frozen=True)
class BenchCase:
    """One grid point: what to run and how often.

    Attributes:
        prf: PRF registry name.
        strategy: Strategy registry name, or :data:`REFERENCE` for the
            reference evaluator.
        batch: Queries per invocation (the reference path loops).
        log_domain: Table size exponent; L = 2**log_domain.
        repeats: Timed iterations (min is reported).
        warmup: Untimed warm-up iterations.
    """

    prf: str
    strategy: str
    batch: int
    log_domain: int
    repeats: int = 3
    warmup: int = 1

    @property
    def domain_size(self) -> int:
        return 1 << self.log_domain


@dataclass(frozen=True)
class BenchResult:
    """Measured numbers for one :class:`BenchCase`."""

    prf: str
    strategy: str
    batch: int
    log_domain: int
    domain_size: int
    seconds: float
    qps: float
    prf_blocks: int
    ns_per_prf_block: float
    peak_mem_bytes: int
    verified: bool


def _reference_blocks(batch: int, log_domain: int) -> int:
    """PRF blocks of the reference walk: 2(2^n - 1) per query."""
    return batch * (2 ** (log_domain + 1) - 2)


def _make_keys(case: BenchCase, seed: int = 7) -> list:
    prf = get_prf(case.prf)
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(case.batch):
        alpha = int(rng.integers(0, case.domain_size))
        k0, k1 = gen(alpha, case.domain_size, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    return keys


def run_case(case: BenchCase, verify: bool = True) -> BenchResult:
    """Execute one grid point and return its measurements.

    Args:
        case: The grid point.
        verify: Assert the evaluated shares are bit-identical to the
            reference evaluator before timing (skipped for the
            reference itself).

    Raises:
        ValueError: If verification fails — the numbers would be
            meaningless.
    """
    prf = get_prf(case.prf)
    keys = _make_keys(case)

    if case.strategy == REFERENCE:
        def work() -> np.ndarray:
            return np.stack([eval_full(key, prf) for key in keys])

        prf_blocks = _reference_blocks(case.batch, case.log_domain)
        peak_mem = 0
        verified = False
    else:
        strategy = get_strategy(case.strategy)

        def work() -> np.ndarray:
            return strategy.eval_batch(keys, prf)

        prf_blocks = strategy.cost(case.batch, case.domain_size).prf_blocks
        meter = MemoryMeter()
        got = strategy.eval_batch(keys, prf, meter)
        peak_mem = meter.peak
        verified = False
        if verify:
            want = np.stack([eval_full(key, prf) for key in keys])
            if not np.array_equal(got, want):
                raise ValueError(
                    f"{case.strategy} output diverged from the reference for {case}"
                )
            verified = True

    for _ in range(case.warmup):
        work()
    best = float("inf")
    for _ in range(case.repeats):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)

    return BenchResult(
        prf=case.prf,
        strategy=case.strategy,
        batch=case.batch,
        log_domain=case.log_domain,
        domain_size=case.domain_size,
        seconds=best,
        qps=case.batch / best,
        prf_blocks=prf_blocks,
        ns_per_prf_block=best * 1e9 / prf_blocks,
        peak_mem_bytes=peak_mem,
        verified=verified,
    )


def run_grid(
    cases: Iterable[BenchCase],
    verify: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every case, reporting progress through ``progress``."""
    results = []
    for case in cases:
        if progress is not None:
            progress(
                f"{case.prf:12s} {case.strategy:18s} B={case.batch:<3d} "
                f"L=2^{case.log_domain}"
            )
        results.append(run_case(case, verify=verify))
    return results


def default_grid(
    prfs: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
    batches: Sequence[int] = (1, 4),
    log_domains: Sequence[int] = (10, 14),
    repeats: int = 3,
) -> list[BenchCase]:
    """The checked-in ``BENCH_dpf.json`` grid.

    Covers every PRF and every strategy (plus the reference walk) at
    small and medium domains, and adds the headline cases — ``aes128``
    at L = 2^16, the paper's baseline PRF at a realistic table size.
    Branch-parallel is pruned above 2^12: its O(L log L) recomputation
    makes larger functional runs take minutes without adding signal.
    """
    prfs = list(prfs) if prfs is not None else available_prfs()
    strategies = (
        list(strategies)
        if strategies is not None
        else [REFERENCE, *available_strategies()]
    )
    cases = []
    for prf in prfs:
        for strategy in strategies:
            for batch in batches:
                for log_domain in log_domains:
                    if strategy == "branch_parallel" and log_domain > 12:
                        continue
                    cases.append(
                        BenchCase(prf, strategy, batch, log_domain, repeats=repeats)
                    )
    for strategy in (REFERENCE, "memory_bounded", "level_by_level"):
        if strategy in strategies:
            for prf in ("aes128", "chacha20"):
                if prf in prfs:
                    headline = BenchCase(prf, strategy, 1, 16, repeats=repeats)
                    if headline not in cases:
                        cases.append(headline)
    return cases


def smoke_grid() -> list[BenchCase]:
    """A seconds-long grid for CI: every strategy once, two PRFs."""
    cases = [
        BenchCase("chacha20", REFERENCE, 1, 8, repeats=1, warmup=0),
        BenchCase("aes128", "memory_bounded", 2, 8, repeats=1, warmup=0),
    ]
    for strategy in available_strategies():
        cases.append(BenchCase("siphash", strategy, 1, 8, repeats=1, warmup=0))
    return cases


def results_payload(results: Sequence[BenchResult]) -> dict:
    """The JSON document structure for a set of results."""
    return {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": [asdict(r) for r in results],
    }


def write_results(results: Sequence[BenchResult], path: str) -> None:
    """Serialize results to ``path`` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(results_payload(results), fh, indent=1, sort_keys=True)
        fh.write("\n")
