"""Timing harness for full-domain DPF evaluation.

Methodology (see ``docs/performance.md``):

* Keys are generated once per case from a fixed RNG seed, so repeated
  runs measure the same work.
* Each case runs ``warmup`` untimed iterations (populating cipher
  scratch buffers and caches), then ``repeats`` timed iterations; the
  *minimum* wall time is reported, which is the standard way to reject
  scheduler noise on a shared machine.
* ``prf_blocks`` is the analytic count from the strategy cost model
  (for strategies) or the reference ``2 * (2**n - 1)`` per query (for
  the reference evaluator), so ``ns_per_prf_block`` is comparable
  across strategies that do different amounts of recomputation.
* ``peak_mem_bytes`` comes from one extra metered run through
  :class:`~repro.gpu.memory.MemoryMeter` (the Figure 6 working set);
  the timed runs are unmetered.
* Unless disabled, every case's output is verified bit-identical to
  ``repro.dpf.dpf.eval_full`` before timing — a benchmark of a wrong
  kernel is worse than no benchmark.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.baselines import CpuBackend
from repro.crypto import available_prfs, get_prf
from repro.dpf import eval_full, gen, pack_keys, unpack_keys
from repro.exec import (
    EvalRequest,
    HybridBackend,
    MultiProcessBackend,
    PlanCache,
    SingleGpuBackend,
)
from repro.gpu import (
    ExpansionWorkspace,
    KeyArena,
    MemoryMeter,
    V100,
    available_strategies,
    get_strategy,
)
from repro.obs import MetricsRegistry, Tracer, chain_problems
from repro.pir import PirClient, PirServer
from repro.serve import (
    BATCH,
    INTERACTIVE,
    AdmissionConfig,
    AsyncPirServer,
    FaultPlan,
    FlakyBackend,
    LoadReport,
    QosPolicy,
    RetryPolicy,
    ShardedPirServer,
    SloConfig,
    TenantSpec,
    generate_load,
)

REFERENCE = "reference"
"""Pseudo-strategy name for the reference ``dpf.eval_full`` walk."""

INGEST = "ingest"
"""Pseudo-strategy name for the wire->arena ingestion micro-benchmark.

An ``ingest`` case times *key ingestion only* — turning a batch of
received keys into an evaluable :class:`~repro.gpu.arena.KeyArena` —
with ``qps`` meaning keys ingested per second.  The ``ingest`` axis
selects the path: ``"wire"`` is the vectorized
:meth:`KeyArena.from_wire` parse, ``"objects"`` the per-key
``DpfKey.from_bytes`` loop plus stacking that a server without the
arena would run.
"""

PIR_ROUNDTRIP = "pir_roundtrip"
"""Pseudo-strategy name for the end-to-end two-server PIR round trip.

A ``pir_roundtrip`` case times the full pipeline — client query
generation, wire framing, both servers' full-domain evaluation and
table dot product, and answer reconstruction — against two
:class:`~repro.pir.PirServer` instances on a
:class:`~repro.exec.SingleGpuBackend`; ``qps`` means *retrieved
entries* per second.  The ``ingest`` axis selects the serving path:

* ``"objects"`` — key objects handed to ``answer_shares`` (keys are
  generated outside the timed region, so this isolates server-side
  evaluation plus combine).
* ``"wire"`` — the full framed protocol including client key
  generation, ``pack_keys``, and frame parse on every iteration.
* ``"arena"`` — the framed protocol against resident-keys servers
  (the residency hint flows through the backend's planner).
"""

SERVING = "serving"
"""Pseudo-strategy name for the async batch-aggregation serving loop.

A ``serving`` case runs a short asyncio session: ``batch`` independent
single-query clients fire framed queries at two
:class:`~repro.serve.AsyncPirServer` loops (one per non-colluding
party), paced to ``offered_qps`` queries/s (0 = one unpaced burst),
with the aggregation deadline set to ``slo_ms``.  ``qps`` is *answered*
queries per second of session wall time, and the row additionally
reports ``p50_ms`` / ``p99_ms`` request latency — the SLO-facing
numbers — plus the control-plane counters ``shed`` / ``retried`` /
``failed``.  Every session's reconstructed answers are verified
bit-exact against the table before the timed sessions run.

Two control-plane scenario axes ride on serving cases:

* ``chaos="fail_once"`` wraps each party's backend in a
  :class:`~repro.serve.FlakyBackend` that kills the *first* dispatched
  batch (fail-once-then-recover), so the row's throughput and
  percentiles include the retry/requeue recovery cost; verification
  additionally requires that retries happened and every answer is
  still bit-exact — the chaos-tolerance claim as a bench row.
* ``qos="mixed"`` tags alternating requests with an interactive-class
  and a batch-class tenant under a :class:`~repro.serve.QosPolicy`,
  and reports per-class p99 (``interactive_p99_ms`` / ``batch_p99_ms``)
  so the priority separation is a measured number, not a promise.

Sharded scenarios ride on the same family: ``shards > 0`` serves the
session from a :class:`~repro.serve.ShardedPirServer` (``shards``
contiguous sub-ranges, ``replicas`` backends each) instead of a plain
:class:`~repro.pir.PirServer`, and ``chaos="replica_kill"`` permanently
kills replica 0 of every shard from its first dispatch — the row's
latency includes the retry/eject/failover recovery cost, and the
``ejections`` / ``failovers`` counters report the health transitions
the session actually took.  Verification still requires every answer
bit-exact against the table, so a sharded row is also a recombination
correctness check under fire.
"""

SERVING_CHAOS_MODES = ("", "fail_once", "replica_kill")
"""Accepted ``chaos`` axis values for :data:`SERVING` cases.

``fail_once`` is the loop-level scenario (each party's backend kills
its first fused batch; the aggregation loop retries).  ``replica_kill``
is the shard-level scenario (replica 0 of every shard dies for good;
the replica set ejects it and fails the in-flight batch over to a
sibling) and therefore requires ``shards > 0`` and ``replicas >= 2``.
"""

SERVING_QOS_MODES = ("", "mixed")
"""Accepted ``qos`` axis values for :data:`SERVING` cases."""

INGEST_MODES = ("objects", "wire", "arena")
"""How ``eval_batch`` receives its keys at each grid point.

* ``"objects"`` — a list of ``DpfKey`` objects, stacked per call (the
  pre-arena path, and the default).
* ``"wire"`` — concatenated wire bytes, parsed into a fresh
  :class:`KeyArena` inside the timed region (a stateless server).
* ``"arena"`` — a persistent arena + :class:`ExpansionWorkspace` built
  once outside the timed region (a resident-keys server); the timed
  work is evaluation only.
"""

BACKEND_SELECT = "backend_select"
"""Pseudo-strategy name for the CPU-vs-GPU-vs-hybrid comparison family.

A ``backend_select`` case prices one execution backend — selected by
the ``backend`` axis (see :data:`BACKEND_SELECT_BACKENDS`) — at one
(PRF, batch, table-size) shape: the paper's Figure 10 crossover study.
``seconds`` is the backend's **modeled** per-batch latency
(``model_latency_s``), not wall time: the GPU side is an analytic
device model (there is no physical GPU here), and pricing both sides
through their models is the only apples-to-apples comparison — the
same numbers the fleet router and drain-time admission act on.
``qps`` is ``batch / seconds``.

Before any row is reported, the case's backend *functionally* serves
the batch (``backend.run``) and the answers are verified bit-exact
against the reference ``eval_full`` walk — the hybrid's routing
decision must never change answers, only cost.  ``hybrid`` rows route
through :class:`~repro.exec.HybridBackend` over the same CPU spec and
V100 model the ``cpu`` / ``gpu`` rows price, so at every grid point
the hybrid row's QPS is the max of its twins' by construction; the
checked-in artifact makes that an auditable number.
"""

BACKEND_SELECT_BACKENDS = ("cpu", "gpu", "hybrid")
"""Accepted ``backend`` axis values for :data:`BACKEND_SELECT` cases.

``cpu`` is the AES-NI-aware :class:`~repro.baselines.CpuBackend` on
the calibrated :data:`~repro.baselines.CPU_BASELINE` spec; ``gpu`` is
a :class:`~repro.exec.SingleGpuBackend` on the V100 model (the paper's
device); ``hybrid`` is a :class:`~repro.exec.HybridBackend` routing
between those two by modeled crossover.
"""

SCHEMA_VERSION = 10
"""Bumped to 10 with end-to-end request tracing: :data:`SERVING` rows
grow ``stage_p50_ms`` / ``stage_p99_ms`` — per-pipeline-stage latency
percentiles (admit/queue/merge/plan/dispatch/demux, in milliseconds)
extracted from the reported session's ``stage.*`` trace histograms
(:mod:`repro.obs`) — and serving verification additionally asserts
that every answered query's trace is a complete, orphan-free span
chain.  Empty dicts on every non-serving family.  Schema 9 added
hybrid CPU/GPU execution: the
:data:`BACKEND_SELECT` family (Figure 10 — CPU baseline vs V100 model
vs cost-model-routed hybrid at every grid shape, answers verified
bit-exact before pricing) and the ``backend`` axis on cases and
results ("" for every other family).  Schema 8 added persistent-kernel
serving: serving cases grew the
``plan_cache`` axis (memoized plans + pinned workspaces + overlapped
ingest, interleaved next to its cold twin) and the ``procs`` axis
(replica backends served by a :class:`~repro.exec.MultiProcessBackend`
worker pool of that size; 0 = in-process), and results grew the
``plan_cache_hits`` / ``plan_cache_misses`` / ``overlap_flushes``
steady-state counters.  Schema 7 added sharded serving (``shards`` /
``replicas`` axes, ``"replica_kill"`` chaos, ``ejections`` /
``failovers`` counters); schema 6 the serving control plane (``chaos``
/ ``qos`` axes, ``shed`` / ``retried`` / ``failed`` counters,
per-class percentiles); schema 5 the ``serving`` family itself."""


@dataclass(frozen=True)
class BenchCase:
    """One grid point: what to run and how often.

    Attributes:
        prf: PRF registry name.
        strategy: Strategy registry name, :data:`REFERENCE` for the
            reference evaluator, or :data:`INGEST` for the ingestion
            micro-benchmark.
        batch: Queries per invocation (the reference path loops).
        log_domain: Table size exponent; L = 2**log_domain.
        ingest: Key ingestion mode (see :data:`INGEST_MODES`).
        repeats: Timed iterations (min is reported).
        warmup: Untimed warm-up iterations.
        offered_qps: :data:`SERVING` cases only — client pacing target
            in queries/s (0 = one unpaced burst).
        slo_ms: :data:`SERVING` cases only — the aggregation loop's
            ``max_wait_s`` deadline, in milliseconds.
        chaos: :data:`SERVING` cases only — fault-injection scenario
            (see :data:`SERVING_CHAOS_MODES`; "" = healthy backends).
        qos: :data:`SERVING` cases only — traffic-class scenario (see
            :data:`SERVING_QOS_MODES`; "" = one implicit class).
        shards: :data:`SERVING` cases only — serve from a
            :class:`~repro.serve.ShardedPirServer` split into this many
            contiguous sub-ranges (0 = the plain unsharded server).
        replicas: :data:`SERVING` cases only — backends per shard
            (meaningful only with ``shards > 0``).
        plan_cache: :data:`SERVING` cases only — serve through a
            :class:`~repro.exec.PlanCache` (memoized plans, pinned
            workspaces, pow2 bucketing) with double-buffered ingest
            (``overlap=True`` on the aggregation loop).  The
            steady-state serving configuration; off prices the cold
            per-batch path.
        procs: :data:`SERVING` cases only — back every replica with a
            :class:`~repro.exec.MultiProcessBackend` pool of this many
            worker processes (0 = in-process backends; needs
            ``shards > 0``).
        backend: :data:`BACKEND_SELECT` cases only — which execution
            backend to price (see :data:`BACKEND_SELECT_BACKENDS`).
    """

    prf: str
    strategy: str
    batch: int
    log_domain: int
    ingest: str = "objects"
    repeats: int = 3
    warmup: int = 1
    offered_qps: float = 0.0
    slo_ms: float = 0.0
    chaos: str = ""
    qos: str = ""
    shards: int = 0
    replicas: int = 1
    plan_cache: bool = False
    procs: int = 0
    backend: str = ""

    @property
    def domain_size(self) -> int:
        return 1 << self.log_domain

    def describe(self) -> str:
        """The aligned one-line label used for progress, --list and
        --filter matching."""
        label = (
            f"{self.prf:12s} {self.strategy:18s} {self.ingest:8s} "
            f"B={self.batch:<3d} L=2^{self.log_domain}"
        )
        if self.strategy == SERVING:
            load = f"{self.offered_qps:g}" if self.offered_qps > 0 else "burst"
            label += f" load={load} slo={self.slo_ms:g}ms"
            if self.shards:
                label += f" shards={self.shards}x{self.replicas}"
            if self.plan_cache:
                label += " cache=on"
            if self.procs:
                label += f" procs={self.procs}"
            if self.chaos:
                label += f" chaos={self.chaos}"
            if self.qos:
                label += f" qos={self.qos}"
        if self.strategy == BACKEND_SELECT:
            label += f" backend={self.backend}"
        return label


@dataclass(frozen=True)
class BenchResult:
    """Measured numbers for one :class:`BenchCase`.

    ``offered_qps`` / ``slo_ms`` / ``chaos`` / ``qos`` echo the case
    axes; ``p50_ms`` / ``p99_ms`` are per-request latency percentiles;
    ``shed`` / ``retried`` / ``failed`` count queries the reported
    session shed at admission, requeued after a backend failure, and
    failed after retry exhaustion; ``interactive_p99_ms`` /
    ``batch_p99_ms`` are per-class percentiles for ``qos="mixed"``
    rows.  ``shards`` / ``replicas`` echo the sharding axes and
    ``ejections`` / ``failovers`` sum the replica-health transitions
    across both parties' reported sessions (nonzero only for
    ``chaos="replica_kill"`` rows).  ``plan_cache`` / ``procs`` echo
    the steady-state axes, and ``plan_cache_hits`` /
    ``plan_cache_misses`` / ``overlap_flushes`` sum the reported
    sessions' serving-loop counters (nonzero only for
    ``plan_cache=True`` rows).  ``stage_p50_ms`` / ``stage_p99_ms``
    map pipeline stage name (admit/queue/merge/plan/dispatch/demux) to
    that stage's latency percentile in milliseconds across the
    reported session's traced queries — the schema-10 per-stage timing
    columns (empty dicts on non-serving families).  All are meaningful
    for :data:`SERVING`
    rows and 0/"" elsewhere.  ``backend`` echoes the
    :data:`BACKEND_SELECT` axis ("" for every other family); for those
    rows ``seconds`` is the backend's *modeled* per-batch latency (see
    the family docstring) and ``verified`` certifies the functional
    bit-exactness run that preceded pricing.
    """

    prf: str
    strategy: str
    batch: int
    log_domain: int
    ingest: str
    domain_size: int
    seconds: float
    qps: float
    prf_blocks: int
    ns_per_prf_block: float
    peak_mem_bytes: int
    verified: bool
    offered_qps: float = 0.0
    slo_ms: float = 0.0
    chaos: str = ""
    qos: str = ""
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    shed: int = 0
    retried: int = 0
    failed: int = 0
    interactive_p99_ms: float = 0.0
    batch_p99_ms: float = 0.0
    shards: int = 0
    replicas: int = 1
    ejections: int = 0
    failovers: int = 0
    plan_cache: bool = False
    procs: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    overlap_flushes: int = 0
    stage_p50_ms: dict = field(default_factory=dict)
    stage_p99_ms: dict = field(default_factory=dict)
    backend: str = ""


def _reference_blocks(batch: int, log_domain: int) -> int:
    """PRF blocks of the reference walk: 2(2^n - 1) per query."""
    return batch * (2 ** (log_domain + 1) - 2)


def _make_keys(case: BenchCase, seed: int = 7) -> list:
    prf = get_prf(case.prf)
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(case.batch):
        alpha = int(rng.integers(0, case.domain_size))
        k0, k1 = gen(alpha, case.domain_size, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    return keys


def _time_work(case: BenchCase, work: Callable[[], object]) -> float:
    for _ in range(case.warmup):
        work()
    best = float("inf")
    for _ in range(case.repeats):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def _result(
    case: BenchCase,
    seconds: float,
    prf_blocks: int,
    peak_mem: int,
    verified: bool,
    p50_ms: float = 0.0,
    p99_ms: float = 0.0,
    shed: int = 0,
    retried: int = 0,
    failed: int = 0,
    interactive_p99_ms: float = 0.0,
    batch_p99_ms: float = 0.0,
    ejections: int = 0,
    failovers: int = 0,
    plan_cache_hits: int = 0,
    plan_cache_misses: int = 0,
    overlap_flushes: int = 0,
    stage_p50_ms: dict | None = None,
    stage_p99_ms: dict | None = None,
) -> BenchResult:
    return BenchResult(
        prf=case.prf,
        strategy=case.strategy,
        batch=case.batch,
        log_domain=case.log_domain,
        ingest=case.ingest,
        domain_size=case.domain_size,
        seconds=seconds,
        qps=case.batch / seconds,
        prf_blocks=prf_blocks,
        ns_per_prf_block=seconds * 1e9 / prf_blocks if prf_blocks else 0.0,
        peak_mem_bytes=peak_mem,
        verified=verified,
        offered_qps=case.offered_qps,
        slo_ms=case.slo_ms,
        chaos=case.chaos,
        qos=case.qos,
        p50_ms=p50_ms,
        p99_ms=p99_ms,
        shed=shed,
        retried=retried,
        failed=failed,
        interactive_p99_ms=interactive_p99_ms,
        batch_p99_ms=batch_p99_ms,
        shards=case.shards,
        replicas=case.replicas,
        ejections=ejections,
        failovers=failovers,
        plan_cache=case.plan_cache,
        procs=case.procs,
        plan_cache_hits=plan_cache_hits,
        plan_cache_misses=plan_cache_misses,
        overlap_flushes=overlap_flushes,
        stage_p50_ms=stage_p50_ms if stage_p50_ms is not None else {},
        stage_p99_ms=stage_p99_ms if stage_p99_ms is not None else {},
        backend=case.backend,
    )


def _select_case_backend(name: str):
    """Build the execution backend a :data:`BACKEND_SELECT` case prices."""
    if name == "cpu":
        return CpuBackend()
    if name == "gpu":
        return SingleGpuBackend(V100)
    if name == "hybrid":
        return HybridBackend([CpuBackend(), SingleGpuBackend(V100)])
    raise ValueError(
        f"unknown backend {name!r} for a backend_select case; "
        f"use one of {BACKEND_SELECT_BACKENDS}"
    )


def _run_backend_select_case(case: BenchCase, verify: bool) -> BenchResult:
    """Price one backend at one shape; ``seconds`` is modeled latency.

    The functional run (and its bit-exact check against the reference
    walk) always precedes pricing, so a row can never report a cost
    for a backend that answers wrongly.
    """
    backend = _select_case_backend(case.backend)
    keys = _make_keys(case)
    result = backend.run(EvalRequest(keys=keys, prf_name=case.prf))
    verified = False
    if verify:
        prf = get_prf(case.prf)
        want = np.stack([eval_full(key, prf) for key in keys])
        if not np.array_equal(result.answers, want):
            raise ValueError(
                f"{case.backend} backend output diverged from the "
                f"reference for {case}"
            )
        verified = True
    seconds = backend.model_latency_s(case.batch, case.domain_size, case.prf)
    if seconds is None or seconds <= 0:
        raise ValueError(
            f"{case.backend} backend cannot price {case.describe()!r}"
        )
    return _result(
        case,
        seconds,
        result.cost.prf_blocks,
        result.cost.peak_mem_bytes,
        verified,
    )


def _run_ingest_case(case: BenchCase, keys: list, verify: bool) -> BenchResult:
    """Time wire->arena ingestion only; ``qps`` is keys per second."""
    wire = pack_keys(keys)
    if case.ingest == "wire":
        def work() -> KeyArena:
            return KeyArena.from_wire(wire)
    elif case.ingest == "objects":
        def work() -> KeyArena:
            return KeyArena.from_keys(unpack_keys(wire))
    else:
        raise ValueError(
            f"ingest cases time 'wire' or 'objects' ingestion, got {case.ingest!r}"
        )
    verified = False
    if verify:
        if KeyArena.from_wire(wire) != KeyArena.from_keys(keys):
            raise ValueError(f"from_wire diverged from from_keys for {case}")
        verified = True
    return _result(case, _time_work(case, work), 0, 0, verified)


def _run_pir_case(case: BenchCase, verify: bool) -> BenchResult:
    """Time the end-to-end two-server round trip; see :data:`PIR_ROUNDTRIP`."""
    rng = np.random.default_rng(11)
    table = rng.integers(0, 1 << 64, size=case.domain_size, dtype=np.uint64)
    resident = case.ingest == "arena"
    servers = [
        PirServer(table, backend=SingleGpuBackend(), prf_name=case.prf, resident=resident)
        for _ in range(2)
    ]
    client = PirClient(case.domain_size, case.prf, rng=np.random.default_rng(13))
    indices = rng.integers(0, case.domain_size, size=case.batch).tolist()

    if case.ingest == "objects":
        keys_0, keys_1 = client.generate_keys(indices)

        def work() -> np.ndarray:
            return (
                servers[0].answer_shares(keys_0) + servers[1].answer_shares(keys_1)
            ).astype(np.uint64)

    elif case.ingest in ("wire", "arena"):

        def work() -> np.ndarray:
            batch = client.query(indices)
            return client.reconstruct(
                batch,
                servers[0].handle(batch.requests[0]),
                servers[1].handle(batch.requests[1]),
            )

    else:
        raise ValueError(f"unknown ingest mode {case.ingest!r}; use {INGEST_MODES}")

    verified = False
    if verify:
        if not np.array_equal(work(), table[np.array(indices)]):
            raise ValueError(f"PIR round trip diverged from the table for {case}")
        verified = True
    return _result(case, _time_work(case, work), 0, 0, verified)


def _run_serving_case(case: BenchCase, verify: bool) -> BenchResult:
    """Run asyncio serving sessions; see :data:`SERVING`.

    Each session is ``case.batch`` independent single-query clients
    against two aggregation loops on :class:`SingleGpuBackend`; the
    fastest of ``case.repeats`` sessions is reported (after ``warmup``
    untimed sessions), with that session's latency percentiles and
    control-plane counters.  ``chaos="fail_once"`` wraps each party's
    backend so its first dispatch dies (the recovery cost lands in the
    row); ``qos="mixed"`` splits clients into an interactive-class and
    a batch-class tenant and reports per-class p99.

    With ``case.shards > 0`` each party serves from a
    :class:`ShardedPirServer` (``case.replicas`` backends per shard)
    and the row additionally reports the summed replica-health
    counters; ``chaos="replica_kill"`` permanently kills replica 0 of
    every shard from its first dispatch, so the row prices ejection
    plus failover rather than a transient retry.

    With ``case.plan_cache`` each party serves through a fresh
    :class:`~repro.exec.PlanCache` and the aggregation loop runs with
    ``overlap=True`` (double-buffered ingest) — the steady-state
    configuration, priced against its cold twin; the row reports the
    summed plan-cache and overlap counters.  With ``case.procs > 0``
    every shard replica is a :class:`~repro.exec.MultiProcessBackend`
    pool of that many workers (closed after each session), so the row
    prices real process-parallel serving.
    """
    if case.slo_ms <= 0:
        raise ValueError(f"serving cases need a positive slo_ms, got {case.slo_ms}")
    if case.chaos not in SERVING_CHAOS_MODES:
        raise ValueError(
            f"unknown chaos mode {case.chaos!r}; use {SERVING_CHAOS_MODES}"
        )
    if case.qos not in SERVING_QOS_MODES:
        raise ValueError(f"unknown qos mode {case.qos!r}; use {SERVING_QOS_MODES}")
    if case.shards < 0 or case.replicas < 1:
        raise ValueError(
            f"serving cases need shards >= 0 and replicas >= 1, got "
            f"shards={case.shards} replicas={case.replicas}"
        )
    if case.replicas > 1 and not case.shards:
        raise ValueError("replicas > 1 needs a sharded server (shards > 0)")
    if case.chaos == "replica_kill" and (not case.shards or case.replicas < 2):
        raise ValueError(
            "chaos='replica_kill' needs shards > 0 and replicas >= 2 "
            "(a surviving sibling to fail over to)"
        )
    if case.procs < 0:
        raise ValueError(f"procs must be >= 0, got {case.procs}")
    if case.procs and not case.shards:
        raise ValueError(
            "procs > 0 backs shard replicas with worker pools; it needs "
            "a sharded server (shards > 0)"
        )
    rng = np.random.default_rng(11)
    table = rng.integers(0, 1 << 64, size=case.domain_size, dtype=np.uint64)
    indices = rng.integers(0, case.domain_size, size=case.batch).tolist()
    resident = case.ingest == "arena"
    slo = SloConfig(
        max_batch=max(2, case.batch // 2), max_wait_s=case.slo_ms * 1e-3
    )
    # Sized so nothing sheds: the bench measures latency (including
    # chaos recovery), not the shedding policy (tests/serve/ covers
    # that) — hence the disabled drain budget.
    admission = AdmissionConfig(max_pending=max(case.batch, 1), drain_budget_s=None)
    qos_policy = None
    tenants = None
    if case.qos == "mixed":
        qos_policy = QosPolicy(
            tenants={
                "tenant-interactive": TenantSpec(qos=INTERACTIVE),
                "tenant-batch": TenantSpec(qos=BATCH),
            }
        )
        # Batch-class traffic is *released first*, interactive second —
        # the adversarial shape for priority: interactive requests must
        # overtake an already-queued batch backlog for their p99 to win,
        # so the per-class split measures the take order, not arrival
        # luck.
        half = len(indices) // 2
        tenants = [
            "tenant-batch" if i < half else "tenant-interactive"
            for i in range(len(indices))
        ]

    def backend():
        inner = SingleGpuBackend()
        if case.chaos == "fail_once":
            return FlakyBackend(inner, FaultPlan.nth(1))
        return inner

    def replica_backend(shard: int, replica: int, pools: list):
        if case.procs:
            inner = MultiProcessBackend(workers=case.procs)
            pools.append(inner)
        else:
            inner = SingleGpuBackend()
        if case.chaos == "fail_once":
            # Every replica's first dispatch dies: the set retries in
            # place, so the row prices the transient-fault recovery.
            return FlakyBackend(inner, FaultPlan.nth(1))
        if case.chaos == "replica_kill" and replica == 0:
            # Replica 0 of every shard dies for good on first dispatch:
            # the set ejects it and fails over, so the row prices the
            # permanent-loss path.
            return FlakyBackend(inner, FaultPlan.after(1))
        return inner

    def make_server(pools: list):
        if case.shards:
            return ShardedPirServer(
                table,
                shards=case.shards,
                replicas=case.replicas,
                backend_factory=lambda s, r: replica_backend(s, r, pools),
                prf_name=case.prf,
                resident=resident,
                plan_cache=PlanCache() if case.plan_cache else None,
            )
        return PirServer(
            table,
            backend=backend(),
            prf_name=case.prf,
            resident=resident,
            plan_cache=PlanCache() if case.plan_cache else None,
        )

    def session() -> tuple[LoadReport, dict]:
        pools: list[MultiProcessBackend] = []
        try:
            servers = [make_server(pools) for _ in range(2)]
            client = PirClient(
                case.domain_size, case.prf, rng=np.random.default_rng(13)
            )
            counters = {
                "plan_cache_hits": 0,
                "plan_cache_misses": 0,
                "overlap_flushes": 0,
            }
            # One registry + tracer per session, shared by both
            # parties' loops: every query's spans feed the stage.*
            # histograms the schema-10 per-stage columns are cut from.
            registry = MetricsRegistry()
            tracer = Tracer(metrics=registry)

            async def run():
                loops = [
                    AsyncPirServer(
                        server,
                        slo=slo,
                        admission=admission,
                        qos=qos_policy,
                        retry=RetryPolicy(max_attempts=3),
                        overlap=case.plan_cache,
                        tracer=tracer,
                    )
                    for server in servers
                ]
                async with loops[0], loops[1]:
                    report = await generate_load(
                        client,
                        loops,
                        indices,
                        offered_qps=case.offered_qps,
                        tenants=tenants,
                    )
                for loop in loops:
                    counters["plan_cache_hits"] += loop.stats.plan_cache_hits
                    counters["plan_cache_misses"] += loop.stats.plan_cache_misses
                    counters["overlap_flushes"] += loop.stats.overlap_flushes
                return report

            report = asyncio.run(run())
            health = {"retries": 0, "ejections": 0, "failovers": 0}
            if case.shards:
                for server in servers:
                    totals = server.stats_totals()
                    health["retries"] += totals.retries
                    health["ejections"] += totals.ejections
                    health["failovers"] += totals.failovers
            answered = [
                t for t in tracer.drain() if t.status == "answered"
            ]
            trace_info = {
                "answered_traces": len(answered),
                "trace_problems": sum(
                    len(chain_problems(t)) for t in answered
                ),
                "stage_p50_ms": {},
                "stage_p99_ms": {},
            }
            for name, hist in sorted(registry.histograms("stage.").items()):
                stage = name[len("stage."):]
                trace_info["stage_p50_ms"][stage] = hist.quantile(0.50) * 1e3
                trace_info["stage_p99_ms"][stage] = hist.quantile(0.99) * 1e3
            return report, {**health, **counters, **trace_info}
        finally:
            for pool in pools:
                pool.close()

    verified = False
    if verify:
        report, health = session()
        if report.shed:
            raise ValueError(f"serving session shed {report.shed} queries for {case}")
        if report.failed:
            raise ValueError(
                f"serving session failed {report.failed} queries for {case}"
            )
        if case.chaos == "replica_kill" and not (
            health["ejections"] and health["failovers"]
        ):
            raise ValueError(
                f"replica_kill scenario caused no ejection/failover for {case}: "
                f"{health}"
            )
        elif case.chaos and not (report.retried or health["retries"]):
            raise ValueError(
                f"chaos scenario injected no retried queries for {case}"
            )
        if not np.array_equal(report.answers, table[np.array(report.indices)]):
            raise ValueError(f"served answers diverged from the table for {case}")
        if case.plan_cache and not case.procs and not (
            health["plan_cache_hits"] + health["plan_cache_misses"]
        ):
            # procs rows evaluate through the workers' own caches, which
            # the loop-visible front-end cache never sees.
            raise ValueError(
                f"plan_cache row recorded no cache lookups for {case}"
            )
        # Chain integrity: every answered query's trace must be a
        # complete, orphan-free admit→demux span chain — through
        # fusion, chaos retries, sharded failover, the lot.
        if not health["answered_traces"]:
            raise ValueError(f"traced session recorded no finished traces for {case}")
        if health["trace_problems"]:
            raise ValueError(
                f"{health['trace_problems']} span-chain problems across "
                f"{health['answered_traces']} answered traces for {case}"
            )
        verified = True

    for _ in range(case.warmup):
        session()
    best = None
    best_health = None
    for _ in range(case.repeats):
        report, health = session()
        if best is None or report.wall_s < best.wall_s:
            best = report
            best_health = health
    return _result(
        case,
        best.wall_s,
        0,
        0,
        verified,
        p50_ms=best.p50_ms,
        p99_ms=best.p99_ms,
        shed=best.shed,
        retried=best.retried,
        failed=best.failed,
        interactive_p99_ms=(
            best.latency_percentile_ms(99, tenant="tenant-interactive")
            if case.qos == "mixed"
            else 0.0
        ),
        batch_p99_ms=(
            best.latency_percentile_ms(99, tenant="tenant-batch")
            if case.qos == "mixed"
            else 0.0
        ),
        ejections=best_health["ejections"],
        failovers=best_health["failovers"],
        plan_cache_hits=best_health["plan_cache_hits"],
        plan_cache_misses=best_health["plan_cache_misses"],
        overlap_flushes=best_health["overlap_flushes"],
        stage_p50_ms=best_health["stage_p50_ms"],
        stage_p99_ms=best_health["stage_p99_ms"],
    )


def run_case(case: BenchCase, verify: bool = True) -> BenchResult:
    """Execute one grid point and return its measurements.

    Args:
        case: The grid point.
        verify: Assert the evaluated shares are bit-identical to the
            reference evaluator (for ingest cases, that the two
            ingestion paths produce identical arenas; for PIR round
            trips, that the reconstructed values equal the table rows)
            before timing.

    Raises:
        ValueError: If verification fails — the numbers would be
            meaningless.
    """
    if case.strategy == SERVING:
        return _run_serving_case(case, verify)

    if case.strategy == PIR_ROUNDTRIP:
        return _run_pir_case(case, verify)

    if case.strategy == BACKEND_SELECT:
        return _run_backend_select_case(case, verify)

    prf = get_prf(case.prf)
    keys = _make_keys(case)

    if case.strategy == INGEST:
        return _run_ingest_case(case, keys, verify)

    if case.strategy == REFERENCE:
        if case.ingest != "objects":
            raise ValueError("the reference walk has no arena ingestion path")

        def work() -> np.ndarray:
            return np.stack([eval_full(key, prf) for key in keys])

        return _result(
            case,
            _time_work(case, work),
            _reference_blocks(case.batch, case.log_domain),
            0,
            False,
        )

    strategy = get_strategy(case.strategy)
    if case.ingest == "objects":
        def work(meter: MemoryMeter | None = None) -> np.ndarray:
            return strategy.eval_batch(keys, prf, meter)
    elif case.ingest == "wire":
        wire = pack_keys(keys)

        def work(meter: MemoryMeter | None = None) -> np.ndarray:
            return strategy.eval_batch(KeyArena.from_wire(wire), prf, meter)
    elif case.ingest == "arena":
        arena = KeyArena.from_keys(keys, prf_name=prf.name)
        workspace = ExpansionWorkspace()

        def work(meter: MemoryMeter | None = None) -> np.ndarray:
            return strategy.eval_batch(arena, prf, meter, workspace=workspace)
    else:
        raise ValueError(f"unknown ingest mode {case.ingest!r}; use {INGEST_MODES}")

    prf_blocks = strategy.cost(case.batch, case.domain_size).prf_blocks
    # One metered run of the *actual* ingest path supplies both the
    # peak working set and the output to verify.
    meter = MemoryMeter()
    got = work(meter)
    peak_mem = meter.peak
    verified = False
    if verify:
        want = np.stack([eval_full(key, prf) for key in keys])
        if not np.array_equal(got, want):
            raise ValueError(
                f"{case.strategy} output diverged from the reference for {case}"
            )
        verified = True

    return _result(case, _time_work(case, work), prf_blocks, peak_mem, verified)


def run_grid(
    cases: Iterable[BenchCase],
    verify: bool = True,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every case, reporting progress through ``progress``."""
    results = []
    for case in cases:
        if progress is not None:
            progress(case.describe())
        results.append(run_case(case, verify=verify))
    return results


def default_grid(
    prfs: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
    batches: Sequence[int] = (1, 4),
    log_domains: Sequence[int] = (10, 14),
    repeats: int = 3,
) -> list[BenchCase]:
    """The checked-in ``BENCH_dpf.json`` grid.

    Covers every PRF and every strategy (plus the reference walk) at
    small and medium domains, and adds the headline cases — ``aes128``
    at L = 2^16, the paper's baseline PRF at a realistic table size.
    Branch-parallel is pruned above 2^12: its O(L log L) recomputation
    makes larger functional runs take minutes without adding signal.

    Two ingest-mode extensions ride on top of the base (``objects``)
    grid:

    * Every base grid point for ``memory_bounded`` / ``level_by_level``
      on ``aes128`` / ``siphash`` is repeated with ``ingest="wire"``
      and ``ingest="arena"``, so the persistent-arena serving path is
      compared against the per-call stacking path at every shape.
    * :data:`INGEST` micro-cases at batch 64 and 256 time wire->arena
      ingestion against the per-key ``from_bytes`` loop — the server's
      cost of *receiving* a batch, separated from evaluating it.
    * :data:`PIR_ROUNDTRIP` cases time the end-to-end two-server
      pipeline at the small and large table sizes, across the
      objects/wire/arena serving paths.
    * :data:`SERVING` cases run the async batch-aggregation loop at the
      small table size across a {burst, paced} x {tight, loose SLO}
      grid — QPS and p50/p99 latency vs offered load and deadline —
      plus sharded rows (2/4 shards, a 2x2 replicated set, and a
      replica-kill failover scenario) against their unsharded twin.
    * :data:`BACKEND_SELECT` cases price the CPU baseline, the V100
      model, and the cost-routed hybrid as interleaved triples across
      {1, 16, 256} queries at the small and large table sizes for
      ``aes128`` (hardware AES on both sides — the crossover case) and
      ``chacha20`` (GPU-favored everywhere) — the Figure 10 family.
    """
    prfs = list(prfs) if prfs is not None else available_prfs()
    # The INGEST micro-cases, PIR round trips, and serving sessions ride
    # along by default but honor an explicit strategy restriction (no
    # pseudo-strategy ever enters the eval product).
    include_ingest = bool(prfs) and (strategies is None or INGEST in strategies)
    include_pir = bool(prfs) and (strategies is None or PIR_ROUNDTRIP in strategies)
    include_serving = bool(prfs) and (strategies is None or SERVING in strategies)
    include_select = bool(prfs) and (
        strategies is None or BACKEND_SELECT in strategies
    )
    ingest_prf = "aes128" if "aes128" in prfs else (prfs[0] if prfs else "aes128")
    strategies = [
        s
        for s in (
            list(strategies)
            if strategies is not None
            else [REFERENCE, *available_strategies()]
        )
        if s not in (INGEST, PIR_ROUNDTRIP, SERVING, BACKEND_SELECT)
    ]
    cases = []
    for prf in prfs:
        for strategy in strategies:
            for batch in batches:
                for log_domain in log_domains:
                    if strategy == "branch_parallel" and log_domain > 12:
                        continue
                    cases.append(
                        BenchCase(prf, strategy, batch, log_domain, repeats=repeats)
                    )
    for strategy in (REFERENCE, "memory_bounded", "level_by_level"):
        if strategy in strategies:
            for prf in ("aes128", "chacha20"):
                if prf in prfs:
                    headline = BenchCase(prf, strategy, 1, 16, repeats=repeats)
                    if headline not in cases:
                        cases.append(headline)
    # Interleave each ingest-mode variant right after its ``objects``
    # twin, so twin measurements run back-to-back and host-load drift
    # across the (minutes-long) grid cannot skew the mode comparison.
    interleaved: list[BenchCase] = []
    for base in cases:
        interleaved.append(base)
        if base.strategy in ("memory_bounded", "level_by_level") and base.prf in (
            "aes128",
            "siphash",
        ):
            for mode in ("wire", "arena"):
                interleaved.append(dataclasses.replace(base, ingest=mode))
    cases = interleaved
    if include_ingest:
        for batch in (64, 256):
            for log_domain in sorted({min(log_domains), max(log_domains)}):
                for mode in ("wire", "objects"):
                    cases.append(
                        BenchCase(
                            ingest_prf,
                            INGEST,
                            batch,
                            log_domain,
                            ingest=mode,
                            repeats=repeats,
                        )
                    )
    if include_pir:
        # Small table: all three serving paths at one shape.  Large
        # table: the framed hot path against its objects twin.
        log_lo, log_hi = min(log_domains), max(log_domains)
        for mode in ("objects", "wire", "arena"):
            cases.append(
                BenchCase(
                    ingest_prf, PIR_ROUNDTRIP, 4, log_lo, ingest=mode, repeats=repeats
                )
            )
        if log_hi != log_lo:
            for mode in ("objects", "wire"):
                cases.append(
                    BenchCase(
                        ingest_prf,
                        PIR_ROUNDTRIP,
                        16,
                        log_hi,
                        ingest=mode,
                        repeats=repeats,
                    )
                )
    if include_serving:
        # 32 single-query clients at the small table: an unpaced burst
        # (maximum aggregation pressure) and a paced stream, each under
        # a tight and a loose flush deadline.  qps/p50/p99 vs offered
        # load and SLO, per the serving-loop acceptance criteria.
        # Each row is immediately followed by its plan-cache twin
        # (memoized plans + pinned workspaces + overlapped ingest), so
        # the warm-vs-cold steady-state comparison runs back-to-back in
        # the same session and host-load drift cannot skew it.
        # The twins get extra repeats: they are compared to each other
        # by ratio, and a best-of draw from two noisy session
        # distributions needs more samples than an absolute row does to
        # reach its steady-state floor.
        for offered_qps in (0.0, 512.0):
            for slo_ms in (1.0, 8.0):
                cold = BenchCase(
                    ingest_prf,
                    SERVING,
                    32,
                    min(log_domains),
                    ingest="wire",
                    repeats=max(repeats, 7),
                    offered_qps=offered_qps,
                    slo_ms=slo_ms,
                )
                cases.append(cold)
                cases.append(dataclasses.replace(cold, plan_cache=True))
        # Control-plane scenarios, each next to its healthy burst twin:
        # a mid-session backend death (recovery cost via retry/requeue)
        # and a mixed interactive/batch tenant load (per-class p99).
        for chaos, qos in (("fail_once", ""), ("", "mixed")):
            cases.append(
                BenchCase(
                    ingest_prf,
                    SERVING,
                    32,
                    min(log_domains),
                    ingest="wire",
                    repeats=repeats,
                    offered_qps=0.0,
                    slo_ms=8.0,
                    chaos=chaos,
                    qos=qos,
                )
            )
        # Sharded serving: the same burst session across shard widths
        # (sharding overhead vs the unsharded twin above), a replicated
        # set, and the replica-kill failover scenario — ejection plus
        # failover priced against its healthy 2x2 twin.  The final row
        # backs each shard replica with a 2-worker process pool (the
        # combined fast path: per-worker plan caches + resident column
        # slices), next to its in-process twin.
        for shards, replicas, chaos, procs in (
            (2, 1, "", 0),
            (4, 1, "", 0),
            (2, 2, "", 0),
            (2, 2, "replica_kill", 0),
            (2, 1, "", 2),
        ):
            cases.append(
                BenchCase(
                    ingest_prf,
                    SERVING,
                    32,
                    min(log_domains),
                    ingest="wire",
                    repeats=repeats,
                    offered_qps=0.0,
                    slo_ms=8.0,
                    chaos=chaos,
                    shards=shards,
                    replicas=replicas,
                    procs=procs,
                )
            )
    if include_select:
        # Figure 10: the CPU baseline, the V100 model, and the routed
        # hybrid priced as back-to-back triples at each shape.  aes128
        # exercises the AES-NI story (CPU wins small batches, GPU wins
        # large — a crossover inside this batch range at the small
        # table); chacha20 has no hardware assist on the CPU, so the
        # GPU side wins everywhere and the hybrid must follow it.
        select_prfs = [p for p in ("aes128", "chacha20") if p in prfs]
        for prf in select_prfs or [ingest_prf]:
            for log_domain in sorted({min(log_domains), max(log_domains)}):
                for batch in (1, 16, 256):
                    for backend in BACKEND_SELECT_BACKENDS:
                        cases.append(
                            BenchCase(
                                prf,
                                BACKEND_SELECT,
                                batch,
                                log_domain,
                                backend=backend,
                                repeats=repeats,
                            )
                        )
    return cases


def smoke_grid() -> list[BenchCase]:
    """A seconds-long grid for CI: every strategy once, two PRFs,
    plus one wire-ingest eval, one persistent-arena eval, one ingestion
    micro-case, the end-to-end PIR round trip on every serving path,
    and seven async serving sessions (healthy, plan-cache + overlap,
    fail-once chaos, mixed QoS, sharded, sharded replica-kill
    failover, and a worker-pool sharded session), so every ingest
    mode, the pipeline, the aggregation loop, the fault-tolerant
    control plane, the sharded/replicated front-end, and the
    steady-state serving paths all stay exercised.  Backend-select
    triples (cpu / gpu / hybrid at a small and a larger batch) keep
    the Figure 10 family and its bit-exactness check in CI."""
    cases = [
        BenchCase("chacha20", REFERENCE, 1, 8, repeats=1, warmup=0),
        BenchCase("aes128", "memory_bounded", 2, 8, repeats=1, warmup=0),
        BenchCase("aes128", "memory_bounded", 2, 8, ingest="wire", repeats=1, warmup=0),
        BenchCase("aes128", "memory_bounded", 2, 8, ingest="arena", repeats=1, warmup=0),
        BenchCase("aes128", INGEST, 64, 8, ingest="wire", repeats=1, warmup=0),
        BenchCase("aes128", INGEST, 64, 8, ingest="objects", repeats=1, warmup=0),
    ]
    for mode in ("objects", "wire", "arena"):
        cases.append(
            BenchCase("chacha20", PIR_ROUNDTRIP, 2, 6, ingest=mode, repeats=1, warmup=0)
        )
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
        )
    )
    # Steady-state smoke: the same session through the plan cache with
    # overlapped ingest — cache lookups and bit-exact answers in CI.
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            plan_cache=True,
        )
    )
    # Control-plane smoke: a backend dying mid-session (retry/requeue
    # must keep every answer bit-exact) and a mixed-class tenant load
    # (per-class percentiles populated) stay exercised in CI.
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            chaos="fail_once",
        )
    )
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            qos="mixed",
        )
    )
    # Sharded smoke: recombination across shards stays bit-exact, and
    # a permanent replica loss still recovers via ejection + failover.
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            shards=2,
        )
    )
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            chaos="replica_kill",
            shards=2,
            replicas=2,
        )
    )
    # Worker-pool smoke: each shard replica served by a 2-process pool
    # (combined fast path + per-worker caches) stays exercised in CI.
    cases.append(
        BenchCase(
            "chacha20",
            SERVING,
            8,
            6,
            ingest="wire",
            repeats=1,
            warmup=0,
            offered_qps=0.0,
            slo_ms=2.0,
            shards=2,
            procs=2,
        )
    )
    # Backend-select smoke: every backend axis value runs (and is
    # verified bit-exact) at a batch on each side of the crossover axis.
    for batch in (2, 64):
        for backend in BACKEND_SELECT_BACKENDS:
            cases.append(
                BenchCase(
                    "aes128",
                    BACKEND_SELECT,
                    batch,
                    8,
                    backend=backend,
                    repeats=1,
                    warmup=0,
                )
            )
    for strategy in available_strategies():
        cases.append(BenchCase("siphash", strategy, 1, 8, repeats=1, warmup=0))
    return cases


def results_payload(results: Sequence[BenchResult]) -> dict:
    """The JSON document structure for a set of results."""
    return {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": [asdict(r) for r in results],
    }


def write_results(results: Sequence[BenchResult], path: str) -> None:
    """Serialize results to ``path`` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(results_payload(results), fh, indent=1, sort_keys=True)
        fh.write("\n")
