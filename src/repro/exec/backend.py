"""Concrete execution backends behind one request-oriented protocol.

An :class:`ExecutionBackend` answers two questions about an
:class:`~repro.exec.request.EvalRequest`: *what would running it look
like* (:meth:`~ExecutionBackend.plan` — strategy selection plus modeled
timing) and *what are the answers* (:meth:`~ExecutionBackend.run` —
the functional ``(B, L)`` share matrix plus the plan and merged cost).
Three adapters reuse the existing substrate rather than duplicating it:

* :class:`SingleGpuBackend` — one device; scheduler-selected strategy,
  persistent :class:`~repro.gpu.arena.ExpansionWorkspace`.
* :class:`MultiGpuBackend` — a fleet; wraps
  :class:`~repro.gpu.multigpu.MultiGpuExecutor` (throughput-
  proportional zero-copy sharding).
* :class:`SimulatedBackend` — answers from the *reference* evaluator
  (:func:`repro.dpf.dpf.eval_full`), timing from the performance model
  only.  Slow but kernel-free: the oracle backend for end-to-end tests
  and what-if pricing of devices that are not attached.

All three produce bit-identical answers for the same keys; tests pin
that across the object/wire ingestion forms and the streaming/resident
modes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.crypto.prf import get_prf
from repro.dpf.dpf import eval_full, eval_range
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.gpu.arena import ExpansionWorkspace
from repro.gpu.device import DeviceSpec, V100
from repro.gpu.multigpu import MultiGpuExecutor, MultiGpuStats, ShardReport
from repro.gpu.scheduler import Scheduler, Selection
from repro.gpu.strategies import StrategyCost, get_strategy


def _single_shard_stats(
    device: DeviceSpec, selection: Selection, batch_size: int, table_entries: int,
    prf_name: str,
) -> MultiGpuStats:
    """One device's selection in the shared per-shard stats shape."""
    latency = selection.stats.latency_s
    return MultiGpuStats(
        batch_size=batch_size,
        table_entries=table_entries,
        prf_name=prf_name,
        latency_s=latency,
        throughput_qps=batch_size / latency if latency > 0 else 0.0,
        shards=(
            ShardReport(
                device_name=device.name, batch_size=batch_size, selection=selection
            ),
        ),
    )


def merged_cost(
    stats: MultiGpuStats, strategies: dict | None = None
) -> StrategyCost:
    """Fold per-shard strategy costs into one batch-level cost.

    ``prf_blocks`` and ``parallel_width`` sum over shards;
    ``peak_mem_bytes`` is the fleet-wide footprint (each shard's peak
    lives on its own device, concurrently).  ``strategy`` keeps the
    shared name when every shard agrees and reports ``"mixed"``
    otherwise.

    Args:
        stats: Per-shard selections to fold.
        strategies: Name -> instance mapping of the candidate pool the
            selections were made from; shards cost through *those*
            instances (their tuning parameters matter).  ``None`` means
            the registry defaults, which is what the selections used.
    """
    strategies = strategies if strategies is not None else {}
    shard_costs = [
        strategies.get(
            shard.selection.strategy, get_strategy(shard.selection.strategy)
        ).cost(shard.batch_size, stats.table_entries)
        for shard in stats.shards
    ]
    names = {cost.strategy for cost in shard_costs}
    return StrategyCost(
        strategy=names.pop() if len(names) == 1 else "mixed",
        batch_size=stats.batch_size,
        domain_size=stats.table_entries,
        prf_blocks=sum(cost.prf_blocks for cost in shard_costs),
        peak_mem_bytes=sum(cost.peak_mem_bytes for cost in shard_costs),
        parallel_width=sum(cost.parallel_width for cost in shard_costs),
    )


class ExecutionBackend(abc.ABC):
    """The request-oriented execution protocol.

    ``plan`` never touches key cryptography beyond ingestion metadata
    (batch size, domain, PRF); ``run`` must return answers that are
    bit-identical across backends for the same keys.  A request with an
    ``eval_range`` restriction returns the ``(B, hi - lo)`` column
    window of the full expansion — still bit-identical across backends
    (``tests/exec/test_backends.py``).
    """

    name: str = "abstract"

    device_class: str = "gpu"
    """Coarse hardware class for hybrid routing: the CPU baseline
    overrides this to ``"cpu"``; everything modeled on a
    :class:`~repro.gpu.device.DeviceSpec` is ``"gpu"``.
    :class:`~repro.exec.select.HybridBackend` splits its candidate pool
    on this attribute when locating a shape's crossover batch."""

    @staticmethod
    def _apply_range(request: EvalRequest, answers: np.ndarray) -> np.ndarray:
        """Clip a full ``(B, L)`` share matrix to the request's range.

        The vectorized kernels expand whole GGM subtrees, so the range
        restriction is a zero-copy column view of their output; the
        simulated oracle overrides the whole path with the genuinely
        restricted :func:`repro.dpf.dpf.eval_range` walk instead.
        """
        lo, hi = request.resolved_range()
        if (lo, hi) == (0, request.arena().domain_size):
            return answers
        return answers[:, lo:hi]

    @abc.abstractmethod
    def plan(self, request: EvalRequest) -> ExecutionPlan:
        """Price the request: strategy selection plus modeled timing."""

    @abc.abstractmethod
    def run(self, request: EvalRequest) -> EvalResult:
        """Evaluate the request's keys over the full domain."""

    @property
    def plan_key(self) -> tuple:
        """Hashable identity for shared plan caches.

        Two backends with equal ``plan_key`` must produce
        interchangeable :class:`ExecutionPlan`/workspace pairs for the
        same request shape.  The base implementation is deliberately
        conservative — unique per instance — so an unknown backend (or
        a fault-injecting wrapper) never shares cache entries it did
        not prove it can share.  Concrete backends override this with
        their modeled-device identity.
        """
        return (self.name, id(self))

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        """Evaluate under an already-priced plan, reusing ``workspace``.

        The zero-dispatch hot path a :class:`~repro.exec.plan_cache
        .PlanCache` drives: the cache supplies the memoized plan and the
        pinned scratch workspace, so the steady state skips strategy
        re-selection and workspace churn entirely.  The default
        implementation falls back to :meth:`run` (ignoring both hints),
        which keeps wrappers — fault injectors especially — correct
        without their own override: their ``run`` still sees every
        dispatch.
        """
        del plan, workspace
        return self.run(request)

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        """Modeled batch latency for a workload *shape* — no keys needed.

        The metadata-only pricing hook drain-time admission builds on
        (:class:`repro.serve.control.DrainTimeModel`): the same number
        :meth:`plan` would report as
        :attr:`~repro.exec.request.ExecutionPlan.latency_s`, but priced
        from ``(batch, table, prf, residency)`` alone so a serving loop
        can ask "how fast would a flush of B queries drain" without
        synthesizing key material.  Returns ``None`` when the backend
        has no performance model (callers must then skip model-based
        policies rather than guess).
        """
        return None


class SingleGpuBackend(ExecutionBackend):
    """Scheduler-driven execution on one modeled device.

    Args:
        device: Target device model.
        strategies: Candidate strategy pool shared across decisions
            (default: every registered strategy, default parameters).
    """

    name = "single_gpu"

    def __init__(self, device: DeviceSpec = V100, strategies: list | None = None):
        self.device = device
        self._strategies = strategies
        # The selection names resolve back to the *pool's* instances
        # (their tuning parameters were what the scheduler priced), not
        # to fresh registry defaults.
        self._by_name = (
            {s.name: s for s in strategies} if strategies is not None else {}
        )
        self._schedulers: dict[int, Scheduler] = {}
        self._workspace = ExpansionWorkspace()

    def _scheduler(self, entry_bytes: int) -> Scheduler:
        scheduler = self._schedulers.get(entry_bytes)
        if scheduler is None:
            scheduler = Scheduler(
                self.device, entry_bytes=entry_bytes, strategies=self._strategies
            )
            self._schedulers[entry_bytes] = scheduler
        return scheduler

    def _select(self, request: EvalRequest) -> Selection:
        arena = request.arena()
        return self._scheduler(request.entry_bytes).select(
            arena.batch,
            arena.domain_size,
            prf_name=request.resolved_prf_name,
            resident_keys=request.resident,
        )

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        arena = request.arena()
        selection = self._select(request)
        return ExecutionPlan(
            backend=self.name,
            resident=request.resident,
            stats=_single_shard_stats(
                self.device,
                selection,
                arena.batch,
                arena.domain_size,
                request.resolved_prf_name,
            ),
        )

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self._scheduler(entry_bytes).latency_s(
            batch_size, table_entries, prf_name, resident
        )

    @property
    def plan_key(self) -> tuple:
        return (self.name, self.device.name, id(self._strategies))

    def run(self, request: EvalRequest) -> EvalResult:
        return self.run_with_plan(request, self.plan(request))

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        name = plan.strategies[0]
        strategy = self._by_name.get(name) or get_strategy(name)
        answers = strategy.eval_batch(
            request.arena(),
            get_prf(request.resolved_prf_name),
            workspace=workspace if workspace is not None else self._workspace,
        )
        return EvalResult(
            answers=self._apply_range(request, answers),
            plan=plan,
            cost=merged_cost(plan.stats, strategies=self._by_name),
        )


class MultiGpuBackend(ExecutionBackend):
    """Sharded execution across a (possibly mixed) device fleet.

    Args:
        devices: One :class:`DeviceSpec` per GPU; pass the same spec N
            times for a homogeneous N-GPU node.
    """

    name = "multi_gpu"

    def __init__(self, devices: list[DeviceSpec] | DeviceSpec = V100):
        if isinstance(devices, DeviceSpec):
            devices = [devices]
        if not devices:
            raise ValueError("need at least one device")
        self.devices = list(devices)
        self._executors: dict[int, MultiGpuExecutor] = {}

    def _executor(self, entry_bytes: int) -> MultiGpuExecutor:
        executor = self._executors.get(entry_bytes)
        if executor is None:
            executor = MultiGpuExecutor(self.devices, entry_bytes=entry_bytes)
            self._executors[entry_bytes] = executor
        return executor

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        arena = request.arena()
        stats = self._executor(request.entry_bytes).execute(
            arena.batch,
            arena.domain_size,
            prf_name=request.resolved_prf_name,
            resident_keys=request.resident,
        )
        return ExecutionPlan(backend=self.name, resident=request.resident, stats=stats)

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self._executor(entry_bytes).execute(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident_keys=resident,
        ).latency_s

    @property
    def plan_key(self) -> tuple:
        return (self.name, tuple(device.name for device in self.devices))

    def run(self, request: EvalRequest) -> EvalResult:
        return self.run_with_plan(request, self.plan(request))

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        # The executor keeps one persistent workspace per device already,
        # so the cache's pinned workspace is unused here; reusing the
        # cached plan still skips the per-flush shard re-pricing.
        del workspace
        answers = self._executor(request.entry_bytes).eval_batch(
            request.arena(),
            get_prf(request.resolved_prf_name),
            resident_keys=request.resident,
        )
        return EvalResult(
            answers=self._apply_range(request, answers),
            plan=plan,
            cost=merged_cost(plan.stats),
        )


class SimulatedBackend(ExecutionBackend):
    """Model-only backend: reference answers, simulated timing.

    ``run`` evaluates every key through the reference level-by-level
    walk (:func:`repro.dpf.dpf.eval_full`) — a per-key Python loop, so
    O(B) slower than the vectorized kernels but independent of them,
    which is exactly what an end-to-end oracle wants.  ``plan`` prices
    the request on the modeled device like :class:`SingleGpuBackend`,
    so what-if pricing of unattached hardware still works.
    """

    name = "simulated"

    def __init__(self, device: DeviceSpec = V100, strategies: list | None = None):
        self.device = device
        self._single = SingleGpuBackend(device, strategies=strategies)

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        plan = self._single.plan(request)
        return ExecutionPlan(backend=self.name, resident=plan.resident, stats=plan.stats)

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self._single.model_latency_s(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident=resident,
            entry_bytes=entry_bytes,
        )

    @property
    def plan_key(self) -> tuple:
        return (self.name, self.device.name)

    def run(self, request: EvalRequest) -> EvalResult:
        return self.run_with_plan(request, self.plan(request))

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        # The reference walk allocates per key and wants no workspace;
        # reusing the cached plan skips only the modeled re-pricing.
        del workspace
        prf = get_prf(request.resolved_prf_name)
        lo, hi = request.resolved_range()
        if (lo, hi) == (0, request.arena().domain_size):
            rows = [eval_full(key, prf) for key in request.arena().to_keys()]
        else:
            # Genuinely restricted: the pruned-frontier range walk never
            # expands subtrees outside [lo, hi).
            rows = [
                eval_range(key, prf, lo, hi) for key in request.arena().to_keys()
            ]
        return EvalResult(
            answers=np.stack(rows),
            plan=plan,
            cost=merged_cost(plan.stats, strategies=self._single._by_name),
        )
