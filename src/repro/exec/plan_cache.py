"""Plan/workspace cache: the zero-dispatch steady-state serving path.

The paper's headline numbers come from a persistent kernel that never
re-plans between batches; the Python-side analogue of that persistence
is this cache.  Without it, every flush of the serving loop pays
strategy re-selection (simulating every candidate plan) and workspace
reallocation even though steady-state traffic repeats the same handful
of batch shapes forever.  :class:`PlanCache` memoizes the
:class:`~repro.exec.request.ExecutionPlan` *and* pins one long-lived
:class:`~repro.gpu.arena.ExpansionWorkspace` per workload shape, so the
hot path becomes: look up, expand, done — zero re-planning, zero
scratch churn.

**Bucketing.**  Real traffic rarely repeats exact batch sizes (a flush
of 13, then 14, then 12 ...), so exact-shape memoization would miss
constantly.  Cache keys therefore round the batch up to a power-of-two
bucket (:func:`batch_bucket`): batches 9..16 all share one bucket-16
entry.  The entry's plan is priced *at the bucket* — the fixed grid a
persistent GPU kernel would launch, so its modeled latency is the
honest device cost of serving any batch in the bucket — but the kernel
executes the *exact* batch under that plan's strategy.  Strategy
choice never changes answers (every backend is pinned bit-identical
across strategies and against the reference evaluator), so no padding
work is executed and no pad rows exist to slice off; the pinned
workspace's buffers converge to the bucket's shape instead of
thrashing through every size.  What bucketing trades away is
selection exactness: the bucket plan's strategy may differ from what
exact-size selection would pick — a modeled-cost approximation bounded
by the < 2x shape gap, never a correctness risk.

**Cache key.**  ``(backend.plan_key, prf, domain_size, resident,
entry_bytes, bucket)`` — every axis that changes either the winning
strategy or the modeled plan.  ``backend.plan_key`` is the backend's
modeled-device identity, so a V100 and an A100 backend sharing one
cache never exchange plans.  Eviction is LRU with a bounded entry
count; each eviction also drops the pinned workspace.

Not thread-safe: like the workspace it pins, use one cache per serving
thread (or per worker process, as
:class:`~repro.exec.procpool.MultiProcessBackend` does).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.exec.backend import ExecutionBackend
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.gpu.arena import ExpansionWorkspace


def batch_bucket(batch: int) -> int:
    """The power-of-two bucket a batch size pads up to.

    Raises:
        ValueError: If ``batch`` is not positive.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    return 1 << (batch - 1).bit_length()


@dataclass
class PlanCacheStats:
    """Counters for one cache's lifetime.

    Attributes:
        hits: Lookups served from a memoized entry.
        misses: Lookups that had to plan (and pin a fresh workspace).
        evictions: Entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before any lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters — the metrics-registry view shape."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    plan: ExecutionPlan
    workspace: ExpansionWorkspace


class PlanCache:
    """LRU cache of (plan, pinned workspace) per workload shape.

    Args:
        max_entries: LRU bound on distinct shapes.  Each entry pins a
            grow-on-demand workspace, so the bound also caps retained
            scratch memory.

    Attributes:
        stats: Lifetime :class:`PlanCacheStats`.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (and its pinned workspace); stats persist."""
        self._entries.clear()

    def key_for(self, backend: ExecutionBackend, request: EvalRequest) -> tuple:
        """The cache key ``run`` would use for this backend + request."""
        arena = request.arena()
        return (
            backend.plan_key,
            request.resolved_prf_name,
            arena.domain_size,
            request.resident,
            request.entry_bytes,
            batch_bucket(arena.batch),
        )

    def run(self, backend: ExecutionBackend, request: EvalRequest) -> EvalResult:
        """Evaluate through the cache: look up, expand, done.

        On a hit the backend's :meth:`~repro.exec.backend
        .ExecutionBackend.run_with_plan` executes the request under the
        memoized plan and pinned workspace — no re-planning.  On a miss
        the plan is priced once at the bucket size (via
        :meth:`~repro.exec.request.EvalRequest.padded`, so it describes
        the full bucket-shaped launch) and the entry cached for every
        future batch that rounds to the same bucket.  The kernel always
        runs the *exact* request — padding is a pricing artifact, not
        executed work — so the result's ``answers`` have exactly
        ``batch`` rows while its ``plan`` is the bucket plan (its
        ``batch_size`` is the bucket, by design: it is the plan the
        request ran under).
        """
        arena = request.arena()
        key = self.key_for(backend, request)
        entry = self._entries.get(key)
        if entry is None:
            padded = request.padded(batch_bucket(arena.batch))
            entry = _Entry(plan=backend.plan(padded), workspace=ExpansionWorkspace())
            self._entries[key] = entry
            self.stats.misses += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        else:
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return backend.run_with_plan(request, entry.plan, entry.workspace)
