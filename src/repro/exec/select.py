"""Cost-model-driven backend selection: the Figure 10 crossover, live.

The paper's CPU-vs-GPU argument is a *routing* rule, not a verdict:
below some batch size the CPU's zero-launch-overhead answer wins, above
it the GPU's fused expansion does, and the crossover moves with the
table size and the PRF's hardware support.  This module turns that
rule into executable pieces:

* :func:`select_backend` — the one-shot decision: price a request's
  shape on every candidate through
  :meth:`~repro.exec.backend.ExecutionBackend.model_latency_s` and pick
  the cheapest.  Pure pricing, no state.
* :class:`HybridBackend` — a composite backend that applies the rule
  per dispatch.  It quantizes batches to the same power-of-two buckets
  the :class:`~repro.exec.plan_cache.PlanCache` keys on, memoizes the
  per-shape *crossover bucket* (the smallest bucket at which the best
  non-CPU candidate is at least as fast as the best CPU candidate), and
  routes by threshold: below the crossover the CPU side serves, at or
  above it the GPU side does.  Threshold routing makes the crossover
  monotone by construction — once a shape flips to the GPU it stays
  flipped for every larger bucket — which keeps cached plans, drain
  pricing, and the served reality consistent with each other.

Because :class:`HybridBackend` satisfies the full duck-typed backend
contract (``plan`` / ``run`` / ``plan_key`` / ``run_with_plan`` /
``model_latency_s``) and every candidate is bit-identical, it drops
unchanged behind :class:`~repro.exec.plan_cache.PlanCache`,
:class:`~repro.serve.fleet.FleetScheduler`, the sharded/replicated
servers, and the chaos wrappers: routing moves work between devices,
never changes answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exec.backend import ExecutionBackend
from repro.exec.plan_cache import batch_bucket
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.gpu.arena import ExpansionWorkspace

CPU_CLASS = "cpu"
GPU_CLASS = "gpu"


def _label(backend: ExecutionBackend, index: int) -> str:
    """Stable display name (mirrors the fleet router's labeling)."""
    device = getattr(backend, "device", None)
    if device is not None:
        return f"{index}:{device.name}"
    devices = getattr(backend, "devices", None)
    if devices:
        return f"{index}:" + "+".join(d.name for d in devices)
    return f"{index}:{backend.name}"


def _price(
    backend: ExecutionBackend,
    batch_size: int,
    table_entries: int,
    prf_name: str,
    resident: bool,
    entry_bytes: int,
) -> float | None:
    """A candidate's modeled latency, or ``None`` when it cannot serve.

    ``ValueError`` from the model means the shape is genuinely
    infeasible there (e.g. no feasible GPU strategy at this batch);
    ``None`` means the backend has no model.  Either way the candidate
    drops out of this decision.
    """
    try:
        latency = backend.model_latency_s(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident=resident,
            entry_bytes=entry_bytes,
        )
    except ValueError:
        return None
    if latency is None or latency <= 0:
        return None
    return latency


@dataclass(frozen=True)
class BackendChoice:
    """Outcome of one :func:`select_backend` decision.

    Attributes:
        index: Position of the winner in the candidate sequence.
        backend: The winning candidate.
        label: The winner's display name.
        latency_s: The winner's modeled latency for the request shape.
        priced: Every candidate's ``(label, latency)`` in candidate
            order; ``None`` latency marks a candidate that could not
            price the shape.
    """

    index: int
    backend: ExecutionBackend
    label: str
    latency_s: float
    priced: tuple[tuple[str, float | None], ...]


def select_backend(
    request: EvalRequest, candidates: Sequence[ExecutionBackend]
) -> BackendChoice:
    """Pick the cheapest candidate for one request by modeled latency.

    Prices the request's exact shape (batch, domain, PRF, residency,
    entry width) on every candidate and returns the minimum, ties
    broken by candidate order.  Candidates whose model cannot price the
    shape (no model, or a ``ValueError``-raising infeasible plan) are
    skipped.

    Raises:
        ValueError: On an empty candidate sequence, or when no
            candidate can price the shape.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("need at least one candidate backend")
    arena = request.arena()
    priced = tuple(
        (
            _label(backend, i),
            _price(
                backend,
                arena.batch,
                arena.domain_size,
                request.resolved_prf_name,
                request.resident,
                request.entry_bytes,
            ),
        )
        for i, backend in enumerate(candidates)
    )
    feasible = [
        (latency, i) for i, (_, latency) in enumerate(priced) if latency is not None
    ]
    if not feasible:
        raise ValueError(
            "no candidate backend can price the request shape "
            f"(batch={arena.batch}, domain={arena.domain_size}, "
            f"prf={request.resolved_prf_name!r})"
        )
    latency, index = min(feasible)
    return BackendChoice(
        index=index,
        backend=candidates[index],
        label=priced[index][0],
        latency_s=latency,
        priced=priced,
    )


class HybridBackend(ExecutionBackend):
    """Threshold-routes each request to the CPU or GPU side of the fleet.

    Candidates split by their ``device_class`` attribute (``"cpu"`` for
    :class:`~repro.baselines.cpu.CpuBackend`, ``"gpu"`` for everything
    else).  When both classes are present, routing is by the memoized
    per-shape crossover bucket (see module docstring); with a single
    class present it degenerates to cheapest-candidate selection per
    bucket.

    Args:
        candidates: Non-empty pool of bit-identical backends.
        max_crossover_bucket: Largest power-of-two bucket probed when
            searching for a shape's crossover; shapes that never flip
            within the cap route to the CPU side at every size.

    Attributes:
        route_counts: Dispatches routed to each candidate, by index
            (``plan`` alone never counts — only executed work does).
    """

    name = "hybrid"

    def __init__(
        self,
        candidates: Sequence[ExecutionBackend],
        max_crossover_bucket: int = 1 << 20,
    ):
        candidates = list(candidates)
        if not candidates:
            raise ValueError("need at least one candidate backend")
        if max_crossover_bucket < 1:
            raise ValueError(
                f"max_crossover_bucket must be >= 1, got {max_crossover_bucket}"
            )
        self.candidates = candidates
        self.max_crossover_bucket = max_crossover_bucket
        self.labels = [_label(b, i) for i, b in enumerate(candidates)]
        self.classes = [
            getattr(b, "device_class", GPU_CLASS) for b in candidates
        ]
        self.route_counts = [0] * len(candidates)
        self._crossovers: dict[tuple, int | None] = {}

    # -- pricing -------------------------------------------------------

    def _cheapest(
        self,
        device_class: str | None,
        batch_size: int,
        table_entries: int,
        prf_name: str,
        resident: bool,
        entry_bytes: int,
    ) -> tuple[int, float] | None:
        """Cheapest candidate of one class (or any, for ``None``)."""
        best: tuple[float, int] | None = None
        for i, backend in enumerate(self.candidates):
            if device_class is not None and self.classes[i] != device_class:
                continue
            latency = _price(
                backend, batch_size, table_entries, prf_name, resident, entry_bytes
            )
            if latency is None:
                continue
            if best is None or (latency, i) < best:
                best = (latency, i)
        if best is None:
            return None
        return best[1], best[0]

    def crossover_bucket(
        self,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> int | None:
        """The smallest bucket at which the GPU side wins this shape.

        ``None`` when the CPU side wins at every probed bucket (small
        tables, where per-batch GPU overheads never amortize).  Memoized
        per ``(table, prf, resident, entry_bytes)`` — the decision a
        serving loop replays every flush must be a dict lookup.
        """
        key = (table_entries, prf_name, resident, entry_bytes)
        if key in self._crossovers:
            return self._crossovers[key]
        crossover: int | None = None
        bucket = 1
        while bucket <= self.max_crossover_bucket:
            cpu = self._cheapest(
                CPU_CLASS, bucket, table_entries, prf_name, resident, entry_bytes
            )
            gpu = self._cheapest(
                GPU_CLASS, bucket, table_entries, prf_name, resident, entry_bytes
            )
            if cpu is None and gpu is not None:
                crossover = bucket
                break
            if cpu is not None and gpu is not None and gpu[1] <= cpu[1]:
                crossover = bucket
                break
            bucket <<= 1
        self._crossovers[key] = crossover
        return crossover

    def _decide(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str,
        resident: bool,
        entry_bytes: int,
    ) -> int:
        """Index of the candidate this shape routes to."""
        bucket = min(batch_bucket(batch_size), self.max_crossover_bucket)
        has_cpu = CPU_CLASS in self.classes
        has_gpu = GPU_CLASS in self.classes
        if has_cpu and has_gpu:
            crossover = self.crossover_bucket(
                table_entries, prf_name, resident, entry_bytes
            )
            side = (
                GPU_CLASS
                if crossover is not None and bucket >= crossover
                else CPU_CLASS
            )
        else:
            side = None  # single-class pool: plain cheapest-per-bucket
        for probe in (side, None):
            choice = self._cheapest(
                probe, bucket, table_entries, prf_name, resident, entry_bytes
            )
            if choice is not None:
                return choice[0]
        raise ValueError(
            "no candidate backend can price the request shape "
            f"(batch={batch_size}, domain={table_entries}, prf={prf_name!r})"
        )

    def _decide_request(self, request: EvalRequest) -> int:
        arena = request.arena()
        return self._decide(
            arena.batch,
            arena.domain_size,
            request.resolved_prf_name,
            request.resident,
            request.entry_bytes,
        )

    # -- counters ------------------------------------------------------

    def routing_counts(self) -> dict[str, int]:
        """Dispatch counts keyed by candidate label."""
        return dict(zip(self.labels, self.route_counts))

    def class_counts(self) -> dict[str, int]:
        """Dispatch counts folded to the CPU/GPU sides of the pool."""
        counts: dict[str, int] = {}
        for device_class, count in zip(self.classes, self.route_counts):
            counts[device_class] = counts.get(device_class, 0) + count
        return counts

    def snapshot(self) -> dict:
        """JSON-ready routing state — the metrics-registry view shape."""
        return {"routes": self.routing_counts(), "classes": self.class_counts()}

    # -- the backend contract ------------------------------------------

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        inner = self.candidates[self._decide_request(request)].plan(request)
        return ExecutionPlan(
            backend=self.name, resident=inner.resident, stats=inner.stats
        )

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        """The routed candidate's modeled latency for the exact batch."""
        try:
            index = self._decide(
                batch_size, table_entries, prf_name, resident, entry_bytes
            )
        except ValueError:
            return None
        return self.candidates[index].model_latency_s(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident=resident,
            entry_bytes=entry_bytes,
        )

    @property
    def plan_key(self) -> tuple:
        return (self.name,) + tuple(b.plan_key for b in self.candidates)

    def run(self, request: EvalRequest) -> EvalResult:
        index = self._decide_request(request)
        result = self.candidates[index].run(request)
        self.route_counts[index] += 1
        return EvalResult(
            answers=result.answers,
            plan=ExecutionPlan(
                backend=self.name,
                resident=result.plan.resident,
                stats=result.plan.stats,
            ),
            cost=result.cost,
        )

    def run_with_plan(
        self,
        request: EvalRequest,
        plan: ExecutionPlan,
        workspace: ExpansionWorkspace | None = None,
    ) -> EvalResult:
        # The bucketed decision is deterministic and memoized, so the
        # candidate chosen here is the one whose stats the cached plan
        # carries — plan and execution never disagree.
        index = self._decide_request(request)
        self.route_counts[index] += 1
        return self.candidates[index].run_with_plan(request, plan, workspace)
