"""Multi-process execution: real core-parallelism for shard workers.

Everything upstream of this module parallelizes inside one Python
process, so a sharded front-end walking its shards still runs them
sequentially on one core.  :class:`MultiProcessBackend` is the
:class:`~repro.exec.backend.ExecutionBackend` that finally crosses the
process boundary: a persistent pool of N worker processes, each holding
its own :class:`~repro.exec.plan_cache.PlanCache`, its own
:class:`~repro.exec.backend.SingleGpuBackend`, and (when installed) its
own resident slice of the table — the process-pool analogue of the
paper's one-GPU-per-shard deployment.

Three design rules keep it bit-exact and cheap on the wire:

* **Wire bytes cross the pipe, never pickled arrays.**  A batch ships
  as :meth:`~repro.gpu.arena.KeyArena.to_wire` output and the worker
  re-parses with the vectorized
  :meth:`~repro.gpu.arena.KeyArena.from_wire` — the same (round-trip
  property-tested) format the PIR wire layer already speaks, an order
  of magnitude denser than pickling the structure-of-arrays arena, and
  immune to pickle-protocol drift between parent and worker.
* **Workers are persistent.**  The pool starts once (lazily on first
  use, or eagerly via :meth:`start`) and each worker's plan cache and
  resident table slice survive across batches — the steady state does
  zero per-batch setup in the workers too.
* **The answer path is additive.**  :meth:`run` row-splits the batch
  across workers (each evaluates a contiguous key sub-batch; the
  parent concatenates — bit-exact because DPF rows are independent).
  :meth:`run_combined` goes further for the sharded serving path: the
  installed table slice is *column*-split across workers, each returns
  only its ``(B,)`` partial dot product, and the parent sums mod 2^64
  — tiny replies (8 bytes per query per worker) and exactly the
  partition-additivity argument :mod:`repro.serve.shard` already
  proves.

Fronted unchanged by :class:`~repro.serve.shard.ReplicaSet` /
:class:`~repro.serve.shard.ShardedPirServer`: the replica machinery
duck-types ``install_table`` / ``drop_table`` / ``run_combined``, so a
replica backed by this pool gets per-worker resident slices and the
combined fast path, while any other backend keeps the classic
run-then-dot path.  Worker exceptions are caught, serialized, and
re-raised in the parent as the typed :class:`WorkerFailure`, so retry /
eject / failover treat a crashed worker computation exactly like any
other backend fault.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection

import numpy as np

from repro.exec.backend import (
    ExecutionBackend,
    MultiGpuBackend,
    merged_cost,
)
from repro.exec.plan_cache import PlanCache
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.gpu.device import DeviceSpec, V100


class WorkerFailure(RuntimeError):
    """A worker process raised while evaluating.

    Carries the original exception's type name and message so chaos
    and property tests can still tell a crypto ValueError from an
    injected fault; the parent's retry machinery treats it like any
    backend fault.
    """

    def __init__(self, worker: int, exc_type: str, message: str):
        super().__init__(f"worker {worker} failed: {exc_type}: {message}")
        self.worker = worker
        self.exc_type = exc_type


def _split_counts(total: int, parts: int) -> list[int]:
    """Near-equal split of ``total`` items over ``parts`` (may be 0s)."""
    base, extra = divmod(total, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


def _worker_main(
    conn: multiprocessing.connection.Connection,
    device: DeviceSpec,
    cache_entries: int,
) -> None:
    """Worker loop: one backend + plan cache + resident slices, forever.

    Runs in the child process.  Every request arrives as wire bytes and
    is re-parsed with the vectorized ``from_wire``; every exception is
    serialized back instead of killing the worker, so one poisoned
    batch never takes the pool down.
    """
    # Imported here (not at module top-level use sites) only for
    # clarity: the child inherits the module via fork anyway.
    from repro.exec.backend import SingleGpuBackend
    from repro.gpu.arena import KeyArena

    backend = SingleGpuBackend(device)
    cache = PlanCache(max_entries=cache_entries)
    tables: dict[int, tuple[int, np.ndarray]] = {}

    def build_request(payload: tuple) -> EvalRequest:
        wire, prf_name, entry_bytes, resident, eval_range = payload
        return EvalRequest(
            keys=KeyArena.from_wire(wire),
            prf_name=prf_name,
            entry_bytes=entry_bytes,
            resident=resident,
            eval_range=eval_range,
        )

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        op = msg[0]
        if op == "stop":
            conn.send(("ok", None))
            return
        try:
            if op == "run":
                request = build_request(msg[1])
                result = cache.run(backend, request)
                answers = np.ascontiguousarray(result.answers)
                conn.send(("ok", (answers.tobytes(), answers.shape)))
            elif op == "install":
                _, epoch, lo, table_bytes = msg
                tables[epoch] = (lo, np.frombuffer(table_bytes, dtype=np.uint64))
                conn.send(("ok", None))
            elif op == "drop":
                tables.pop(msg[1], None)
                conn.send(("ok", None))
            elif op == "combined":
                request = build_request(msg[1])
                epoch = msg[2]
                lo, table_slice = tables[epoch]
                batch = request.arena().batch
                if table_slice.size == 0:
                    partial = np.zeros(batch, dtype=np.uint64)
                else:
                    restricted = request.restrict(lo, lo + table_slice.size)
                    partial = cache.run(backend, restricted).answers @ table_slice
                conn.send(("ok", partial.tobytes()))
            elif op == "cache_stats":
                stats = cache.stats
                conn.send(("ok", (stats.hits, stats.misses, stats.evictions)))
            else:
                conn.send(("err", "ValueError", f"unknown op {op!r}"))
        except Exception as exc:  # noqa: BLE001 — serialized to parent
            conn.send(("err", type(exc).__name__, str(exc)))


class MultiProcessBackend(ExecutionBackend):
    """A persistent worker-pool backend over N processes.

    Args:
        workers: Worker process count (>= 1).
        device: Modeled device each worker evaluates on; planning and
            ``model_latency_s`` price the pool as a ``workers``-way
            homogeneous fleet of this device.
        cache_entries: Each worker's :class:`PlanCache` LRU bound.

    The pool starts lazily on first use; call :meth:`start` to pay the
    fork eagerly (a serving loop should, from its main thread, before
    any executor threads exist).  Always :meth:`close` when done — the
    context-manager form does — though workers are daemonic, so a
    leaked pool cannot outlive the parent.
    """

    name = "multi_process"

    def __init__(
        self,
        workers: int = 2,
        device: DeviceSpec = V100,
        cache_entries: int = 32,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.device = device
        self.cache_entries = cache_entries
        self._model = MultiGpuBackend([device] * workers)
        self._procs: list[multiprocessing.Process] = []
        self._conns: list[multiprocessing.connection.Connection] = []
        self._tables: dict[int, tuple[int, int]] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> None:
        """Fork the worker pool now (idempotent).

        Raises:
            RuntimeError: If the pool was already closed.
        """
        if self._closed:
            raise RuntimeError("cannot restart a closed MultiProcessBackend")
        if self._procs:
            return
        ctx = multiprocessing.get_context()
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, self.device, self.cache_entries),
                name=f"pir-worker-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        self._conns = []

    def __enter__(self) -> "MultiProcessBackend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_started(self) -> None:
        if not self._procs:
            self.start()

    # -- dispatch plumbing ---------------------------------------------

    @staticmethod
    def _payload(request: EvalRequest, arena_slice) -> tuple:
        return (
            arena_slice.to_wire(),
            request.prf_name,
            request.entry_bytes,
            request.resident,
            request.eval_range,
        )

    def _dispatch(self, messages: list[tuple[int, tuple]]) -> list:
        """Send each ``(worker, message)``; return the payloads in order.

        Every worker that *was* successfully sent to is always drained
        (even when another send or recv fails), so the pipes stay
        aligned for the next dispatch — a stale reply read against a
        later request would be a silent wrong answer.  The first
        failure — a dead worker's broken pipe at send, a closed pipe at
        recv, or a serialized worker exception — is re-raised as the
        typed :class:`WorkerFailure` so retry/eject machinery treats a
        crashed worker process like any other backend fault.
        """
        send_failures: list[tuple[int, BaseException]] = []
        sent: list[int] = []
        for worker, message in messages:
            try:
                self._conns[worker].send(message)
                sent.append(worker)
            except OSError as exc:
                send_failures.append((worker, exc))
        replies = []
        for index in sent:
            try:
                replies.append((index, self._conns[index].recv()))
            except (EOFError, OSError) as exc:
                replies.append((index, ("err", type(exc).__name__, str(exc))))
        if send_failures:
            worker, exc = send_failures[0]
            raise WorkerFailure(worker, type(exc).__name__, str(exc))
        for index, (status, *rest) in replies:
            if status != "ok":
                exc_type, message = rest
                raise WorkerFailure(index, exc_type, message)
        return [reply[1][1] for reply in replies]

    def _broadcast(self, message: tuple) -> list:
        """Send one message to every worker; collect every reply."""
        self._ensure_started()
        return self._dispatch([(worker, message) for worker in range(self.workers)])

    # -- the ExecutionBackend protocol ---------------------------------

    @property
    def plan_key(self) -> tuple:
        return (self.name, self.device.name, self.workers)

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        """Price the pool as a homogeneous ``workers``-way fleet."""
        inner = self._model.plan(request)
        return ExecutionPlan(
            backend=self.name, resident=inner.resident, stats=inner.stats
        )

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self._model.model_latency_s(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident=resident,
            entry_bytes=entry_bytes,
        )

    def run(self, request: EvalRequest) -> EvalResult:
        """Row-split the batch across workers; concatenate the answers.

        Each worker evaluates a contiguous sub-batch through its own
        plan cache.  Row independence of DPF evaluation makes the
        concatenation bit-exact to a single-process run; the property
        tests pin that against :class:`SingleGpuBackend` across
        ingest / residency / range combinations.
        """
        self._ensure_started()
        arena = request.arena()
        plan = self.plan(request)
        counts = _split_counts(arena.batch, min(self.workers, arena.batch))
        offsets: list[tuple[int, int, int]] = []  # (worker, lo, hi)
        row = 0
        for worker, count in enumerate(counts):
            if count:
                offsets.append((worker, row, row + count))
                row += count
        replies = self._dispatch(
            [
                (worker, ("run", self._payload(request, arena[lo:hi])))
                for worker, lo, hi in offsets
            ]
        )
        parts = [
            np.frombuffer(raw, dtype=np.uint64).reshape(shape)
            for raw, shape in replies
        ]
        answers = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return EvalResult(
            answers=answers, plan=plan, cost=merged_cost(plan.stats)
        )

    # -- the sharded-serving fast path (duck-typed by ReplicaSet) ------

    def install_table(self, epoch: int, lo: int, table_slice: np.ndarray) -> None:
        """Install one epoch's resident rows, column-split over workers.

        Worker ``w`` holds a contiguous sub-slice of ``table_slice``
        (rows ``[lo, lo + len))`` of the full table), so
        :meth:`run_combined` parallelizes over the *domain* dimension —
        each worker expands only its sub-range and dots locally.
        """
        self._ensure_started()
        table_slice = np.ascontiguousarray(np.asarray(table_slice, dtype=np.uint64))
        counts = _split_counts(int(table_slice.size), self.workers)
        messages = []
        col = 0
        for worker, count in enumerate(counts):
            part = table_slice[col : col + count]
            messages.append((worker, ("install", epoch, lo + col, part.tobytes())))
            col += count
        self._dispatch(messages)
        self._tables[epoch] = (lo, lo + int(table_slice.size))

    def drop_table(self, epoch: int) -> None:
        """Drop one epoch's resident rows from every worker."""
        if not self._procs:
            self._tables.pop(epoch, None)
            return
        self._broadcast(("drop", epoch))
        self._tables.pop(epoch, None)

    def run_combined(self, request: EvalRequest, epoch: int) -> np.ndarray:
        """``(B,)`` partial dot product against the installed rows.

        The whole batch's wire bytes go to every worker; each expands
        its own column sub-range (through its plan cache) and returns
        only the 8-bytes-per-query partial; the parent sums mod 2^64.
        Disjoint sub-ranges partition the installed range, so the sum
        is bit-identical to ``answers @ table_slice`` in one process.

        Raises:
            KeyError: ``epoch`` was never installed.
            ValueError: The request's ``eval_range`` does not match the
                installed rows (a control-plane bug, failed loudly).
            WorkerFailure: A worker raised while evaluating.
        """
        if epoch not in self._tables:
            raise KeyError(
                f"epoch {epoch} has no installed table on this pool"
            )
        lo, hi = self._tables[epoch]
        if request.resolved_range() != (lo, hi):
            raise ValueError(
                f"request covers rows {request.resolved_range()} but epoch "
                f"{epoch} installed rows [{lo}, {hi})"
            )
        # Workers re-restrict to their own sub-ranges; ship the request
        # unrestricted so each builds its sub-range view itself.
        unrestricted = EvalRequest(
            keys=request.arena(),
            prf_name=request.prf_name,
            entry_bytes=request.entry_bytes,
            resident=request.resident,
            _arena=request.arena(),
        )
        payload = self._payload(unrestricted, unrestricted.arena())
        replies = self._broadcast(("combined", payload, epoch))
        total = np.zeros(request.arena().batch, dtype=np.uint64)
        for raw in replies:
            np.add(total, np.frombuffer(raw, dtype=np.uint64), out=total)
        return total

    # -- observability -------------------------------------------------

    def worker_cache_stats(self) -> list[tuple[int, int, int]]:
        """Each worker's ``(hits, misses, evictions)``, in worker order."""
        return self._broadcast(("cache_stats",))
