"""Request-oriented types shared by every execution backend.

The execution substrate underneath (:mod:`repro.gpu`) grew four entry
points with slightly different conventions — ``Strategy.eval_batch``,
``Scheduler.select``, ``MultiGpuExecutor.execute`` and the raw
``GpuSimulator``.  The :mod:`repro.exec` layer folds them behind one
request/plan/result vocabulary:

* :class:`EvalRequest` — what a caller wants evaluated: key material in
  any accepted form (:data:`~repro.gpu.arena.KeySource`), the table
  spec, and residency/SLO hints.
* :class:`ExecutionPlan` — what a backend would do for the request and
  what the performance model predicts for it, expressed as per-device
  shards (a single-device backend emits one shard).
* :class:`EvalResult` — the evaluated ``(B, L)`` share matrix plus the
  plan it ran under and the merged functional cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.gpu.arena import KeyArena, KeySource
from repro.gpu.multigpu import MultiGpuStats
from repro.gpu.strategies import StrategyCost


@dataclass
class EvalRequest:
    """One batch-evaluation request against a replicated table.

    Attributes:
        keys: Key material — an already-built :class:`KeyArena`, a
            sequence of :class:`~repro.dpf.keys.DpfKey` objects, or
            concatenated wire bytes (:func:`repro.dpf.keys.pack_keys`
            output).  Ingestion happens once, on first use, through
            :meth:`KeyArena.ingest`.
        prf_name: PRF the evaluator must use.  ``None`` means "whatever
            the keys were generated for"; a non-``None`` value that
            mismatches the keys raises at ingestion.
        entry_bytes: Bytes per table entry (the table spec the planner
            prices MAC work and transfers against).
        resident: Residency hint — plan and price the batch as served
            from a key arena already uploaded to the device
            (``host_bytes_in`` amortized to zero, arena charged against
            device capacity).  Functional answers are bit-identical
            either way.
        slo_latency_s: Optional latency SLO; :meth:`ExecutionPlan
            .meets_slo` reports whether the modeled latency honors it.
        eval_range: Optional ``(lo, hi)`` sub-domain restriction — the
            sharded-serving hook.  When set, ``run`` returns a
            ``(B, hi - lo)`` share matrix covering table rows
            ``[lo, hi)`` only, bit-identical to columns ``lo:hi`` of
            the unrestricted expansion; a shard server holding rows
            ``[lo, hi)`` dots that directly with its table slice.
            ``plan`` still prices the full expansion (the modeled
            kernels expand whole subtrees; the reference
            :func:`repro.dpf.dpf.eval_range` walk is genuinely
            restricted).
        traces: Optional per-constituent trace contexts
            (:class:`repro.obs.trace.TraceContext`), one slot per
            merge constituent — ``None`` (the default, and the
            disabled-tracing fast path) means untraced.  A request
            fresh from a client carries one slot; :meth:`merge`
            concatenates the constituents' slots so deep layers
            (shard fan-out, replica failover) can annotate exactly
            the queries they acted on via
            :func:`repro.obs.trace.annotate_request`, and
            :meth:`unmerge` hands each slice its own slot back.
            Excluded from ``repr``/comparison — tracing never changes
            what a request *is*.
    """

    keys: KeySource
    prf_name: str | None = None
    entry_bytes: int = 8
    resident: bool = False
    slo_latency_s: float | None = None
    eval_range: tuple[int, int] | None = None
    traces: tuple | None = field(default=None, repr=False, compare=False)
    _arena: KeyArena | None = field(default=None, repr=False, compare=False)

    def arena(self) -> KeyArena:
        """The request's keys as a :class:`KeyArena`, ingested once.

        Repeated calls (``plan`` then ``run``, or several backends
        planning the same request) reuse the first ingestion — the wire
        parse or object stacking is never repeated.
        """
        if self._arena is None:
            self._arena = KeyArena.ingest(self.keys, prf_name=self.prf_name)
        return self._arena

    @property
    def resolved_prf_name(self) -> str:
        """The PRF evaluation will use (explicit hint or the keys')."""
        return self.prf_name if self.prf_name is not None else self.arena().prf_name

    def resolved_range(self) -> tuple[int, int]:
        """The ``[lo, hi)`` rows evaluation covers, validated.

        ``eval_range=None`` resolves to the full domain.

        Raises:
            ValueError: If the range is empty, inverted, or falls
                outside the keys' domain.
        """
        domain = self.arena().domain_size
        if self.eval_range is None:
            return 0, domain
        lo, hi = self.eval_range
        if not 0 <= lo < hi <= domain:
            raise ValueError(
                f"eval_range [{lo}, {hi}) is not a non-empty sub-range of "
                f"the keys' domain [0, {domain})"
            )
        return lo, hi

    def restrict(self, lo: int, hi: int) -> "EvalRequest":
        """A copy of this request restricted to table rows ``[lo, hi)``.

        The copy shares the ingested arena (zero-copy — ingestion is
        never repeated), so a sharded front-end can fan one merged
        request out to N shard replicas as N restricted requests for
        the cost of N small objects.
        """
        request = EvalRequest(
            keys=self.arena(),
            prf_name=self.prf_name,
            entry_bytes=self.entry_bytes,
            resident=self.resident,
            slo_latency_s=self.slo_latency_s,
            eval_range=(lo, hi),
            traces=self.traces,
            _arena=self.arena(),
        )
        request.resolved_range()
        return request

    def padded(self, total: int) -> "EvalRequest":
        """A copy of this request padded to ``total`` keys.

        The pad half of the plan cache's pad-and-slice bucketing: the
        arena grows to ``total`` rows by repeating its last key
        (:meth:`KeyArena.pad_to`), every other setting — including any
        ``eval_range`` restriction — is preserved, and the caller slices
        the padded tail back off the answers (``answers[:batch]``).  A
        ``total`` equal to the current batch returns ``self`` unchanged.

        Raises:
            ValueError: If ``total`` is smaller than the current batch.
        """
        arena = self.arena()
        if total == arena.batch:
            return self
        grown = arena.pad_to(total)
        return EvalRequest(
            keys=grown,
            prf_name=self.prf_name,
            entry_bytes=self.entry_bytes,
            resident=self.resident,
            slo_latency_s=self.slo_latency_s,
            eval_range=self.eval_range,
            traces=self.traces,
            _arena=grown,
        )

    @classmethod
    def merge(
        cls, requests: Sequence["EvalRequest"]
    ) -> tuple["EvalRequest", tuple[int, ...]]:
        """Fuse several requests into one kernel-sized batch request.

        This is what turns N concurrent clients' queries into the one
        fused expansion the paper's serving throughput comes from: the
        requests' arenas concatenate in order
        (:meth:`KeyArena.concat`), so row ranges of the merged answers
        map back to the original requests by offset —
        :meth:`EvalResult.split` does exactly that slicing.

        The merged request keeps the shared ``entry_bytes``/``resident``
        settings and the *tightest* latency SLO of any constituent (the
        batch must honor every caller's deadline).

        Args:
            requests: Non-empty sequence of requests over the same
                domain/PRF with identical ``entry_bytes`` and
                ``resident`` settings.

        Returns:
            ``(merged, sizes)`` — the fused request plus each
            constituent's batch size, in order (``sizes[i]`` rows of the
            merged answers belong to ``requests[i]``).

        Raises:
            ValueError: On an empty sequence, mismatched
                ``entry_bytes``/``resident``/PRF settings, or arenas
                whose domains disagree.
        """
        if not requests:
            raise ValueError("need at least one request to merge")
        first = requests[0]
        for request in requests[1:]:
            if request.entry_bytes != first.entry_bytes:
                raise ValueError(
                    "cannot merge requests with different entry_bytes "
                    f"({request.entry_bytes} vs {first.entry_bytes})"
                )
            if request.resident != first.resident:
                raise ValueError("cannot merge resident and streaming requests")
            if request.resolved_prf_name != first.resolved_prf_name:
                raise ValueError(
                    "cannot merge requests with different PRFs "
                    f"({request.resolved_prf_name!r} vs {first.resolved_prf_name!r})"
                )
            if request.eval_range != first.eval_range:
                raise ValueError(
                    "cannot merge requests with different eval_range "
                    f"restrictions ({request.eval_range} vs {first.eval_range})"
                )
        arenas = [request.arena() for request in requests]
        slos = [r.slo_latency_s for r in requests if r.slo_latency_s is not None]
        # One trace slot per constituent: a single-query request
        # contributes its context, anything else (untraced, or itself
        # already merged) contributes None — never misattributed.
        trace_slots = tuple(
            request.traces[0]
            if request.traces is not None and len(request.traces) == 1
            else None
            for request in requests
        )
        merged = cls(
            keys=KeyArena.concat(arenas),
            prf_name=first.prf_name,
            entry_bytes=first.entry_bytes,
            resident=first.resident,
            slo_latency_s=min(slos) if slos else None,
            eval_range=first.eval_range,
            traces=trace_slots if any(t is not None for t in trace_slots) else None,
        )
        return merged, tuple(arena.batch for arena in arenas)

    @classmethod
    def unmerge(
        cls, merged: "EvalRequest", sizes: Sequence[int]
    ) -> list["EvalRequest"]:
        """Split a fused request back into its constituent requests.

        The inverse of :meth:`merge`, and the retry path's workhorse: a
        backend failure poisons the *fused* batch, but each constituent
        is individually retryable, so the serving loop un-merges the
        batch and requeues the survivors.  Each returned request wraps
        a zero-copy slice of the merged arena (ingestion is never
        repeated) and inherits the merged ``entry_bytes`` / ``resident``
        / SLO settings — re-merging the pieces reproduces the original
        batch bit for bit.

        Args:
            merged: A request produced by :meth:`merge` (or any request
                whose arena covers ``sum(sizes)`` keys).
            sizes: The per-constituent batch sizes :meth:`merge`
                returned, in order.

        Raises:
            ValueError: If ``sizes`` is empty, contains a non-positive
                size, or does not sum to the merged arena's batch.
        """
        arena = merged.arena()
        if not sizes:
            raise ValueError("need at least one slice size")
        if any(size <= 0 for size in sizes):
            raise ValueError(f"slice sizes must be positive, got {tuple(sizes)}")
        if sum(sizes) != arena.batch:
            raise ValueError(
                f"slice sizes sum to {sum(sizes)} but the merged arena "
                f"carries {arena.batch} keys"
            )
        # Hand each slice its own trace slot back — but only when the
        # merged slots align 1:1 with the requested slices (they always
        # do on the serving loop's unmerge path; any other split gets
        # untraced slices rather than misattributed contexts).
        slots: Sequence = (
            merged.traces
            if merged.traces is not None and len(merged.traces) == len(sizes)
            else (None,) * len(sizes)
        )
        requests = []
        offset = 0
        for size, slot in zip(sizes, slots):
            requests.append(
                cls(
                    keys=arena[offset : offset + size],
                    prf_name=merged.prf_name,
                    entry_bytes=merged.entry_bytes,
                    resident=merged.resident,
                    slo_latency_s=merged.slo_latency_s,
                    eval_range=merged.eval_range,
                    traces=(slot,) if slot is not None else None,
                )
            )
            offset += size
        return requests


@dataclass(frozen=True)
class ExecutionPlan:
    """A backend's priced decision for one :class:`EvalRequest`.

    Attributes:
        backend: Name of the backend that produced the plan.
        resident: Whether the plan assumes a device-resident key arena.
        stats: Per-shard selections and merged timing, in the
            :class:`~repro.gpu.multigpu.MultiGpuStats` shape regardless
            of backend — a single-device backend emits exactly one
            shard, so callers never branch on the backend type.
    """

    backend: str
    resident: bool
    stats: MultiGpuStats

    @property
    def batch_size(self) -> int:
        return self.stats.batch_size

    @property
    def table_entries(self) -> int:
        return self.stats.table_entries

    @property
    def latency_s(self) -> float:
        return self.stats.latency_s

    @property
    def throughput_qps(self) -> float:
        return self.stats.throughput_qps

    @property
    def strategies(self) -> tuple[str, ...]:
        """Winning strategy name per shard, in device order."""
        return tuple(s.selection.strategy for s in self.stats.shards)

    @property
    def feasible(self) -> bool:
        """Whether every shard's winning plan fits its device."""
        return all(s.selection.stats.feasible for s in self.stats.shards)

    def meets_slo(self, slo_latency_s: float | None) -> bool:
        """Whether the modeled latency honors ``slo_latency_s``.

        ``None`` (no SLO) always holds, matching a request without the
        hint.
        """
        return slo_latency_s is None or self.latency_s <= slo_latency_s


@dataclass(frozen=True)
class EvalResult:
    """Answers plus the accounting for one executed request.

    Attributes:
        answers: ``(B, L)`` uint64 share matrix in request key order;
            adding both parties' matrices mod 2^64 reconstructs the
            scaled one-hot rows.
        plan: The :class:`ExecutionPlan` the batch ran under.
        cost: Merged functional :class:`StrategyCost` across shards —
            ``prf_blocks``/``parallel_width`` sum over shards and
            ``peak_mem_bytes`` is the fleet-wide footprint (shards run
            on distinct devices concurrently).  ``strategy`` is the
            single shared name, or ``"mixed"`` when shards diverge.
    """

    answers: np.ndarray
    plan: ExecutionPlan
    cost: StrategyCost

    @property
    def batch_size(self) -> int:
        return int(self.answers.shape[0])

    def split(self, sizes: Sequence[int]) -> list[np.ndarray]:
        """Slice the answers back into per-request share matrices.

        The demultiplexing half of :meth:`EvalRequest.merge`: given the
        ``sizes`` that call returned, slice the merged ``(B, L)`` answer
        matrix into one zero-copy view per constituent request, in
        merge order.

        Raises:
            ValueError: If ``sizes`` is empty, contains a non-positive
                size, or does not sum to this result's batch size.
        """
        if not sizes:
            raise ValueError("need at least one slice size")
        if any(size <= 0 for size in sizes):
            raise ValueError(f"slice sizes must be positive, got {tuple(sizes)}")
        if sum(sizes) != self.batch_size:
            raise ValueError(
                f"slice sizes sum to {sum(sizes)} but the result carries "
                f"{self.batch_size} answer rows"
            )
        views = []
        offset = 0
        for size in sizes:
            views.append(self.answers[offset : offset + size])
            offset += size
        return views
