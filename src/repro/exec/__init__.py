"""Unified execution layer: one request-oriented API over the substrate.

Before this layer, callers had to know which of four entry points to
drive — ``Strategy.eval_batch``, ``Scheduler.select``,
``MultiGpuExecutor.execute``, or the raw ``GpuSimulator`` — each with
its own key/arena/residency conventions.  Here a caller builds one
:class:`EvalRequest` (keys in any accepted form, table spec, residency
and SLO hints) and hands it to any :class:`ExecutionBackend`:

* :meth:`ExecutionBackend.plan` — scheduler-driven strategy selection
  plus modeled timing, as an :class:`ExecutionPlan`.
* :meth:`ExecutionBackend.run` — the functional ``(B, L)`` share
  matrix plus the plan and merged cost, as an :class:`EvalResult`.

The four adapters (:class:`SingleGpuBackend`, :class:`MultiGpuBackend`,
:class:`SimulatedBackend`, :class:`MultiProcessBackend`) produce
bit-identical answers; the PIR pipeline in :mod:`repro.pir` serves
through whichever one it is handed.  :class:`PlanCache` adds the
zero-dispatch steady-state path on top: memoized plans plus pinned
workspaces per workload shape, with pow2 batch bucketing.

:mod:`repro.exec.select` is the hybrid-execution decision layer:
:func:`select_backend` prices a request on every candidate and picks
the cheapest, and :class:`HybridBackend` packages that rule as a
backend of its own — per-shape crossover buckets route small batches
to a CPU baseline and large ones to the GPUs (Figure 10's argument as
a dispatch policy).
"""

from repro.exec.backend import (
    ExecutionBackend,
    MultiGpuBackend,
    SimulatedBackend,
    SingleGpuBackend,
    merged_cost,
)
from repro.exec.plan_cache import PlanCache, PlanCacheStats, batch_bucket
from repro.exec.procpool import MultiProcessBackend, WorkerFailure
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan
from repro.exec.select import BackendChoice, HybridBackend, select_backend

__all__ = [
    "EvalRequest",
    "EvalResult",
    "ExecutionPlan",
    "ExecutionBackend",
    "SingleGpuBackend",
    "MultiGpuBackend",
    "MultiProcessBackend",
    "SimulatedBackend",
    "HybridBackend",
    "BackendChoice",
    "PlanCache",
    "PlanCacheStats",
    "WorkerFailure",
    "batch_bucket",
    "select_backend",
    "merged_cost",
]
