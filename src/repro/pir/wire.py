"""Versioned request/response framing for the two-server PIR protocol.

One frame format carries both directions (paper Figure 2):

* A **query** frame carries a batch of DPF keys for one server —
  :func:`repro.dpf.keys.pack_keys` output embedded verbatim, so the
  server can hand the payload straight to
  :meth:`repro.gpu.arena.KeyArena.from_wire` without re-framing.
* A **reply** frame carries the server's answer shares, one uint64 per
  query, little-endian.

Layout (little-endian)::

    magic    4s   b"PIR1"
    version  u8   WIRE_VERSION
    kind     u8   0 = query, 1 = reply
    req_id   u64  client-chosen correlation id, echoed in the reply
    epoch    u32  table epoch the query targets, echoed in the reply
    count    u32  key records (query) / answer shares (reply)
    length   u64  payload bytes
    payload  ...  pack_keys output / packed uint64 shares

Version 2 added the ``epoch`` field for online table updates: a query
is generated against (and must be answered from) one specific published
table version, so a server mid-update can keep answering old-epoch
queries from the retained epoch instead of silently mixing tables.
Version-1 frames (no epoch) are rejected outright — an epoch-less query
is ambiguous the moment two table versions coexist.

A frame must be *exactly* header + ``length`` bytes — trailing garbage
is rejected at the frame boundary, mirroring the strictness of
:func:`repro.dpf.keys.split_wire` one layer down.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

MAGIC = b"PIR1"
WIRE_VERSION = 2

KIND_QUERY = 0
KIND_REPLY = 1

_FRAME_FMT = "<4sBBQIIQ"
FRAME_HEADER_BYTES = struct.calcsize(_FRAME_FMT)

_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1


def _pack_header(
    kind: int, request_id: int, epoch: int, count: int, payload_len: int
) -> bytes:
    if not 0 <= request_id <= _U64_MAX:
        raise ValueError(f"request_id must fit in a u64, got {request_id}")
    if not 0 <= epoch <= _U32_MAX:
        raise ValueError(f"epoch must fit in a u32, got {epoch}")
    if not 0 < count <= _U32_MAX:
        raise ValueError(f"count must be a positive u32, got {count}")
    return struct.pack(
        _FRAME_FMT, MAGIC, WIRE_VERSION, kind, request_id, epoch, count, payload_len
    )


def _unpack_header(data: bytes, expect_kind: int) -> tuple[int, int, int, bytes]:
    """Validate a frame end to end; return (request_id, epoch, count, payload)."""
    if len(data) < FRAME_HEADER_BYTES:
        raise ValueError(
            f"PIR frame truncated: need at least {FRAME_HEADER_BYTES} header "
            f"bytes, got {len(data)}"
        )
    magic, version, kind, request_id, epoch, count, length = struct.unpack_from(
        _FRAME_FMT, data
    )
    if magic != MAGIC:
        raise ValueError(f"bad PIR frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported PIR wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if kind != expect_kind:
        want = "query" if expect_kind == KIND_QUERY else "reply"
        raise ValueError(f"expected a PIR {want} frame, got kind {kind}")
    if count <= 0:
        raise ValueError("PIR frame must carry at least one record")
    if len(data) != FRAME_HEADER_BYTES + length:
        raise ValueError(
            f"PIR frame length mismatch: header declares {length} payload "
            f"bytes, frame carries {len(data) - FRAME_HEADER_BYTES}"
        )
    return request_id, epoch, count, data[FRAME_HEADER_BYTES:]


@dataclass(frozen=True)
class PirQuery:
    """A client->server key batch for one request.

    Attributes:
        request_id: Correlation id the server echoes in its reply.
        count: Number of key records the payload claims to carry; the
            server cross-checks it against the ingested arena's batch.
        key_bytes: :func:`repro.dpf.keys.pack_keys` output, handed
            straight to :meth:`KeyArena.from_wire` on the server.
        epoch: Table epoch the query was generated against; the server
            answers from exactly that epoch's table (a retired epoch is
            a typed, client-retryable error) and echoes it in the
            reply.  0 is the initial table.
    """

    request_id: int
    count: int
    key_bytes: bytes
    epoch: int = 0

    def to_bytes(self) -> bytes:
        return _pack_header(
            KIND_QUERY, self.request_id, self.epoch, self.count, len(self.key_bytes)
        ) + self.key_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "PirQuery":
        """Parse and validate one query frame.

        Raises:
            ValueError: On bad magic/version/kind, a length mismatch
                (including trailing garbage), or an empty batch.
        """
        request_id, epoch, count, payload = _unpack_header(data, KIND_QUERY)
        if not payload:
            raise ValueError("PIR query carries no key bytes")
        return cls(request_id=request_id, count=count, key_bytes=payload, epoch=epoch)


@dataclass(frozen=True)
class PirReply:
    """A server->client batch of answer shares.

    Attributes:
        request_id: Echo of the query's correlation id.
        answers: ``(B,)`` uint64 answer shares, one per query key, in
            key order.
        epoch: Echo of the query's table epoch — the table version the
            shares were computed against.
    """

    request_id: int
    answers: np.ndarray
    epoch: int = 0

    def to_bytes(self) -> bytes:
        answers = np.ascontiguousarray(self.answers, dtype="<u8")
        if answers.ndim != 1 or answers.size == 0:
            raise ValueError("reply answers must be a non-empty 1-D array")
        payload = answers.tobytes()
        return _pack_header(
            KIND_REPLY, self.request_id, self.epoch, answers.size, len(payload)
        ) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "PirReply":
        """Parse and validate one reply frame.

        Raises:
            ValueError: On bad magic/version/kind, a length mismatch
                (including trailing garbage), or a payload that is not
                exactly ``count`` uint64 shares.
        """
        request_id, epoch, count, payload = _unpack_header(data, KIND_REPLY)
        if len(payload) != 8 * count:
            raise ValueError(
                f"PIR reply declares {count} answers but carries "
                f"{len(payload)} payload bytes (expected {8 * count})"
            )
        answers = np.frombuffer(payload, dtype="<u8").astype(np.uint64, copy=False)
        return cls(request_id=request_id, answers=answers, epoch=epoch)
