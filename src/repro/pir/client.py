"""The PIR client: query generation and answer reconstruction.

The client side of the paper's protocol is cheap by construction
(Figure 3): generating a query is ``O(log L)`` PRF calls per index via
:func:`repro.dpf.dpf.gen`, and reconstruction is one ring addition per
query.  :class:`PirClient` batches both: one :meth:`~PirClient.query`
call turns a set of secret indices into the two framed request buffers
(one per non-colluding server), and :meth:`~PirClient.reconstruct`
combines the two reply frames into the retrieved table entries —
``share_0 + share_1 (mod 2^64)``, which telescopes to ``table[alpha]``
because the servers' expansion shares sum to the one-hot vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto.prf import Prf, get_prf
from repro.dpf.dpf import gen
from repro.dpf.keys import DpfKey, pack_keys
from repro.pir.wire import PirQuery, PirReply


def _as_index_list(indices: Sequence[int] | int | np.ndarray) -> list[int]:
    """One normalization point for every accepted index form."""
    if isinstance(indices, (int, np.integer)):
        return [int(indices)]
    index_list = [int(i) for i in indices]
    if not index_list:
        raise ValueError("need at least one query index")
    return index_list


@dataclass(frozen=True)
class QueryBatch:
    """One issued query batch: what to send and how to match replies.

    Attributes:
        request_id: Correlation id embedded in both request frames.
        indices: The secret indices, in answer order (client-side only;
            never serialized).
        requests: The two framed request buffers — ``requests[p]`` goes
            to server ``p``.
        epoch: Table epoch both frames are pinned to;
            :meth:`PirClient.reconstruct` rejects replies answered from
            any other epoch.
    """

    request_id: int
    indices: tuple[int, ...]
    requests: tuple[bytes, bytes]
    epoch: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.indices)


class PirClient:
    """Issues private queries against a replicated two-server table.

    Args:
        table_entries: Table size L both servers hold.
        prf: PRF (instance or registry name) shared with the servers.
        rng: Source of key-generation randomness (default: a fresh
            OS-seeded generator; pass a seeded one for reproducibility).
        epoch: Table epoch to pin queries to (the version the client
            last learned the servers publish).  A server mid-update
            answers from exactly this version or fails typed —
            reconstruction never mixes table versions.  Mutable: bump
            it when the serving side announces a flip.
    """

    def __init__(
        self,
        table_entries: int,
        prf: Prf | str = "aes128",
        rng: np.random.Generator | None = None,
        epoch: int = 0,
    ):
        if table_entries <= 0:
            raise ValueError(f"table_entries must be positive, got {table_entries}")
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.table_entries = table_entries
        self.prf = get_prf(prf) if isinstance(prf, str) else prf
        self.rng = rng if rng is not None else np.random.default_rng()
        self.epoch = epoch
        self._next_request_id = 0

    def generate_keys(
        self, indices: Sequence[int] | int | np.ndarray
    ) -> tuple[list[DpfKey], list[DpfKey]]:
        """The raw key pairs for a batch of secret indices.

        Returns:
            ``(keys_0, keys_1)`` — key ``i`` of each list encodes
            ``f(indices[i]) = 1``; list ``p`` goes to server ``p``.
            This is the object-ingest form; :meth:`query` wraps it in
            the wire protocol.
        """
        index_list = _as_index_list(indices)
        keys_0, keys_1 = [], []
        for alpha in index_list:
            k0, k1 = gen(alpha, self.table_entries, self.prf, self.rng, beta=1)
            keys_0.append(k0)
            keys_1.append(k1)
        return keys_0, keys_1

    def query(self, indices: Sequence[int] | int | np.ndarray) -> QueryBatch:
        """Build the two framed request buffers for a batch of indices.

        Both frames are pinned to the client's current :attr:`epoch`.
        """
        indices = _as_index_list(indices)
        keys_0, keys_1 = self.generate_keys(indices)
        request_id = self._next_request_id
        self._next_request_id += 1
        requests = tuple(
            PirQuery(
                request_id=request_id,
                count=len(keys),
                key_bytes=pack_keys(keys),
                epoch=self.epoch,
            ).to_bytes()
            for keys in (keys_0, keys_1)
        )
        return QueryBatch(
            request_id=request_id,
            indices=tuple(indices),
            requests=requests,
            epoch=self.epoch,
        )

    def query_many(
        self,
        indices: Sequence[int] | np.ndarray,
        queries_per_request: int = 1,
    ) -> list[QueryBatch]:
        """Build many independent framed request pairs in one call.

        Where :meth:`query` models one client sending one batch,
        ``query_many`` models a *population* of concurrent clients:
        each group of ``queries_per_request`` consecutive indices
        becomes its own :class:`QueryBatch` with its own correlation id
        and wire frames (a trailing short group keeps the remainder).
        This is what the serving load generator fires at the async
        batch-aggregation loop — callers no longer loop per index.

        Args:
            indices: Secret indices, split into per-request groups in
                order.
            queries_per_request: Indices per generated request (>= 1).

        Raises:
            ValueError: On an empty index list or a non-positive group
                size.
        """
        index_list = _as_index_list(indices)
        if queries_per_request <= 0:
            raise ValueError(
                f"queries_per_request must be positive, got {queries_per_request}"
            )
        return [
            self.query(index_list[start : start + queries_per_request])
            for start in range(0, len(index_list), queries_per_request)
        ]

    def reconstruct(
        self,
        batch: QueryBatch,
        reply_0: bytes | PirReply,
        reply_1: bytes | PirReply,
    ) -> np.ndarray:
        """Combine the two servers' replies into the table entries.

        Returns:
            ``(B,)`` uint64 — ``result[i] == table[batch.indices[i]]``.

        Raises:
            ValueError: On a malformed reply frame, a correlation-id
                mismatch, a reply answered from a different table epoch
                than the batch was pinned to, or replies whose answer
                counts disagree with the batch.
        """
        replies = []
        for raw in (reply_0, reply_1):
            reply = PirReply.from_bytes(raw) if isinstance(raw, bytes) else raw
            if reply.request_id != batch.request_id:
                raise ValueError(
                    f"reply correlates to request {reply.request_id}, "
                    f"expected {batch.request_id}"
                )
            if reply.epoch != batch.epoch:
                raise ValueError(
                    f"reply was answered from table epoch {reply.epoch} but "
                    f"the query was pinned to epoch {batch.epoch}; shares "
                    f"from different table versions must not be combined"
                )
            if reply.answers.shape != (batch.batch_size,):
                raise ValueError(
                    f"reply carries {reply.answers.size} answers for a batch "
                    f"of {batch.batch_size} queries"
                )
            replies.append(reply)
        # Additive share combine in Z_{2^64}; uint64 wrap-around is the ring.
        return (replies[0].answers + replies[1].answers).astype(np.uint64)
