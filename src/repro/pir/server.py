"""The PIR server: a replicated table answered through any backend.

One :class:`PirServer` plays one of the two non-colluding parties in
the paper's protocol.  It holds the table (8-byte entries, uint64 rows)
and answers key batches in two forms:

* :meth:`PirServer.answer_shares` — key material in any
  :data:`~repro.gpu.arena.KeySource` form, returning raw uint64 answer
  shares.  The wire form hands the bytes straight to
  :meth:`KeyArena.from_wire` — no per-key Python objects on the hot
  path.
* :meth:`PirServer.handle` — the full framed protocol:
  :class:`~repro.pir.wire.PirQuery` bytes in,
  :class:`~repro.pir.wire.PirReply` bytes out.

Evaluation flows through whatever :class:`ExecutionBackend` the server
was built with — single-GPU, multi-GPU, or the simulated oracle — so
the serving code is identical across deployment shapes; only the
backend object changes.  The answer share for key ``k`` is the table
dot product ``sum_i share_k[i] * table[i] (mod 2^64)``: the O(L) pass
over every row that keeps the query oblivious.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exec import (
    EvalRequest,
    EvalResult,
    ExecutionBackend,
    PlanCache,
    SingleGpuBackend,
)
from repro.gpu.arena import KeySource
from repro.pir.wire import PirQuery, PirReply

ENTRY_BYTES = 8
"""Bytes per table entry; the table is a uint64 row vector."""


class PirServer:
    """One party's server: table, backend, and the serving entry points.

    Args:
        table: The database — ``(L,)`` uint64 values (anything
            ``np.asarray`` can coerce; values are taken mod 2^64).
        backend: Execution backend to serve through (default: a
            :class:`SingleGpuBackend` on the calibrated V100).
        prf_name: PRF the clients' keys must have been generated for;
            mismatching batches are rejected at ingestion.
        resident: Serve in resident-keys mode — batches are planned and
            priced as evaluated from a key arena already uploaded to
            the device.  Answers are bit-identical either way.
        max_batch: Upper bound on keys per request (``None`` =
            unlimited).  An oversized batch is rejected at ingestion,
            before any O(B*L) evaluation — the synchronous counterpart
            of the serving loop's admission control.
        plan_cache: Optional :class:`~repro.exec.PlanCache`.  When set,
            :meth:`answer_request` evaluates through it — memoized
            plans, pinned workspaces, pow2 batch bucketing — instead of
            re-planning per batch.  Answers are bit-identical either
            way; steady-state serving skips all Python-side re-setup.
    """

    def __init__(
        self,
        table: np.ndarray | Sequence[int],
        backend: ExecutionBackend | None = None,
        prf_name: str = "aes128",
        resident: bool = False,
        max_batch: int | None = None,
        plan_cache: "PlanCache | None" = None,
    ):
        table = np.ascontiguousarray(np.asarray(table, dtype=np.uint64))
        if table.ndim != 1 or table.size == 0:
            raise ValueError("table must be a non-empty 1-D array of uint64 entries")
        if max_batch is not None and max_batch <= 0:
            raise ValueError(f"max_batch must be positive or None, got {max_batch}")
        self.table = table
        self.backend = backend if backend is not None else SingleGpuBackend()
        self.prf_name = prf_name
        self.resident = resident
        self.max_batch = max_batch
        self.plan_cache = plan_cache
        self.epoch = 0
        """The single table epoch this server serves.  An unversioned
        server never updates its table, so every query must be pinned to
        this epoch; :class:`~repro.serve.shard.ShardedPirServer`
        overrides :meth:`check_epoch` with real multi-version
        semantics."""

    @property
    def table_entries(self) -> int:
        return int(self.table.size)

    def build_request(self, keys: KeySource) -> EvalRequest:
        """Wrap a key batch in a request, validating it against the table.

        The serving-loop adapter hook: :class:`~repro.serve.AsyncPirServer`
        validates every arriving query through this method (so
        malformed batches fail at submission) and later merges the
        per-query requests into one fused :class:`EvalRequest`.

        Raises:
            ValueError: On malformed keys, a domain/table mismatch, a
                PRF mismatch, or a batch larger than ``max_batch``.
        """
        request = EvalRequest(
            keys=keys,
            prf_name=self.prf_name,
            entry_bytes=ENTRY_BYTES,
            resident=self.resident,
        )
        if request.arena().domain_size != self.table_entries:
            raise ValueError(
                f"query keys address a domain of {request.arena().domain_size} "
                f"entries but this server's table has {self.table_entries}"
            )
        if self.max_batch is not None and request.arena().batch > self.max_batch:
            raise ValueError(
                f"query batch of {request.arena().batch} keys exceeds this "
                f"server's max_batch of {self.max_batch}"
            )
        return request

    def combine(self, shares: np.ndarray) -> np.ndarray:
        """The table dot product mod 2^64 — uint64 wrap-around is the
        ring.  The one place the combine lives; matmul reduces without
        materializing the ``(B, L)`` product array.  Public because the
        serving loop combines one *merged* share matrix and slices the
        result per request."""
        return shares @ self.table

    def evaluate(self, keys: KeySource) -> EvalResult:
        """Run one key batch through the backend; full result object."""
        return self.backend.run(self.build_request(keys))

    def answer_shares(self, keys: KeySource) -> np.ndarray:
        """Answer one key batch; ``(B,)`` uint64 shares in key order.

        ``keys`` may be an arena, key objects, or concatenated wire
        bytes; the wire form is the serving hot path (one vectorized
        parse, zero per-key objects).
        """
        return self.combine(self.evaluate(keys).answers)

    def ingest_query(self, query: PirQuery) -> EvalRequest:
        """Ingest and validate one parsed query's key payload.

        The expensive half of query validation (arena ingestion plus
        domain/PRF/count checks), separated from the cheap frame parse
        so the async serving loop can admission-check on the frame
        header *before* paying for ingestion of a query it may shed.

        Raises:
            ValueError: On malformed keys, a key batch that does not
                match the frame's declared count, a domain/table
                mismatch, a PRF mismatch, or an oversized batch.
        """
        request = self.build_request(query.key_bytes)
        # Reject a lying count before paying for the O(B*L) evaluation.
        if request.arena().batch != query.count:
            raise ValueError(
                f"query frame declares {query.count} keys but the payload "
                f"carries {request.arena().batch}"
            )
        return request

    def parse_query(self, request_bytes: bytes) -> tuple[PirQuery, EvalRequest]:
        """Validate one framed query end to end, without evaluating it.

        Raises:
            ValueError: On a malformed frame, a key batch that does not
                match the frame's declared count, a domain/table
                mismatch, a PRF mismatch, or an oversized batch.
        """
        query = PirQuery.from_bytes(request_bytes)
        return query, self.ingest_query(query)

    def check_epoch(self, epoch: int) -> None:
        """Validate that this server can answer a query pinned to ``epoch``.

        The unversioned server holds exactly one table version, so any
        other epoch is unanswerable — answering it from the only table
        would silently violate the pin the epoch field exists to
        enforce.  :class:`~repro.serve.shard.ShardedPirServer` overrides
        this with registry semantics (retained window, typed
        :class:`~repro.serve.shard.EpochRetired`).

        Raises:
            ValueError: If ``epoch`` is not the epoch this server serves.
        """
        if epoch != self.epoch:
            raise ValueError(
                f"query is pinned to table epoch {epoch} but this server "
                f"serves only epoch {self.epoch}"
            )

    def answer_request(
        self,
        request: EvalRequest,
        epoch: int = 0,
        backend: ExecutionBackend | None = None,
        sizes: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Answer one validated request against ``epoch``'s table.

        The batch-level serving hook both :meth:`handle` and the async
        loop's fused flush dispatch through — the *one* overridable
        seam, so a :class:`~repro.serve.shard.ShardedPirServer` slots
        under either entry point by overriding this method alone.

        Args:
            request: A request this server validated
                (:meth:`build_request` / :meth:`ingest_query`).
            epoch: The table epoch the querying client pinned.
            backend: Run on this backend instead of the server's own
                (the fleet-routing hook); answers are bit-identical
                either way.
            sizes: When ``request`` is a fused merge, its constituents'
                batch sizes (what :meth:`~repro.exec.EvalRequest.merge`
                returned).  Ignored here — a single backend runs the
                fused batch whole — but the sharded override uses it as
                the failover granularity (un-merge on replica death, so
                survivors keep seniority).

        Returns:
            ``(B,)`` uint64 answer shares in request key order.
        """
        self.check_epoch(epoch)
        backend = backend if backend is not None else self.backend
        if self.plan_cache is not None:
            return self.combine(self.plan_cache.run(backend, request).answers)
        return self.combine(backend.run(request).answers)

    def handle(self, request_bytes: bytes) -> bytes:
        """Serve one framed request: query frame in, reply frame out.

        The reply echoes the query's epoch: the client's reconstruction
        cross-checks that both servers answered from the table version
        the query was generated against.

        Raises:
            ValueError: On a malformed frame, a key batch that does not
                match the frame's declared count, a domain/table
                mismatch, a PRF mismatch, an oversized batch, or an
                epoch this server does not serve.
        """
        query, request = self.parse_query(request_bytes)
        answers = self.answer_request(request, epoch=query.epoch)
        return PirReply(
            request_id=query.request_id, answers=answers, epoch=query.epoch
        ).to_bytes()
