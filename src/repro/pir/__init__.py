"""End-to-end two-server PIR: the paper's headline artifact.

This package connects the substrate into the protocol of Figure 2:

* :mod:`repro.pir.client` — query generation (``O(log L)`` per index
  via :func:`repro.dpf.dpf.gen`) and answer reconstruction (additive
  share combine in Z_{2^64}).
* :mod:`repro.pir.server` — a replicated uint64 table served through
  any :class:`~repro.exec.ExecutionBackend`; wire batches ingest
  straight into a :class:`~repro.gpu.arena.KeyArena`.
* :mod:`repro.pir.wire` — versioned query/reply framing on top of the
  DPF key wire format.

The round trip is bit-exact: for any table and any index set,
``client -> wire -> two servers -> reconstruct`` returns exactly the
table rows, under object and wire ingestion, streaming and resident
modes, on every backend (``tests/pir/test_roundtrip.py``).
"""

from repro.pir.client import PirClient, QueryBatch
from repro.pir.server import ENTRY_BYTES, PirServer
from repro.pir.wire import (
    FRAME_HEADER_BYTES,
    KIND_QUERY,
    KIND_REPLY,
    WIRE_VERSION,
    PirQuery,
    PirReply,
)

__all__ = [
    "PirClient",
    "QueryBatch",
    "PirServer",
    "ENTRY_BYTES",
    "PirQuery",
    "PirReply",
    "WIRE_VERSION",
    "KIND_QUERY",
    "KIND_REPLY",
    "FRAME_HEADER_BYTES",
]
