"""Render per-stage latency breakdowns and slowest-trace tables.

The analysis half of the tracing pipeline: given the trace dicts from
a JSONL export (or live :class:`~repro.obs.trace.TraceContext`
objects), compute where time went per pipeline stage and which
individual queries were slowest — the two questions a latency
investigation starts with.  ``scripts/obs_report.py`` is the CLI
wrapper around :func:`render_report`.
"""

from __future__ import annotations

from .trace import REQUIRED_STAGES, TraceContext, chain_problems


def _as_dicts(traces) -> list[dict]:
    return [t.to_dict() if isinstance(t, TraceContext) else t for t in traces]


def stage_breakdown(traces) -> dict[str, dict]:
    """Per-stage duration stats across all spans of all traces.

    Returns ``{stage: {count, total_s, mean_s, max_s, share}}`` where
    ``share`` is the stage's fraction of summed span time — the
    "where did the time go" answer.  Stages appear in pipeline order
    first, then any extra span names alphabetically.
    """
    sums: dict[str, list] = {}
    for trace in _as_dicts(traces):
        for span in trace["spans"]:
            if span["end_s"] is None:
                continue
            bucket = sums.setdefault(span["name"], [0, 0.0, 0.0])
            duration = span["end_s"] - span["start_s"]
            bucket[0] += 1
            bucket[1] += duration
            bucket[2] = max(bucket[2], duration)
    grand_total = sum(bucket[1] for bucket in sums.values())
    ordered = [s for s in REQUIRED_STAGES if s in sums]
    ordered += sorted(set(sums) - set(REQUIRED_STAGES))
    return {
        stage: {
            "count": sums[stage][0],
            "total_s": sums[stage][1],
            "mean_s": sums[stage][1] / sums[stage][0],
            "max_s": sums[stage][2],
            "share": (sums[stage][1] / grand_total) if grand_total else 0.0,
        }
        for stage in ordered
    }


def slowest_traces(traces, top: int = 10) -> list[dict]:
    """The ``top`` longest closed traces, slowest first.

    Each row carries the trace identity, total duration, per-stage
    durations (summed across retry rounds), and its event names — the
    detail view for one slow query.
    """
    rows = []
    for trace in _as_dicts(traces):
        if trace["ended_s"] is None:
            continue
        stages: dict[str, float] = {}
        for span in trace["spans"]:
            if span["end_s"] is not None:
                stages[span["name"]] = (
                    stages.get(span["name"], 0.0) + span["end_s"] - span["start_s"]
                )
        rows.append(
            {
                "trace_id": trace["trace_id"],
                "meta": trace["meta"],
                "status": trace["status"],
                "duration_s": trace["ended_s"] - trace["started_s"],
                "stages_s": stages,
                "events": [event["name"] for event in trace["events"]],
            }
        )
    rows.sort(key=lambda row: row["duration_s"], reverse=True)
    return rows[:top]


def render_report(traces, snapshots=(), top: int = 10) -> str:
    """The human-readable session report as one string.

    Sections: trace census (statuses + chain-integrity check),
    per-stage breakdown table, top-N slowest traces, and — when
    snapshots are given — the final registry snapshot's histogram
    percentiles.
    """
    traces = _as_dicts(traces)
    lines: list[str] = []
    statuses: dict[str, int] = {}
    for trace in traces:
        statuses[trace["status"]] = statuses.get(trace["status"], 0) + 1
    broken = sum(
        1
        for trace in traces
        if trace["status"] == "answered" and chain_problems(trace)
    )
    census = ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
    lines.append(f"traces: {len(traces)} ({census or 'none'})")
    lines.append(
        "chain integrity: "
        + ("OK (all answered traces complete)" if not broken else f"{broken} BROKEN")
    )
    lines.append("")

    breakdown = stage_breakdown(traces)
    if breakdown:
        lines.append("per-stage latency breakdown:")
        lines.append(
            f"  {'stage':<10} {'count':>7} {'mean_ms':>9} {'max_ms':>9} {'share':>7}"
        )
        for stage, row in breakdown.items():
            lines.append(
                f"  {stage:<10} {row['count']:>7} {row['mean_s'] * 1e3:>9.4f} "
                f"{row['max_s'] * 1e3:>9.4f} {row['share'] * 100:>6.1f}%"
            )
        lines.append("")

    slow = slowest_traces(traces, top=top)
    if slow:
        lines.append(f"top {len(slow)} slowest traces:")
        for row in slow:
            stages = " ".join(
                f"{stage}={duration * 1e3:.4f}ms"
                for stage, duration in row["stages_s"].items()
            )
            events = f" events=[{','.join(row['events'])}]" if row["events"] else ""
            meta = ",".join(f"{k}={v}" for k, v in row["meta"].items())
            lines.append(
                f"  #{row['trace_id']} {row['duration_s'] * 1e3:.4f}ms "
                f"[{row['status']}] ({meta}) {stages}{events}"
            )
        lines.append("")

    snapshots = list(snapshots)
    if snapshots:
        final = snapshots[-1]
        hists = final.get("histograms", {})
        if hists:
            lines.append("final snapshot histograms:")
            lines.append(
                f"  {'name':<24} {'count':>7} {'p50_ms':>9} {'p99_ms':>9} {'p999_ms':>9}"
            )
            for name in sorted(hists):
                hist = hists[name]
                lines.append(
                    f"  {name:<24} {hist['count']:>7} {hist['p50'] * 1e3:>9.4f} "
                    f"{hist['p99'] * 1e3:>9.4f} {hist['p999'] * 1e3:>9.4f}"
                )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
