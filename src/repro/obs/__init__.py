"""repro.obs — end-to-end request tracing + unified metrics registry.

The observability substrate for the serving stack: span-based per-query
tracing that survives batch fusion, retry, shard fan-out, and replica
failover (:mod:`repro.obs.trace`); a registry of counters, gauges, and
fixed-bucket latency histograms that absorbs every subsystem's ad-hoc
stats as registered views (:mod:`repro.obs.metrics`); JSONL export
(:mod:`repro.obs.export`) and report rendering
(:mod:`repro.obs.report`).  The disabled-mode default
(:data:`NULL_TRACER`) costs a handful of no-op calls per query.
"""

from .export import metrics_record, read_jsonl, trace_record, write_jsonl
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)
from .report import render_report, slowest_traces, stage_breakdown
from .trace import (
    NULL_TRACER,
    REQUIRED_STAGES,
    RETRY_STAGES,
    STAGE_ADMIT,
    STAGE_DEMUX,
    STAGE_DISPATCH,
    STAGE_MERGE,
    STAGE_PLAN,
    STAGE_QUEUE,
    TRACE_OPS_PER_QUERY,
    TRACE_STATUSES,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    annotate_request,
    chain_problems,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REQUIRED_STAGES",
    "RETRY_STAGES",
    "STAGE_ADMIT",
    "STAGE_DEMUX",
    "STAGE_DISPATCH",
    "STAGE_MERGE",
    "STAGE_PLAN",
    "STAGE_QUEUE",
    "Span",
    "TRACE_OPS_PER_QUERY",
    "TRACE_STATUSES",
    "TraceContext",
    "Tracer",
    "annotate_request",
    "chain_problems",
    "default_latency_buckets",
    "metrics_record",
    "read_jsonl",
    "render_report",
    "slowest_traces",
    "stage_breakdown",
    "trace_record",
    "write_jsonl",
]
