"""JSONL export for traces and metric snapshots.

One record per line, each tagged ``{"kind": "trace" | "metrics", ...}``
so a single file can interleave finished traces with periodic registry
snapshots from the same session.  ``scripts/obs_report.py`` renders
these files; :func:`read_jsonl` is the matching loader.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .trace import TraceContext

KIND_TRACE = "trace"
KIND_METRICS = "metrics"


def trace_record(trace: TraceContext | dict) -> dict:
    """The JSONL line payload for one finished trace."""
    body = trace.to_dict() if isinstance(trace, TraceContext) else dict(trace)
    return {"kind": KIND_TRACE, **body}


def metrics_record(snapshot: dict) -> dict:
    """The JSONL line payload for one registry snapshot."""
    return {"kind": KIND_METRICS, "snapshot": snapshot}


def write_jsonl(
    path_or_handle,
    traces: Iterable[TraceContext | dict] = (),
    snapshots: Iterable[dict] = (),
    registry: MetricsRegistry | None = None,
) -> int:
    """Write traces + snapshots as JSONL; returns the record count.

    ``registry`` is a convenience: when given, its recorded snapshots
    are appended after ``snapshots`` and a final live snapshot is taken
    so the export always ends with the registry's terminal state.
    """
    records = [trace_record(t) for t in traces]
    records.extend(metrics_record(s) for s in snapshots)
    if registry is not None:
        records.extend(metrics_record(s) for s in registry.snapshots)
        records.append(metrics_record(registry.snapshot()))
    if hasattr(path_or_handle, "write"):
        _write_records(path_or_handle, records)
    else:
        with open(path_or_handle, "w", encoding="utf-8") as handle:
            _write_records(handle, records)
    return len(records)


def read_jsonl(path_or_handle) -> tuple[list[dict], list[dict]]:
    """Load a JSONL export; returns ``(traces, snapshots)`` as dicts.

    Unknown ``kind`` tags are skipped (forward compatibility); a
    malformed line raises — a truncated export should fail loudly,
    not silently drop the tail.
    """
    if hasattr(path_or_handle, "read"):
        lines = path_or_handle.read().splitlines()
    else:
        with open(path_or_handle, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    traces: list[dict] = []
    snapshots: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed JSONL at line {lineno}: {exc}") from exc
        kind = record.get("kind")
        if kind == KIND_TRACE:
            record.pop("kind")
            traces.append(record)
        elif kind == KIND_METRICS:
            snapshots.append(record["snapshot"])
    return traces, snapshots


def _write_records(handle: IO[str], records: list[dict]) -> None:
    for record in records:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
