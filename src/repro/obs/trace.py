"""Span-based request tracing for the serving stack.

Nine PRs of serving machinery — admission, QoS queues, batch fusion,
plan caching, fleet/hybrid routing, shard fan-out, replica failover —
grew counters everywhere but could not answer the one question a
latency investigation starts with: *where did this query's time go?*
This module answers it with per-query **span chains**: every submitted
query gets a :class:`TraceContext`, and the serving loop opens and
closes one :class:`Span` per pipeline stage as the query moves through
it:

``admit`` -> ``queue`` -> ``merge`` -> ``plan`` -> ``dispatch`` ->
``demux``

A retried query repeats the ``queue``/``merge``/``plan``/``dispatch``
group (one iteration per dispatch attempt); annotations
(:meth:`TraceContext.event`) record the control-plane decisions that
do not have a duration — retries, shard failovers, sheds.  The context
is threaded *through* :class:`~repro.exec.EvalRequest` (its ``traces``
field), so it survives batch fusion (``merge``/``unmerge``), shard
fan-out (``restrict``) and replica failover — the deep layers annotate
the exact queries they acted on, with **zero orphaned spans**: every
span a closed trace carries has both endpoints
(:func:`chain_problems` is the machine-checkable definition).

Two design rules keep this usable in the repo's deterministic test
culture and in its hot loops:

* **Injectable clock** — a :class:`Tracer` reads time only from the
  callable it was constructed with, so tests drive traces with fake
  clocks and pin exact span timings.
* **Near-zero disabled overhead** — the serving loop always talks to a
  tracer, but the default is the :data:`NULL_TRACER` singleton whose
  context/span methods are empty and whose contexts are never attached
  to requests (``EvalRequest.traces`` stays ``None``, so the merge/
  shard layers skip tracing entirely).  The loop performs at most
  :data:`TRACE_OPS_PER_QUERY` no-op calls per query; CI pins that this
  costs < 1% of a pinned serving row's latency.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

STAGE_ADMIT = "admit"
"""Span: admission control + key ingestion inside ``submit``."""

STAGE_QUEUE = "queue"
"""Span: waiting in a QoS class queue (or the retry pen) for a batch."""

STAGE_MERGE = "merge"
"""Span: fusing the taken requests into one merged ``EvalRequest``."""

STAGE_PLAN = "plan"
"""Span: the routing/planning decision for the fused batch (fleet
routing when a scheduler is attached; the trivial own-backend decision
otherwise)."""

STAGE_DISPATCH = "dispatch"
"""Span: the backend evaluation of the fused batch (including the
executor hop when ingest is double-buffered)."""

STAGE_DEMUX = "demux"
"""Span: slicing this query's rows off the merged answers and framing
its reply."""

REQUIRED_STAGES = (
    STAGE_ADMIT,
    STAGE_QUEUE,
    STAGE_MERGE,
    STAGE_PLAN,
    STAGE_DISPATCH,
    STAGE_DEMUX,
)
"""Every answered query's trace must carry all six stages."""

RETRY_STAGES = (STAGE_QUEUE, STAGE_MERGE, STAGE_PLAN, STAGE_DISPATCH)
"""The group a retried query repeats, once per dispatch attempt."""

TRACE_OPS_PER_QUERY = 16
"""Upper bound on no-op tracer calls the serving loop makes per
answered query on the disabled (:data:`NULL_TRACER`) path: one
``trace()``, one ``close()``, and begin/end pairs for the six stages,
with headroom for a retry round.  CI multiplies this by the measured
per-call cost of the null tracer and asserts the product stays under
1% of a pinned serving row's latency."""

STATUS_OPEN = "open"
STATUS_ANSWERED = "answered"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"
STATUS_REJECTED = "rejected"

TRACE_STATUSES = (
    STATUS_OPEN,
    STATUS_ANSWERED,
    STATUS_SHED,
    STATUS_FAILED,
    STATUS_CANCELLED,
    STATUS_REJECTED,
)
"""Terminal trace statuses (plus ``open`` while in flight)."""


@dataclass
class Span:
    """One timed stage of one query's journey through the pipeline.

    Attributes:
        name: Stage name (one of :data:`REQUIRED_STAGES` for spans the
            serving loop emits).
        start_s: Clock reading when the stage began.
        end_s: Clock reading when the stage ended; ``None`` while open.
            A *closed* trace with an open span is an orphan — the bug
            class :func:`chain_problems` exists to catch.
        annotations: Stage-scoped key/values recorded at ``end`` time
            (flush reason, routed backend label, error type, ...).
    """

    name: str
    start_s: float
    end_s: float | None = None
    annotations: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the export wire format)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "annotations": dict(self.annotations),
        }


@dataclass(eq=False)
class TraceContext:
    """One query's trace: its spans, events, and terminal status.

    Created by :meth:`Tracer.trace` (never directly); identity
    equality because contexts travel through requests and queues as
    objects.

    Attributes:
        trace_id: Monotonic id unique within the owning tracer.
        meta: Submission-time identity (request id, tenant, ...).
        spans: Stage spans in begin order.
        events: Zero-duration annotations (retries, failovers, sheds)
            as ``{"name", "t", ...fields}`` dicts, in record order.
        status: ``"open"`` until :meth:`close`; then one of the
            terminal :data:`TRACE_STATUSES`.
        started_s: Clock reading at creation.
        ended_s: Clock reading at :meth:`close`; ``None`` while open.
    """

    trace_id: int
    meta: dict
    _tracer: "Tracer"
    spans: list[Span] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    status: str = STATUS_OPEN
    started_s: float = 0.0
    ended_s: float | None = None

    def begin(self, stage: str) -> Span:
        """Open a new stage span at the tracer's clock."""
        span = Span(name=stage, start_s=self._tracer.clock())
        self.spans.append(span)
        return span

    def end(self, span: Span, **annotations) -> None:
        """Close ``span`` now, attach ``annotations``, feed the stage
        histogram when the tracer carries a metrics registry."""
        if span.end_s is not None:
            return
        span.end_s = self._tracer.clock()
        if annotations:
            span.annotations.update(annotations)
        self._tracer._observe_stage(span.name, span.end_s - span.start_s)

    def event(self, name: str, **fields) -> None:
        """Record a zero-duration annotation (retry, failover, ...).

        Safe to call from the dispatch thread: appending to a list is
        atomic under the GIL, and events carry their own timestamps.
        """
        self.events.append({"name": name, "t": self._tracer.clock(), **fields})

    def event_names(self) -> list[str]:
        """The recorded event names, in order (test/report helper)."""
        return [event["name"] for event in self.events]

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (must be empty at close)."""
        return [span for span in self.spans if span.end_s is None]

    def close(self, status: str = STATUS_ANSWERED) -> None:
        """Mark the trace terminal and hand it to the tracer's
        ``finished`` list.  Idempotent: only the first close counts."""
        if self.status != STATUS_OPEN:
            return
        self.status = status
        self.ended_s = self._tracer.clock()
        self._tracer._finish(self)

    @property
    def duration_s(self) -> float:
        """Whole-trace duration; 0.0 while still open."""
        return (self.ended_s - self.started_s) if self.ended_s is not None else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the export wire format)."""
        return {
            "trace_id": self.trace_id,
            "meta": dict(self.meta),
            "status": self.status,
            "started_s": self.started_s,
            "ended_s": self.ended_s,
            "spans": [span.to_dict() for span in self.spans],
            "events": [dict(event) for event in self.events],
        }


class Tracer:
    """Factory and sink for :class:`TraceContext` objects.

    Args:
        clock: Monotonic time source; inject a fake for deterministic
            span timings (the same pattern the serving loop uses).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, every ended span feeds a fixed-bucket latency
            histogram named ``stage.<name>`` — per-stage p50/p99
            without retaining samples, which is what the bench
            harness's schema-10 columns read.

    Attributes:
        enabled: ``True`` — the serving loop attaches contexts to
            requests only when this is set (the null tracer clears it).
        finished: Closed traces, in close order (drain with
            :meth:`drain`, or export via :mod:`repro.obs.export`).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        self.clock = clock
        self.metrics = metrics
        self.finished: list[TraceContext] = []
        self._ids = itertools.count()

    def trace(self, **meta) -> TraceContext:
        """Open a fresh trace whose ``meta`` records the submission
        identity (request id, tenant, whatever the caller knows)."""
        return TraceContext(
            trace_id=next(self._ids),
            meta=meta,
            _tracer=self,
            started_s=self.clock(),
        )

    def drain(self) -> list[TraceContext]:
        """Pop and return every finished trace (export-and-reset)."""
        done, self.finished = self.finished, []
        return done

    # -- internal hooks (TraceContext calls these) ---------------------

    def _finish(self, ctx: TraceContext) -> None:
        self.finished.append(ctx)

    def _observe_stage(self, stage: str, duration_s: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(f"stage.{stage}").observe(duration_s)


class _NullSpan(Span):
    """The shared do-nothing span the null context hands out."""

    __slots__ = ()

    def __init__(self):
        super().__init__(name="", start_s=0.0, end_s=0.0)


class _NullTraceContext(TraceContext):
    """A context whose every method is an inert no-op."""

    def __init__(self):
        pass  # no fields: nothing is ever recorded

    def begin(self, stage: str) -> Span:
        return _NULL_SPAN

    def end(self, span: Span, **annotations) -> None:
        return None

    def event(self, name: str, **fields) -> None:
        return None

    def close(self, status: str = STATUS_ANSWERED) -> None:
        return None

    def open_spans(self) -> list[Span]:
        return []


class NullTracer:
    """The disabled-mode tracer: every operation is an inert no-op.

    This is the serving loop's default, so bare backends pay only
    :data:`TRACE_OPS_PER_QUERY` empty method calls per query — no
    allocation, no clock reads, no context attached to requests
    (``enabled`` is ``False``, which is what the loop and the request-
    merge layers key off).
    """

    enabled = False
    finished: list = []

    def trace(self, **meta) -> TraceContext:
        return _NULL_CONTEXT

    def drain(self) -> list:
        return []


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullTraceContext()

NULL_TRACER = NullTracer()
"""The shared disabled-mode tracer (the serving loop's default)."""


def annotate_request(request, name: str, **fields) -> None:
    """Record ``event(name, **fields)`` on every trace a request carries.

    The deep-layer annotation hook: :class:`~repro.serve.shard
    .ReplicaSet` calls this on the (possibly merged, possibly
    restricted) request it is acting on, so retries and failovers land
    on exactly the queries they affected.  A request without trace
    contexts (``traces`` unset — the disabled-mode default) costs one
    attribute read.
    """
    traces = getattr(request, "traces", None)
    if traces:
        for ctx in traces:
            if ctx is not None:
                ctx.event(name, **fields)


def chain_problems(trace: TraceContext | dict) -> list[str]:
    """Why this trace's span chain is incomplete ([] when it is whole).

    The machine-checkable definition of "a complete, orphan-free span
    chain" the acceptance criteria demand for every answered query:

    * the trace is closed, with every span ended (no orphans) and all
      span times inside the trace's own window;
    * exactly one :data:`STAGE_ADMIT` span, and it is first;
    * exactly one :data:`STAGE_DEMUX` span, and it is last;
    * at least one full :data:`RETRY_STAGES` group, with *equal* counts
      of queue/merge/plan/dispatch spans (a retry repeats the whole
      group — a missing member means a span was dropped somewhere);
    * span start times are non-decreasing (begin order is time order).

    Accepts a live :class:`TraceContext` or its exported dict form, so
    the same checker runs in-process (smoke, tests) and over JSONL
    export files (report tooling).
    """
    if isinstance(trace, TraceContext):
        trace = trace.to_dict()
    problems: list[str] = []
    if trace["status"] == STATUS_OPEN:
        problems.append("trace never closed")
    spans = trace["spans"]
    for span in spans:
        if span["end_s"] is None:
            problems.append(f"orphaned span {span['name']!r} (begun, never ended)")
        elif span["end_s"] < span["start_s"]:
            problems.append(f"span {span['name']!r} ends before it starts")
    names = [span["name"] for span in spans]
    counts = {name: names.count(name) for name in set(names)}
    if counts.get(STAGE_ADMIT, 0) != 1:
        problems.append(
            f"expected exactly one admit span, got {counts.get(STAGE_ADMIT, 0)}"
        )
    elif names[0] != STAGE_ADMIT:
        problems.append(f"admit is not the first span (chain starts {names[0]!r})")
    if counts.get(STAGE_DEMUX, 0) != 1:
        problems.append(
            f"expected exactly one demux span, got {counts.get(STAGE_DEMUX, 0)}"
        )
    elif names[-1] != STAGE_DEMUX:
        problems.append(f"demux is not the last span (chain ends {names[-1]!r})")
    rounds = {stage: counts.get(stage, 0) for stage in RETRY_STAGES}
    if min(rounds.values()) < 1:
        missing = [stage for stage, count in rounds.items() if count < 1]
        problems.append(f"chain is missing stage span(s): {missing}")
    elif len(set(rounds.values())) != 1:
        problems.append(
            f"unbalanced retry rounds (counts per stage: {rounds}) — "
            "some dispatch attempt dropped a stage span"
        )
    starts = [span["start_s"] for span in spans]
    if any(later < earlier for earlier, later in zip(starts, starts[1:])):
        problems.append("span start times are not non-decreasing")
    ended = [span["end_s"] for span in spans if span["end_s"] is not None]
    if trace["ended_s"] is not None and ended:
        if max(ended) > trace["ended_s"] or min(starts) < trace["started_s"]:
            problems.append("span times fall outside the trace window")
    return problems
