"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

The serving stack accumulated one ad-hoc counter bundle per subsystem
(``ServingStats``, ``PlanCacheStats``, ``HybridBackend`` routing
tallies, ``ReplicaSet`` health counts).  Each keeps its attribute API
— call sites and tests are untouched — but a
:class:`MetricsRegistry` now absorbs them all as **registered views**:
zero-argument callables sampled at snapshot time, so one
``registry.snapshot()`` is the whole system's state under one
namespace.

Latency distributions use :class:`Histogram` — fixed bucket bounds,
one integer per bucket, **no sample retention** — so p50/p99/p999 over
a long serving session cost O(buckets) memory, and the quantile
estimate is provably within one bucket width of the exact sample
quantile (the property test in ``tests/obs/test_metrics.py`` pins
this on random samples).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Iterable


def default_latency_buckets() -> tuple[float, ...]:
    """Geometric bucket bounds covering 1 µs .. ~17 s (doubling).

    Latency observations below a microsecond land in the first bucket;
    anything above the last bound lands in the overflow bucket (whose
    quantile estimate reports the observed max — exact, since the
    histogram tracks min/max alongside the counts).
    """
    return tuple(1e-6 * 2.0**i for i in range(25))


DEFAULT_LATENCY_BUCKETS = default_latency_buckets()


class Counter:
    """A monotonically increasing count with optional increments."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value that may move either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with quantile estimation, no samples kept.

    Bucket ``i`` counts observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (``bisect_left`` on the upper
    bounds); an extra overflow bucket counts ``v > bounds[-1]``.  The
    histogram also tracks exact ``min``/``max``/``sum`` so means are
    exact and quantile estimates can be clamped into the observed
    range.

    **Quantile error bound.** :meth:`quantile` walks the cumulative
    counts to the bucket holding the ``ceil(q * count)``-th smallest
    observation and linearly interpolates inside it.  The exact sample
    quantile lies in that same bucket, so the estimate is off by at
    most that bucket's width; clamping to ``[min, max]`` only tightens
    it.  For the overflow bucket the estimate is the observed max.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) of all observations.

        Within one bucket width of the exact sample quantile; 0.0 when
        nothing has been observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i == len(self.bounds):
                    return self.max  # overflow bucket: exact max
                hi = self.bounds[i]
                lo = self.bounds[i - 1] if i > 0 else min(self.min, hi)
                # Interpolate by rank position within this bucket.
                within = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * within
                return min(max(estimate, self.min), self.max)
        return self.max  # unreachable: cumulative reaches count

    def percentiles(self) -> dict:
        """The standard serving triple (p50/p99/p999), in seconds."""
        return {
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def snapshot(self) -> dict:
        out = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """Get-or-create home for counters/gauges/histograms + views.

    *Instruments* (:meth:`counter`, :meth:`gauge`, :meth:`histogram`)
    are owned by the registry and sampled generically.  *Views*
    (:meth:`register_view`) wrap the pre-existing ad-hoc stat bundles:
    a view is any zero-argument callable returning a JSON-ready dict,
    sampled lazily at :meth:`snapshot` time — the owning subsystem
    keeps mutating its own attributes exactly as before.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._views: dict[str, Callable[[], dict]] = {}
        self.snapshots: list[dict] = []

    # -- instruments --------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name, buckets)
        return self._histograms[name]

    def histograms(self, prefix: str = "") -> dict[str, Histogram]:
        """All histograms whose name starts with ``prefix``."""
        return {
            name: hist
            for name, hist in self._histograms.items()
            if name.startswith(prefix)
        }

    # -- views --------------------------------------------------------

    def register_view(self, name: str, view: Callable[[], dict]) -> None:
        """Attach a named zero-argument sampler (ad-hoc stats bridge)."""
        self._check_free(name, self._views)
        self._views[name] = view

    def unique_name(self, base: str) -> str:
        """``base``, or ``base.2``/``base.3``... if already taken —
        lets N serving loops share one registry without collisions."""
        if not self._taken(base):
            return base
        for i in range(2, 10_000):
            candidate = f"{base}.{i}"
            if not self._taken(candidate):
                return candidate
        raise RuntimeError(f"no free name for {base!r}")

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> dict:
        """Sample every instrument and view into one JSON-ready dict."""
        out: dict = {
            "counters": {n: c.snapshot() for n, c in self._counters.items()},
            "gauges": {n: g.snapshot() for n, g in self._gauges.items()},
            "histograms": {n: h.snapshot() for n, h in self._histograms.items()},
            "views": {n: dict(view()) for n, view in self._views.items()},
        }
        if self.clock is not None:
            out["t"] = self.clock()
        return out

    def record_snapshot(self) -> dict:
        """Take a snapshot and append it to :attr:`snapshots`
        (the periodic-snapshot hook ``AsyncPirServer`` drives)."""
        snap = self.snapshot()
        self.snapshots.append(snap)
        return snap

    # -- internal -----------------------------------------------------

    def _taken(self, name: str) -> bool:
        return any(
            name in kind
            for kind in (self._counters, self._gauges, self._histograms, self._views)
        )

    def _check_free(self, name: str, own_kind: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms, self._views):
            if kind is not own_kind and name in kind:
                raise ValueError(f"metric name {name!r} already registered")
