"""SipHash-2-4 (Aumasson--Bernstein), vectorized over batches of keys.

SipHash is the fastest PRF in the paper's Table 5 (7,447 QPS vs AES's
965) but, as Section 3.2.6 cautions, it targets 64-bit MAC security
rather than full 128-bit PRF security — the metadata marks it
non-standardized for this use so callers can make the trade-off
explicitly.

The DPF uses the seed as the SipHash key and the tweak as an 8-byte
message; two invocations with domain-separated messages produce the
128-bit output block.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import prf as prf_mod

_V0 = np.uint64(0x736F6D6570736575)
_V1 = np.uint64(0x646F72616E646F6D)
_V2 = np.uint64(0x6C7967656E657261)
_V3 = np.uint64(0x7465646279746573)


def _rotl64(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint64(n)) | (x >> np.uint64(64 - n))


def _sipround(v0: np.ndarray, v1: np.ndarray, v2: np.ndarray, v3: np.ndarray):
    v0 = v0 + v1
    v1 = _rotl64(v1, 13)
    v1 ^= v0
    v0 = _rotl64(v0, 32)
    v2 = v2 + v3
    v3 = _rotl64(v3, 16)
    v3 ^= v2
    v0 = v0 + v3
    v3 = _rotl64(v3, 21)
    v3 ^= v0
    v2 = v2 + v1
    v1 = _rotl64(v1, 17)
    v1 ^= v2
    v2 = _rotl64(v2, 32)
    return v0, v1, v2, v3


def siphash24_batch(k0: np.ndarray, k1: np.ndarray, message: np.ndarray) -> np.ndarray:
    """SipHash-2-4 of a single 8-byte message word per key.

    Args:
        k0: ``(N,)`` uint64 low key words.
        k1: ``(N,)`` uint64 high key words.
        message: ``(N,)`` uint64 message words (one 8-byte block each).

    Returns:
        ``(N,)`` uint64 MACs.
    """
    v0 = k0 ^ _V0
    v1 = k1 ^ _V1
    v2 = k0 ^ _V2
    v3 = k1 ^ _V3
    # Compression of the single message word.
    v3 = v3 ^ message
    for _ in range(2):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0 = v0 ^ message
    # Finalization: length byte (8) in the top byte of the last block.
    final_block = np.uint64(8 << 56)
    v3 = v3 ^ final_block
    for _ in range(2):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0 = v0 ^ final_block
    v2 = v2 ^ np.uint64(0xFF)
    for _ in range(4):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    return v0 ^ v1 ^ v2 ^ v3


def siphash24(key: bytes, message: bytes) -> int:
    """Scalar SipHash-2-4 for arbitrary-length messages (test vectors)."""
    if len(key) != 16:
        raise ValueError("SipHash key must be 16 bytes")
    k0 = np.frombuffer(key[:8], dtype="<u8")[0]
    k1 = np.frombuffer(key[8:], dtype="<u8")[0]
    v0 = k0 ^ _V0
    v1 = k1 ^ _V1
    v2 = k0 ^ _V2
    v3 = k1 ^ _V3
    v = [np.array([x]) for x in (v0, v1, v2, v3)]

    length = len(message)
    padded = bytearray(message)
    while len(padded) % 8 != 7:
        padded.append(0)
    padded.append(length & 0xFF)
    words = np.frombuffer(bytes(padded), dtype="<u8")
    for m in words:
        v[3] = v[3] ^ m
        for _ in range(2):
            v = list(_sipround(*v))
        v[0] = v[0] ^ m
    v[2] = v[2] ^ np.uint64(0xFF)
    for _ in range(4):
        v = list(_sipround(*v))
    return int(v[0][0] ^ v[1][0] ^ v[2][0] ^ v[3][0])


@prf_mod.register_prf
class SipHashPrf(prf_mod.Prf):
    """SipHash-2-4 as a 128-bit-output PRF (two domain-separated calls)."""

    name = "siphash"
    gpu_cost = 965.0 / 7447.0  # Table 5: 7,447 QPS vs AES's 965.
    cpu_cost = 0.8
    security_bits = 64
    standardized = False

    @staticmethod
    def _run_lanes(k0: np.ndarray, k1: np.ndarray, messages: list[int]) -> np.ndarray:
        """One SipHash pass over ``len(messages)`` stacked lane groups.

        Returns a ``(len(messages), N)`` array whose row ``i`` is the MAC
        of message word ``messages[i]`` under every key.
        """
        n = k0.shape[0]
        m = len(messages)
        msg = np.empty(m * n, dtype=np.uint64)
        for i, word in enumerate(messages):
            msg[i * n : (i + 1) * n] = np.uint64(word)
        out = siphash24_batch(np.tile(k0, m), np.tile(k1, m), msg)
        return out.reshape(m, n)

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        words = prf_mod.seeds_to_u64(seeds)
        macs = self._run_lanes(words[:, 0], words[:, 1], [2 * tweak, 2 * tweak + 1])
        return prf_mod.u64_to_seeds(np.stack((macs[0], macs[1]), axis=1))

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Fused PRG: all four MAC lanes (both tweaks) in one pass."""
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        words = prf_mod.seeds_to_u64(seeds)
        macs = self._run_lanes(words[:, 0], words[:, 1], [0, 1, 2, 3])
        out = np.empty((2 * n, 2), dtype=np.uint64)
        out[:n, 0], out[:n, 1] = macs[0], macs[1]
        out[n:, 0], out[n:, 1] = macs[2], macs[3]
        return prf_mod.u64_to_seeds(out)
