"""The PRF interface shared by every cipher in :mod:`repro.crypto`.

A DPF expansion (Section 3.1 of the paper) calls a length-doubling PRG
on every tree node.  Following the standard practice (and Google's CPU
DPF library the paper baselines against), the PRG is built from a
*fixed-key* primitive in Matyas--Meyer--Oseas mode so that no per-seed
key schedule is needed: ``PRG(s)[j] = F(s xor c_j) xor s`` for a small
tweak ``j``.  Every concrete PRF therefore exposes a single vectorized
method :meth:`Prf.expand` mapping ``(N, 16)`` seed blocks to ``(N, 16)``
output blocks for a given tweak.

Cost metadata
-------------
``gpu_cost`` and ``cpu_cost`` are *relative per-call costs* (AES-128 =
1.0) consumed by the performance models in :mod:`repro.gpu` and
:mod:`repro.baselines.cpu`.  The GPU numbers are calibrated from the
paper's Table 5 (1M-entry table, batch 512): AES-128 965 QPS, SHA-256
921 QPS, ChaCha20 3,640 QPS, SipHash 7,447 QPS, HighwayHash 1,973 QPS.
The CPU numbers reflect that AES enjoys AES-NI hardware on the paper's
Xeon baseline while the others do not.
"""

from __future__ import annotations

import abc

import numpy as np

SEED_BYTES = 16
"""Size in bytes of a DPF seed / PRF block (the 128-bit security parameter)."""


class Prf(abc.ABC):
    """A vectorized pseudorandom function over 128-bit blocks.

    Subclasses must set the class attributes below and implement
    :meth:`expand`.

    Attributes:
        name: Registry key, e.g. ``"aes128"``.
        gpu_cost: Relative per-call cost on a GPU (AES-128 = 1.0).
        cpu_cost: Relative per-call cost on a CPU with crypto
            acceleration available (AES-128 via AES-NI = 1.0).
        security_bits: Claimed PRF security level.
        standardized: Whether the primitive is a vetted standard
            (the paper cautions that SipHash/HighwayHash trade security
            assurance for speed).
    """

    name: str = "abstract"
    gpu_cost: float = 1.0
    cpu_cost: float = 1.0
    security_bits: int = 128
    standardized: bool = True

    @abc.abstractmethod
    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        """Apply the PRF to a batch of seeds.

        Args:
            seeds: ``(N, 16)`` uint8 array of input blocks.
            tweak: Small non-negative domain-separation constant; the
                DPF uses tweak 0 for left children and 1 for right
                children.

        Returns:
            ``(N, 16)`` uint8 array of pseudorandom output blocks.
        """

    def expand_pair(self, seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Length-doubling PRG: return the (left, right) child blocks.

        This is the DPF hot path: every GGM tree level calls it once on
        the whole frontier.  The halves are adjacent views of one
        :meth:`expand_pair_stacked` buffer — freshly allocated per call,
        so callers may mutate them in place — and are bit-identical to
        ``(expand(seeds, 0), expand(seeds, 1))``.
        """
        stacked = self.expand_pair_stacked(seeds)
        n = seeds.shape[0]
        return stacked[:n], stacked[n:]

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Both children as one ``(2N, 16)`` array: left block then right.

        This is the single override point for the fused PRG fast path:
        concrete PRFs stack the ``2N`` tweaked blocks and run *one*
        vectorized cipher pass per tree level, returning the cipher's
        own output buffer (zero copy — the concat-layout ``eval_full``
        consumes it directly every level).  The base implementation
        falls back to two unfused :meth:`expand` calls.
        """
        n = seeds.shape[0]
        out = np.empty((2 * n, 16), dtype=np.uint8)
        out[:n] = self.expand(seeds, 0)
        out[n:] = self.expand(seeds, 1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class CountingPrf(Prf):
    """Wrap another PRF and count calls, for instrumentation.

    The GPU strategy experiments (Figure 6) compare the *number of PRF
    invocations* across parallelization strategies; tests use this
    wrapper to assert the analytic counts against what the functional
    kernels actually execute.
    """

    def __init__(self, inner: Prf):
        self.inner = inner
        self.name = inner.name
        self.gpu_cost = inner.gpu_cost
        self.cpu_cost = inner.cpu_cost
        self.security_bits = inner.security_bits
        self.standardized = inner.standardized
        self.calls = 0
        self.blocks = 0

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        self.calls += 1
        self.blocks += int(seeds.shape[0])
        return self.inner.expand(seeds, tweak)

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        # One fused cipher invocation producing both children: 2N PRF
        # *blocks* but a single *call*.  Figure-6 tests assert block
        # counts, which the fused path must not change.  expand_pair is
        # inherited from Prf and splits this buffer, so it counts once.
        self.calls += 1
        self.blocks += 2 * int(seeds.shape[0])
        return self.inner.expand_pair_stacked(seeds)

    def reset(self) -> None:
        """Zero the call counters."""
        self.calls = 0
        self.blocks = 0


_REGISTRY: dict[str, type[Prf]] = {}


def register_prf(cls: type[Prf]) -> type[Prf]:
    """Class decorator adding a PRF implementation to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_prfs() -> list[str]:
    """Names of all registered PRFs (importing submodules registers them)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_prf(name: str) -> Prf:
    """Instantiate a registered PRF by name.

    Raises:
        KeyError: If ``name`` is not a registered PRF.
    """
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown PRF {name!r}; available: {available_prfs()}")
    return _REGISTRY[name]()


def _ensure_loaded() -> None:
    # Import the concrete implementations so their decorators run; local
    # import avoids a cycle (each implementation imports this module).
    from repro.crypto import aes, chacha20, highwayhash, sha256, siphash  # noqa: F401


def seeds_to_u64(seeds: np.ndarray) -> np.ndarray:
    """View ``(N, 16)`` uint8 seed blocks as ``(N, 2)`` little-endian uint64."""
    return np.ascontiguousarray(seeds).view(np.uint64).reshape(-1, 2)


def u64_to_seeds(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`seeds_to_u64`."""
    return np.ascontiguousarray(words.astype(np.uint64, copy=False)).view(np.uint8).reshape(-1, 16)
