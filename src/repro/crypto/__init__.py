"""Cryptographic substrate: the pseudorandom functions used by the DPF.

The paper (Section 3.2.6) evaluates DPF-PIR with five PRFs — AES-128,
SHA-256 (HMAC), ChaCha20, SipHash, and HighwayHash — because GPUs lack
the AES-NI-style hardware that makes AES the default choice on CPUs.
This package provides from-scratch, numpy-vectorized implementations of
all five behind a uniform :class:`~repro.crypto.prf.Prf` interface, plus
per-PRF cost metadata consumed by the GPU/CPU performance models.

AES-128, SHA-256 and ChaCha20 are validated against their standard test
vectors (FIPS-197, FIPS-180, RFC 8439); SipHash-2-4 against the
reference-implementation vector; the HighwayHash-style mixer is a
faithful *structural* stand-in (wide multiply/permute lanes) documented
in DESIGN.md.
"""

from repro.crypto.prf import (
    Prf,
    CountingPrf,
    available_prfs,
    get_prf,
    register_prf,
)
from repro.crypto.aes import Aes128, aes128_encrypt_blocks, expand_key
from repro.crypto.sha256 import Sha256Prf, sha256
from repro.crypto.chacha20 import ChaCha20Prf, chacha20_block, chacha20_keystream
from repro.crypto.siphash import SipHashPrf, siphash24
from repro.crypto.highwayhash import HighwayHashPrf

__all__ = [
    "Prf",
    "CountingPrf",
    "available_prfs",
    "get_prf",
    "register_prf",
    "Aes128",
    "aes128_encrypt_blocks",
    "expand_key",
    "Sha256Prf",
    "sha256",
    "ChaCha20Prf",
    "chacha20_block",
    "chacha20_keystream",
    "SipHashPrf",
    "siphash24",
    "HighwayHashPrf",
]
