"""HighwayHash-style wide-lane PRF.

The paper's Table 5 includes Google's HighwayHash as a middle point
between AES and SipHash (1,973 QPS).  HighwayHash proper is a SIMD
design with 4x64-bit lanes mixed by 32x32->64 multiplies and cross-lane
byte permutations.  This module implements a *structurally faithful*
stand-in — the same multiply/permute/xor skeleton over four uint64
lanes — rather than a bit-exact port (there is no authoritative test
vector bundled offline).  DESIGN.md records this substitution; the
primitive is marked non-standardized, exactly as the paper treats it
("their security assurance may be weaker").
"""

from __future__ import annotations

import numpy as np

from repro.crypto import prf as prf_mod

_MUL0 = np.uint64(0xDBE6D5D5FE4CCE2F)
_MUL1 = np.uint64(0xA4093822299F31D0)
_INIT = (
    np.uint64(0x0706050403020100),
    np.uint64(0x0F0E0D0C0B0A0908),
    np.uint64(0x1716151413121110),
    np.uint64(0x1F1E1D1C1B1A1918),
)


def _zipper_merge(v: np.ndarray) -> np.ndarray:
    """Cross-lane byte shuffle (HighwayHash's ZipperMerge on one lane)."""
    b = np.ascontiguousarray(v).view(np.uint8).reshape(-1, 8)
    # Permutation taken from the HighwayHash reference ZipperMergeAndAdd
    # byte ordering; any fixed full permutation preserves the design's
    # diffusion role.
    perm = np.array([3, 1, 2, 0, 7, 5, 6, 4], dtype=np.intp)
    return np.ascontiguousarray(b[:, perm]).view(np.uint64).reshape(-1)


def _mix(lanes: list[np.ndarray], m0: np.ndarray, m1: np.ndarray) -> list[np.ndarray]:
    """One update round: inject message words, multiply-mix, permute."""
    mask = np.uint64(0xFFFFFFFF)
    v0, v1, v2, v3 = lanes
    v0 = v0 + m0
    v1 = v1 + m1
    # 32x32 -> 64 multiplies, the core HighwayHash nonlinearity.
    v2 ^= (v0 & mask) * (v1 >> np.uint64(32))
    v3 ^= (v1 & mask) * (v0 >> np.uint64(32))
    v0 += _zipper_merge(v2)
    v1 += _zipper_merge(v3)
    v2 += v0 * _MUL0
    v3 += v1 * _MUL1
    return [v1, v0, v3, v2]  # lane rotation


@prf_mod.register_prf
class HighwayHashPrf(prf_mod.Prf):
    """HighwayHash-style 128-bit PRF over 16-byte seeds."""

    name = "highwayhash"
    gpu_cost = 965.0 / 1973.0  # Table 5: 1,973 QPS vs AES's 965.
    cpu_cost = 1.0
    security_bits = 64
    standardized = False

    _ROUNDS = 4

    @classmethod
    def _mix_lanes(cls, m0: np.ndarray, m1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Run the round function over already-tweaked message lanes."""
        n = m0.shape[0]
        lanes = [np.full(n, init, dtype=np.uint64) for init in _INIT]
        for rnd in range(cls._ROUNDS):
            lanes = _mix(lanes, m0 ^ np.uint64(rnd), m1)
        return lanes[0] + lanes[2], lanes[1] + lanes[3]

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        words = prf_mod.seeds_to_u64(seeds)
        lo, hi = self._mix_lanes(words[:, 0], words[:, 1] ^ np.uint64(tweak))
        # Feed-forward with the seed so the map is not invertible from
        # the output alone (Matyas--Meyer--Oseas shape, as for AES).
        lo ^= words[:, 0]
        hi ^= words[:, 1]
        return prf_mod.u64_to_seeds(np.stack((lo, hi), axis=1))

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Fused PRG: both tweaks stacked through one mixing pass."""
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        words = prf_mod.seeds_to_u64(seeds)
        w0, w1 = words[:, 0], words[:, 1]
        m0 = np.tile(w0, 2)
        m1 = np.empty(2 * n, dtype=np.uint64)
        m1[:n] = w1  # tweak 0
        m1[n:] = w1 ^ np.uint64(1)  # tweak 1
        lo, hi = self._mix_lanes(m0, m1)
        lo[:n] ^= w0
        lo[n:] ^= w0
        hi[:n] ^= w1
        hi[n:] ^= w1
        return prf_mod.u64_to_seeds(np.stack((lo, hi), axis=1))
