"""AES-128 block cipher (FIPS-197), vectorized over batches of blocks.

All tables (S-box, GF(2^8) doubling) are derived programmatically from
the field definition rather than transcribed, and the implementation is
validated against the FIPS-197 Appendix C known-answer vector in the
test suite.  Encryption operates on ``(N, 16)`` uint8 arrays so that an
entire DPF tree level is processed with a handful of numpy kernels —
this is the software analogue of the paper's thread-per-node GPU
mapping.

Only encryption is implemented; the DPF PRG is built from the forward
permutation in Matyas--Meyer--Oseas mode and never needs to decrypt.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import prf as prf_mod


def _build_gf_tables() -> tuple[np.ndarray, np.ndarray]:
    """Exp/log tables for GF(2^8) with generator 3 (x+1)."""
    exp = np.zeros(510, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        xt = ((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1)
        x ^= xt  # multiply by 3 = x * (2 + 1)
    exp[255:510] = exp[0:255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def _rotl8(x: int, n: int) -> int:
    return ((x << n) | (x >> (8 - n))) & 0xFF


def _build_sbox() -> np.ndarray:
    """Derive the AES S-box: GF(2^8) inverse followed by the affine map."""
    sbox = np.zeros(256, dtype=np.uint8)
    for b in range(256):
        inv = int(_GF_EXP[255 - _GF_LOG[b]]) if b else 0
        sbox[b] = inv ^ _rotl8(inv, 1) ^ _rotl8(inv, 2) ^ _rotl8(inv, 3) ^ _rotl8(inv, 4) ^ 0x63
    return sbox


SBOX = _build_sbox()

# xtime (multiplication by 2 in GF(2^8)) as a lookup table.
_XT2 = np.array(
    [((b << 1) ^ 0x1B) & 0xFF if b & 0x80 else (b << 1) for b in range(256)],
    dtype=np.uint8,
)

# ShiftRows as a flat permutation of the 16 state bytes: the AES state is
# column-major (byte i lives at row i % 4, column i // 4), and row r
# rotates left by r, so out[r + 4c] = in[r + 4*((c + r) % 4)].
SHIFT_ROWS_PERM = np.array(
    [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def expand_key(key: bytes | np.ndarray) -> np.ndarray:
    """AES-128 key schedule.

    Args:
        key: 16-byte cipher key.

    Returns:
        ``(11, 16)`` uint8 array of round keys.
    """
    key = np.asarray(bytearray(key) if isinstance(key, bytes) else key, dtype=np.uint8)
    if key.shape != (16,):
        raise ValueError(f"AES-128 key must be 16 bytes, got shape {key.shape}")
    words = [key[4 * i : 4 * i + 4].copy() for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1].copy()
        if i % 4 == 0:
            temp = np.roll(temp, -1)  # RotWord
            temp = SBOX[temp]  # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append(words[i - 4] ^ temp)
    return np.concatenate(words).reshape(11, 16)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """Vectorized MixColumns over ``(N, 16)`` states."""
    a = state.reshape(-1, 4, 4)  # (N, column, row)
    t2 = _XT2[a]
    t3 = t2 ^ a
    b0 = t2[:, :, 0] ^ t3[:, :, 1] ^ a[:, :, 2] ^ a[:, :, 3]
    b1 = a[:, :, 0] ^ t2[:, :, 1] ^ t3[:, :, 2] ^ a[:, :, 3]
    b2 = a[:, :, 0] ^ a[:, :, 1] ^ t2[:, :, 2] ^ t3[:, :, 3]
    b3 = t3[:, :, 0] ^ a[:, :, 1] ^ a[:, :, 2] ^ t2[:, :, 3]
    return np.stack((b0, b1, b2, b3), axis=-1).reshape(-1, 16)


def aes128_encrypt_blocks(round_keys: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Encrypt a batch of 16-byte blocks.

    Args:
        round_keys: ``(11, 16)`` output of :func:`expand_key`.
        blocks: ``(N, 16)`` uint8 plaintext blocks.

    Returns:
        ``(N, 16)`` uint8 ciphertext blocks.
    """
    state = blocks ^ round_keys[0]
    for rnd in range(1, 10):
        state = SBOX[state]
        state = state[:, SHIFT_ROWS_PERM]
        state = _mix_columns(state)
        state ^= round_keys[rnd]
    state = SBOX[state]
    state = state[:, SHIFT_ROWS_PERM]
    state ^= round_keys[10]
    return state


# Fixed MMO keys; arbitrary distinct public constants (digits of pi-ish
# values are traditional, but any fixed value works: security rests on
# the cipher, not on key secrecy, in the MMO PRG construction).
_FIXED_KEY = bytes(range(16))
_TWEAK_CONSTANTS = (0x00, 0x80)


@prf_mod.register_prf
class Aes128(prf_mod.Prf):
    """AES-128 in fixed-key Matyas--Meyer--Oseas mode.

    The paper's CPU baseline (Google's DPF library) uses AES-128 with
    AES-NI; on GPUs AES has no hardware assist and is the *slowest* PRF
    in Table 5 — the cost metadata reflects both facts.
    """

    name = "aes128"
    gpu_cost = 1.0  # Table 5 reference point: 965 QPS.
    cpu_cost = 1.0  # AES-NI accelerated.
    security_bits = 128
    standardized = True

    def __init__(self, key: bytes = _FIXED_KEY):
        self._round_keys = expand_key(key)

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        tweaked = seeds.copy()
        tweaked[:, 0] ^= _TWEAK_CONSTANTS[tweak % 2]
        tweaked[:, 1] ^= (tweak >> 1) & 0xFF
        return aes128_encrypt_blocks(self._round_keys, tweaked) ^ seeds
