"""AES-128 block cipher (FIPS-197), vectorized over batches of blocks.

All tables (S-box, GF(2^8) doubling, the round T-tables) are derived
programmatically from the field definition rather than transcribed, and
the implementation is validated against the FIPS-197 Appendix B/C
known-answer vectors in the test suite.

The production path is the classic *T-table* software AES: with the
state viewed as four little-endian uint32 columns (byte ``j`` of column
word ``c`` is state row ``j``), SubBytes + ShiftRows + MixColumns
collapse into table lookups.  Writing ``S`` for the S-box and ``2S``,
``3S`` for its GF(2^8) multiples, ``T0[x] = 2S | S<<8 | S<<16 | 3S<<24``
and ``Tk = rotl32(T0, 8k)``; after applying the ShiftRows byte
permutation to the state, round output column ``c`` is::

    T0[b0(p[c])] ^ T1[b1(p[c])] ^ T2[b2(p[c])] ^ T3[b3(p[c])] ^ rk[c]

Because the four byte indices then all come from the *same* permuted
column, adjacent byte pairs form 16-bit indices into two fused
65536-entry tables ``T01[b0|b1<<8] = T0[b0]^T1[b1]`` and ``T23`` —
halving the gather count per round.  A grow-on-demand scratch
workspace (one per thread) keeps the nine rounds free of per-call
allocations; this matters because the DPF expansion calls the cipher
once per tree level with geometrically growing batches.  The
workspace is thread-*local* because overlapped serving
(``AsyncPirServer(overlap=True)``) runs each party's dispatch on its
own executor thread — a shared workspace would let two concurrent
expansions scribble over each other's round state.

The pre-T-table byte pipeline (SubBytes/ShiftRows/MixColumns as
separate numpy passes) is retained as
:func:`aes128_encrypt_blocks_reference` so equality tests pin the
optimization to the seed semantics.

Only encryption is implemented; the DPF PRG is built from the forward
permutation in Matyas--Meyer--Oseas mode and never needs to decrypt.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.crypto import prf as prf_mod


def _build_gf_tables() -> tuple[np.ndarray, np.ndarray]:
    """Exp/log tables for GF(2^8) with generator 3 (x+1)."""
    exp = np.zeros(510, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        xt = ((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1)
        x ^= xt  # multiply by 3 = x * (2 + 1)
    exp[255:510] = exp[0:255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def _rotl8(x: int, n: int) -> int:
    return ((x << n) | (x >> (8 - n))) & 0xFF


def _build_sbox() -> np.ndarray:
    """Derive the AES S-box: GF(2^8) inverse followed by the affine map."""
    sbox = np.zeros(256, dtype=np.uint8)
    for b in range(256):
        inv = int(_GF_EXP[255 - _GF_LOG[b]]) if b else 0
        sbox[b] = inv ^ _rotl8(inv, 1) ^ _rotl8(inv, 2) ^ _rotl8(inv, 3) ^ _rotl8(inv, 4) ^ 0x63
    return sbox


SBOX = _build_sbox()

# xtime (multiplication by 2 in GF(2^8)) as a lookup table.
_XT2 = np.array(
    [((b << 1) ^ 0x1B) & 0xFF if b & 0x80 else (b << 1) for b in range(256)],
    dtype=np.uint8,
)

# ShiftRows as a flat permutation of the 16 state bytes: the AES state is
# column-major (byte i lives at row i % 4, column i // 4), and row r
# rotates left by r, so out[r + 4c] = in[r + 4*((c + r) % 4)].
SHIFT_ROWS_PERM = np.array(
    [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _rotl32(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _build_t_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Derive the four round T-tables from the S-box and xtime tables."""
    s = SBOX.astype(np.uint32)
    s2 = _XT2[SBOX].astype(np.uint32)  # 2 * S[x] in GF(2^8)
    s3 = s2 ^ s  # 3 * S[x]
    t0 = s2 | (s << np.uint32(8)) | (s << np.uint32(16)) | (s3 << np.uint32(24))
    return t0, _rotl32(t0, 8), _rotl32(t0, 16), _rotl32(t0, 24)


T0, T1, T2, T3 = _build_t_tables()


def _build_pair_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fuse the T-tables pairwise over 16-bit byte-pair indices."""
    pair = np.arange(65536)
    lo, hi = pair & 0xFF, pair >> 8
    s = SBOX.astype(np.uint32)
    # Final round has no MixColumns: just paired S-box substitutions.
    fs = s[lo] | (s[hi] << np.uint32(8))
    return T0[lo] ^ T1[hi], T2[lo] ^ T3[hi], fs


_T01, _T23, _FS = _build_pair_tables()

_M16 = np.uint32(0xFFFF)
_SH16 = np.uint32(16)


_RETAIN_ROWS = 1 << 17
"""Largest batch whose round buffers stay resident between calls (~14 MiB).
Bigger batches get transient buffers: at that size the one-off
allocation is noise next to the gathers, and a single huge query must
not pin hundreds of megabytes for the life of the process."""


class _Workspace(threading.local):
    """Grow-on-demand round buffers shared across encrypt calls.

    One instance per *thread* (``threading.local``): reusing these
    buffers across the O(log L) per-level cipher calls removes every
    per-round allocation from the nine-round loop, and the per-thread
    split keeps concurrent expansions — two parties' overlapped
    serving dispatches run on separate executor threads in one
    process — from corrupting each other's round state.  A thread that
    never encrypts pays nothing; ``__init__`` runs lazily per thread.
    """

    def __init__(self):
        self.rows = 0

    @staticmethod
    def _allocate(n: int) -> tuple[np.ndarray, ...]:
        return (
            np.empty((n, 16), dtype=np.uint8),  # permuted state
            np.empty((n, 4), dtype=np.uint32),  # raw 16-bit pair indices
            np.empty((n, 4), dtype=np.intp),  # pre-cast gather indices
            np.empty((n, 4), dtype=np.uint32),  # round state (even rounds)
            np.empty((n, 4), dtype=np.uint32),  # round state (odd rounds)
            np.empty((n, 4), dtype=np.uint32),  # second-gather accumulator
        )

    def views(self, n: int) -> tuple[np.ndarray, ...]:
        if n > _RETAIN_ROWS:
            return self._allocate(n)
        if n > self.rows:
            # Commit rows only after allocation succeeds, or a failed
            # grow would wedge the workspace into returning undersized
            # slices forever after.
            self.buffers = self._allocate(n)
            self.rows = n
        return tuple(buf[:n] for buf in self.buffers)


_WS = _Workspace()


def expand_key(key: bytes | np.ndarray) -> np.ndarray:
    """AES-128 key schedule.

    Args:
        key: 16-byte cipher key.

    Returns:
        ``(11, 16)`` uint8 array of round keys.
    """
    key = np.asarray(bytearray(key) if isinstance(key, bytes) else key, dtype=np.uint8)
    if key.shape != (16,):
        raise ValueError(f"AES-128 key must be 16 bytes, got shape {key.shape}")
    words = [key[4 * i : 4 * i + 4].copy() for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1].copy()
        if i % 4 == 0:
            temp = np.roll(temp, -1)  # RotWord
            temp = SBOX[temp]  # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append(words[i - 4] ^ temp)
    return np.concatenate(words).reshape(11, 16)


def _round_keys_to_cols(round_keys: np.ndarray) -> np.ndarray:
    """View ``(11, 16)`` uint8 round keys as ``(11, 4)`` LE uint32 columns."""
    return np.ascontiguousarray(round_keys).view("<u4").astype(np.uint32, copy=False)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """Vectorized MixColumns over ``(N, 16)`` states (reference path)."""
    a = state.reshape(-1, 4, 4)  # (N, column, row)
    t2 = _XT2[a]
    t3 = t2 ^ a
    b0 = t2[:, :, 0] ^ t3[:, :, 1] ^ a[:, :, 2] ^ a[:, :, 3]
    b1 = a[:, :, 0] ^ t2[:, :, 1] ^ t3[:, :, 2] ^ a[:, :, 3]
    b2 = a[:, :, 0] ^ a[:, :, 1] ^ t2[:, :, 2] ^ t3[:, :, 3]
    b3 = t3[:, :, 0] ^ a[:, :, 1] ^ a[:, :, 2] ^ t2[:, :, 3]
    return np.stack((b0, b1, b2, b3), axis=-1).reshape(-1, 16)


def aes128_encrypt_blocks_reference(round_keys: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """The per-transform byte pipeline (pre-T-table reference).

    Kept as the semantic anchor: tests assert the T-table fast path is
    bit-identical to this on random batches in addition to the FIPS-197
    known answers.
    """
    state = blocks ^ round_keys[0]
    for rnd in range(1, 10):
        state = SBOX[state]
        state = state[:, SHIFT_ROWS_PERM]
        state = _mix_columns(state)
        state ^= round_keys[rnd]
    state = SBOX[state]
    state = state[:, SHIFT_ROWS_PERM]
    state ^= round_keys[10]
    return state


def aes128_encrypt_blocks(round_keys: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Encrypt a batch of 16-byte blocks (pair-table fast path).

    Args:
        round_keys: ``(11, 16)`` output of :func:`expand_key`.
        blocks: ``(N, 16)`` uint8 plaintext blocks (not mutated).

    Returns:
        ``(N, 16)`` uint8 ciphertext blocks (freshly allocated).
    """
    n = blocks.shape[0]
    if n == 0:
        return np.empty((0, 16), dtype=np.uint8)
    rk = _round_keys_to_cols(round_keys)
    perm, idx32, idx, even, odd, gath = _WS.views(n)

    cols = np.ascontiguousarray(blocks).view("<u4").astype(np.uint32, copy=False)
    state = (cols ^ rk[0]).view(np.uint8)
    bufs = (even, odd)
    for rnd in range(1, 10):
        t = bufs[rnd & 1]
        np.take(state, SHIFT_ROWS_PERM, axis=1, out=perm)
        pcols = perm.view("<u4")
        np.bitwise_and(pcols, _M16, out=idx32)
        np.copyto(idx, idx32)  # pre-cast so take skips an internal copy
        np.take(_T01, idx, out=t)
        np.right_shift(pcols, _SH16, out=idx32)
        np.copyto(idx, idx32)
        np.take(_T23, idx, out=gath)
        t ^= gath
        t ^= rk[rnd]
        state = t.view(np.uint8)
    # Final round: SubBytes + ShiftRows only, via the fused S-box pairs.
    np.take(state, SHIFT_ROWS_PERM, axis=1, out=perm)
    pcols = perm.view("<u4")
    out = np.empty((n, 4), dtype=np.uint32)
    np.bitwise_and(pcols, _M16, out=idx32)
    np.copyto(idx, idx32)
    np.take(_FS, idx, out=out)
    np.right_shift(pcols, _SH16, out=idx32)
    np.copyto(idx, idx32)
    np.take(_FS, idx, out=gath)
    gath <<= _SH16
    out |= gath
    out ^= rk[10]
    return out.astype("<u4", copy=False).view(np.uint8).reshape(n, 16)


# Fixed MMO keys; arbitrary distinct public constants (digits of pi-ish
# values are traditional, but any fixed value works: security rests on
# the cipher, not on key secrecy, in the MMO PRG construction).
_FIXED_KEY = bytes(range(16))
_TWEAK_CONSTANTS = (0x00, 0x80)


def _tweak_row(tweak: int) -> np.ndarray:
    """The 16-byte XOR mask a tweak applies to a seed block."""
    row = np.zeros(16, dtype=np.uint8)
    row[0] = _TWEAK_CONSTANTS[tweak % 2]
    row[1] = (tweak >> 1) & 0xFF
    return row


@prf_mod.register_prf
class Aes128(prf_mod.Prf):
    """AES-128 in fixed-key Matyas--Meyer--Oseas mode.

    The paper's CPU baseline (Google's DPF library) uses AES-128 with
    AES-NI; on GPUs AES has no hardware assist and is the *slowest* PRF
    in Table 5 — the cost metadata reflects both facts.
    """

    name = "aes128"
    gpu_cost = 1.0  # Table 5 reference point: 965 QPS.
    cpu_cost = 1.0  # AES-NI accelerated.
    security_bits = 128
    standardized = True

    def __init__(self, key: bytes = _FIXED_KEY):
        self._round_keys = expand_key(key)
        self._tweak_rows: dict[int, np.ndarray] = {}

    def _tweak_mask(self, tweak: int) -> np.ndarray:
        row = self._tweak_rows.get(tweak)
        if row is None:
            row = self._tweak_rows.setdefault(tweak, _tweak_row(tweak))
        return row

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        tweaked = seeds ^ self._tweak_mask(tweak)
        out = aes128_encrypt_blocks(self._round_keys, tweaked)
        out ^= seeds
        return out

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Fused PRG: both children from one cipher pass over 2N blocks."""
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        stacked = np.empty((2 * n, 16), dtype=np.uint8)
        np.bitwise_xor(seeds, self._tweak_mask(0), out=stacked[:n])
        np.bitwise_xor(seeds, self._tweak_mask(1), out=stacked[n:])
        out = aes128_encrypt_blocks(self._round_keys, stacked)
        out[:n] ^= seeds
        out[n:] ^= seeds
        return out
