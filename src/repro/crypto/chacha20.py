"""ChaCha20 stream cipher (RFC 8439), vectorized over batches of states.

ChaCha20 is the paper's recommended standardized alternative to AES on
GPUs (Section 3.2.6, Table 5): it is pure 32-bit add/xor/rotate — no
table lookups — so it maps well onto GPU ALUs and onto numpy here.  The
implementation is validated against the RFC 8439 quarter-round and
block-function test vectors.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import prf as prf_mod

_CONSTANTS = np.array([0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32)

_COLUMN_ROUNDS = ((0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15))
_DIAGONAL_ROUNDS = ((0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14))


def _rotl32(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """Apply the ChaCha quarter round in place to columns of ``state``.

    ``state`` is ``(N, 16)`` uint32; indices pick the four lanes.
    """
    state[:, a] += state[:, b]
    state[:, d] = _rotl32(state[:, d] ^ state[:, a], 16)
    state[:, c] += state[:, d]
    state[:, b] = _rotl32(state[:, b] ^ state[:, c], 12)
    state[:, a] += state[:, b]
    state[:, d] = _rotl32(state[:, d] ^ state[:, a], 8)
    state[:, c] += state[:, d]
    state[:, b] = _rotl32(state[:, b] ^ state[:, c], 7)


def _chacha20_core(state: np.ndarray) -> np.ndarray:
    """Run the 20 ChaCha rounds plus feed-forward on assembled states.

    Args:
        state: ``(N, 16)`` uint32 initial states (not mutated).

    Returns:
        ``(N, 16)`` uint32 keystream words.
    """
    working = state.copy()
    for _ in range(10):
        for idx in _COLUMN_ROUNDS:
            quarter_round(working, *idx)
        for idx in _DIAGONAL_ROUNDS:
            quarter_round(working, *idx)
    working += state
    return working


def chacha20_block(key: np.ndarray, counter: np.ndarray, nonce: np.ndarray) -> np.ndarray:
    """The ChaCha20 block function, vectorized.

    Args:
        key: ``(N, 8)`` uint32 key words (256-bit keys, little-endian).
        counter: ``(N,)`` uint32 block counters.
        nonce: ``(N, 3)`` uint32 nonce words.

    Returns:
        ``(N, 16)`` uint32 keystream words.
    """
    n = key.shape[0]
    state = np.empty((n, 16), dtype=np.uint32)
    state[:, 0:4] = _CONSTANTS
    state[:, 4:12] = key
    state[:, 12] = counter
    state[:, 13:16] = nonce
    return _chacha20_core(state)


def chacha20_keystream(key: bytes, counter: int, nonce: bytes, length: int) -> bytes:
    """Scalar convenience keystream generator (used by the test vectors)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    key_words = np.frombuffer(key, dtype="<u4").astype(np.uint32).reshape(1, 8)
    nonce_words = np.frombuffer(nonce, dtype="<u4").astype(np.uint32).reshape(1, 3)
    out = bytearray()
    block_index = 0
    while len(out) < length:
        ctr = np.array([counter + block_index], dtype=np.uint32)
        block = chacha20_block(key_words, ctr, nonce_words)
        out += block.astype("<u4").tobytes()
        block_index += 1
    return bytes(out[:length])


@prf_mod.register_prf
class ChaCha20Prf(prf_mod.Prf):
    """ChaCha20 block function as a PRF over 16-byte seeds.

    The seed supplies the low 128 bits of the key (the high bits are a
    fixed public constant); the tweak becomes the nonce.  One block
    invocation yields 64 bytes, of which the first 16 are returned.
    """

    name = "chacha20"
    gpu_cost = 965.0 / 3640.0  # Table 5: 3,640 QPS vs AES's 965.
    cpu_cost = 4.0  # No hardware assist on the CPU baseline.
    security_bits = 128
    standardized = True

    _KEY_SUFFIX = np.frombuffer(b"repro-gpu-dpf-k!", dtype="<u4").astype(np.uint32)

    # One broadcastable row holding every seed-independent state word
    # (constants, key suffix, zero counter/nonce), so state assembly is
    # a single vectorized fill instead of per-call re-broadcasts.
    _TEMPLATE = np.zeros(16, dtype=np.uint32)
    _TEMPLATE[0:4] = _CONSTANTS
    _TEMPLATE[8:12] = _KEY_SUFFIX

    @classmethod
    def _fill_states(cls, state: np.ndarray, seeds: np.ndarray, tweak: int) -> None:
        """Assemble initial states in place for one tweak."""
        state[:] = cls._TEMPLATE
        state[:, 4:8] = np.ascontiguousarray(seeds).view("<u4")
        state[:, 13] = np.uint32(tweak)

    @staticmethod
    def _truncate(block: np.ndarray) -> np.ndarray:
        """First 16 keystream bytes of each ``(N, 16)`` uint32 block."""
        n = block.shape[0]
        words = np.ascontiguousarray(block[:, 0:4])
        return words.astype("<u4", copy=False).view(np.uint8).reshape(n, 16)

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        state = np.empty((n, 16), dtype=np.uint32)
        self._fill_states(state, seeds, tweak)
        return self._truncate(_chacha20_core(state))

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Fused PRG: both tweaks stacked through one block-function pass."""
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        state = np.empty((2 * n, 16), dtype=np.uint32)
        self._fill_states(state[:n], seeds, 0)
        self._fill_states(state[n:], seeds, 1)
        return self._truncate(_chacha20_core(state))
