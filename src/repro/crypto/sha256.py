"""SHA-256 (FIPS-180-4), with a vectorized single-block compression path.

The round constants and initial hash values are *derived* (fractional
parts of cube/square roots of the first primes, computed with exact
integer arithmetic) rather than transcribed, and the implementation is
validated against the standard ``"abc"`` test vector.

Two interfaces are provided:

* :func:`sha256` — a general-purpose scalar digest used by tests.
* :class:`Sha256Prf` — the vectorized PRF used in the DPF: each 16-byte
  seed plus a tweak fits a single padded block, so one compression per
  call suffices.  The paper benchmarks this configuration as
  "SHA-256 Hash (HMAC)" in Table 5; HMAC's extra compressions are
  accounted for in the cost metadata.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import prf as prf_mod


def _integer_nth_root(x: int, n: int) -> int:
    """Floor of the n-th root of a (possibly huge) non-negative integer."""
    if x < 0:
        raise ValueError("x must be non-negative")
    if x == 0:
        return 0
    guess = 1 << (-(-x.bit_length() // n))  # >= true root
    while True:
        nxt = ((n - 1) * guess + x // guess ** (n - 1)) // n
        if nxt >= guess:
            return guess
        guess = nxt


def _first_primes(count: int) -> list[int]:
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % p for p in primes if p * p <= candidate):
            primes.append(candidate)
        candidate += 1
    return primes


def _derive_constants() -> tuple[np.ndarray, np.ndarray]:
    primes = _first_primes(64)
    # H0: first 32 bits of the fractional part of sqrt(prime).
    h0 = np.array(
        [_integer_nth_root(p << 64, 2) & 0xFFFFFFFF for p in primes[:8]],
        dtype=np.uint32,
    )
    # K: first 32 bits of the fractional part of cbrt(prime).
    k = np.array(
        [_integer_nth_root(p << 96, 3) & 0xFFFFFFFF for p in primes],
        dtype=np.uint32,
    )
    return h0, k


_H0, _K = _derive_constants()


def _rotr(x: np.ndarray, n: int) -> np.ndarray:
    return (x >> np.uint32(n)) | (x << np.uint32(32 - n))


def _compress_blocks(state: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """One SHA-256 compression, vectorized over N independent messages.

    Args:
        state: ``(N, 8)`` uint32 chaining values.
        blocks: ``(N, 16)`` uint32 big-endian message words.

    Returns:
        ``(N, 8)`` uint32 updated chaining values.
    """
    w = np.empty(blocks.shape[:1] + (64,), dtype=np.uint32)
    w[:, :16] = blocks
    for t in range(16, 64):
        s0 = _rotr(w[:, t - 15], 7) ^ _rotr(w[:, t - 15], 18) ^ (w[:, t - 15] >> np.uint32(3))
        s1 = _rotr(w[:, t - 2], 17) ^ _rotr(w[:, t - 2], 19) ^ (w[:, t - 2] >> np.uint32(10))
        w[:, t] = w[:, t - 16] + s0 + w[:, t - 7] + s1

    a, b, c, d, e, f, g, h = (state[:, i].copy() for i in range(8))
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = h + big_s1 + ch + _K[t] + w[:, t]
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = big_s0 + maj
        h, g, f, e, d, c, b, a = g, f, e, d + t1, c, b, a, t1 + t2
    out = np.stack((a, b, c, d, e, f, g, h), axis=1)
    return out + state


def sha256(message: bytes) -> bytes:
    """Digest of an arbitrary byte string (scalar convenience path)."""
    length_bits = len(message) * 8
    padded = bytearray(message)
    padded.append(0x80)
    while len(padded) % 64 != 56:
        padded.append(0)
    padded += length_bits.to_bytes(8, "big")
    data = np.frombuffer(bytes(padded), dtype=">u4").astype(np.uint32).reshape(-1, 16)
    state = np.broadcast_to(_H0, (1, 8)).copy()
    for i in range(data.shape[0]):
        state = _compress_blocks(state, data[i : i + 1])
    return state.astype(">u4").tobytes()


@prf_mod.register_prf
class Sha256Prf(prf_mod.Prf):
    """SHA-256 as a PRF over 16-byte seeds (single-compression path)."""

    name = "sha256"
    gpu_cost = 965.0 / 921.0  # Table 5: 921 QPS vs AES's 965.
    cpu_cost = 2.5  # SHA extensions are rarer than AES-NI on server Xeons.
    security_bits = 128
    standardized = True

    @staticmethod
    def _fill_blocks(blocks: np.ndarray, seeds: np.ndarray, tweak: int) -> None:
        """Assemble padded one-block messages in place for one tweak.

        Message layout (big-endian words): seed (4 words) | tweak |
        0x80 padding word | zeros | bit length (20 bytes = 160 bits).
        """
        blocks[:] = 0
        # A big-endian uint32 view *is* the s0<<24|s1<<16|s2<<8|s3 packing.
        blocks[:, 0:4] = np.ascontiguousarray(seeds).view(">u4").astype(np.uint32)
        blocks[:, 4] = np.uint32(tweak)
        blocks[:, 5] = np.uint32(0x80000000)
        blocks[:, 15] = np.uint32(160)

    @staticmethod
    def _truncate(state: np.ndarray) -> np.ndarray:
        """First 128 bits of each digest, in big-endian byte order."""
        n = state.shape[0]
        return np.ascontiguousarray(state[:, 0:4]).astype(">u4").view(np.uint8).reshape(n, 16)

    def expand(self, seeds: np.ndarray, tweak: int) -> np.ndarray:
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        blocks = np.empty((n, 16), dtype=np.uint32)
        self._fill_blocks(blocks, seeds, tweak)
        state = np.broadcast_to(_H0, (n, 8)).copy()
        return self._truncate(_compress_blocks(state, blocks))

    def expand_pair_stacked(self, seeds: np.ndarray) -> np.ndarray:
        """Fused PRG: both tweaks stacked through one compression pass."""
        if seeds.ndim != 2 or seeds.shape[1] != 16:
            raise ValueError(f"seeds must be (N, 16) uint8, got {seeds.shape}")
        n = seeds.shape[0]
        blocks = np.empty((2 * n, 16), dtype=np.uint32)
        self._fill_blocks(blocks[:n], seeds, 0)
        self._fill_blocks(blocks[n:], seeds, 1)
        state = np.broadcast_to(_H0, (2 * n, 8)).copy()
        return self._truncate(_compress_blocks(state, blocks))
