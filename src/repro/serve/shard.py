"""Sharded, replicated PIR serving with failover and epoch updates.

One :class:`~repro.pir.PirServer` holds the whole table and dies whole.
This module scales and hardens that single box along the two axes a
real deployment needs (ROADMAP: scale-out serving):

* **Sharding** — :class:`ShardedPirServer` splits the domain into N
  contiguous sub-ranges (:func:`shard_ranges`).  Each shard holds only
  its ``[lo, hi)`` slice of the table and evaluates each DPF key over
  exactly that range (:meth:`~repro.exec.EvalRequest.restrict`, which
  bottoms out in the pruned-frontier :func:`repro.dpf.dpf.eval_range`
  walk on the reference path), answering the *partial* dot product
  ``sum_{i in [lo, hi)} share_k[i] * table[i] (mod 2^64)``.  The
  front-end recombines by modular addition: the full dot product is a
  sum over disjoint row ranges, so summing the shards' partials in the
  uint64 wrap-around ring is *exactly* the unsharded answer — not an
  approximation — which is why the property tests can demand
  bit-identity to ``PirServer.handle`` for every shard count.

* **Replication + failover** — each shard runs R replicas behind a
  :class:`ReplicaSet` with health tracking.  A replica whose injected
  faults (:class:`~repro.serve.chaos.FlakyBackend`) exhaust the
  :class:`~repro.serve.control.RetryPolicy` is **ejected** and the
  in-flight batch fails over to a sibling: the fused request is
  un-merged (:meth:`~repro.exec.EvalRequest.unmerge`) and the
  constituents re-dispatched *in original order*, so survivors keep
  their seniority and a second mid-failover death resumes from the
  first unanswered constituent (completed partials are deterministic,
  hence safe to keep).  An ejected replica rejoins on **probation**
  after the set answers ``rejoin_after`` batches without it, carries
  real traffic there, and is promoted back to healthy after
  ``probation_successes`` consecutive successes — one fault on
  probation re-ejects immediately, no retries.  A shard with every
  replica ejected raises the typed :exc:`ShardUnavailable` (never a
  hang).

* **Epoch-versioned online updates** — an :class:`EpochRegistry`
  serves epoch E while epoch E+1 ingests shard by shard
  (:meth:`ShardedPirServer.begin_update` /
  :meth:`~ShardedPirServer.ingest_shard` /
  :meth:`~ShardedPirServer.flip`), then flips atomically.  Every query
  is pinned to the epoch in its wire frame and answered against
  exactly that epoch's slices, so a query generated before a flip
  reconstructs against the *old* table even when its batch runs after
  the flip — both servers answer from the same version and the shares
  still telescope, preserving bit-exactness through updates.  The
  registry retains the last ``retain_epochs`` versions; older pins get
  the typed :exc:`EpochRetired`.

Everything is deterministic — health transitions count batches, not
wall-clock seconds — so every chaos scenario in
``tests/serve/test_shard.py`` replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exec.backend import ExecutionBackend, SingleGpuBackend
from repro.exec.plan_cache import PlanCache
from repro.exec.request import EvalRequest
from repro.obs.trace import annotate_request
from repro.pir.server import PirServer
from repro.serve.control import RetryPolicy

HEALTHY = "healthy"
"""Replica state: in the rotation, full retry budget."""

PROBATION = "probation"
"""Replica state: back in the rotation after ejection, zero retry
budget — one fault re-ejects immediately."""

EJECTED = "ejected"
"""Replica state: out of the rotation, waiting out its rejoin count."""

REPLICA_STATES = (HEALTHY, PROBATION, EJECTED)


class ShardUnavailable(RuntimeError):
    """Every replica of one shard is ejected; the batch cannot be served.

    Typed so the serving loop's retry/requeue path and clients can tell
    "a table sub-range is dark" from a generic backend fault.  Raised
    synchronously — an all-replicas-down shard fails fast, it never
    hangs a caller.

    Attributes:
        shard_index: Which shard went dark.
        lo, hi: The table rows ``[lo, hi)`` nobody can answer.
    """

    def __init__(self, shard_index: int, lo: int, hi: int):
        super().__init__(
            f"shard {shard_index} (table rows [{lo}, {hi})) has no "
            f"serving replicas: all ejected"
        )
        self.shard_index = shard_index
        self.lo = lo
        self.hi = hi


class EpochRetired(ValueError):
    """The query is pinned to a table epoch no longer retained.

    A ``ValueError`` subclass so the wire layer's strict-validation
    contract holds (malformed-or-unanswerable queries fail with
    ``ValueError`` at submission), but typed so clients can react
    correctly: re-issue the query against the current epoch rather
    than treating it as a protocol bug.

    Attributes:
        epoch: The retired epoch the query was pinned to.
        retained: The epochs the server still holds, oldest first.
    """

    def __init__(self, epoch: int, retained: tuple[int, ...]):
        super().__init__(
            f"table epoch {epoch} is retired; this server retains "
            f"epochs {list(retained)} — re-query against the current epoch"
        )
        self.epoch = epoch
        self.retained = retained


def shard_ranges(domain_size: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, domain_size)`` into ``shards`` contiguous sub-ranges.

    Near-equal split: the first ``domain_size % shards`` ranges get one
    extra row, so sizes differ by at most one and concatenating the
    ranges reproduces the domain exactly (no gaps, no overlap — the
    recombination math depends on this partition property).

    Raises:
        ValueError: If ``shards`` is not in ``[1, domain_size]``.
    """
    if domain_size <= 0:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if not 1 <= shards <= domain_size:
        raise ValueError(
            f"shards must be in [1, {domain_size}] for a domain of "
            f"{domain_size} rows, got {shards}"
        )
    base, extra = divmod(domain_size, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class EpochRegistry:
    """Which table epochs exist, which are retained, which is staged.

    The version control plane, separated from the data plane (the
    slices live in the replica sets) so its state machine is trivially
    testable: ``current`` serves, ``staged`` ingests, ``retained`` is
    the answerable window, everything older is retired.

    Args:
        retain: How many published epochs stay answerable (>= 1).  The
            default of 2 keeps exactly the pre-flip epoch alive through
            a flip — enough for every query generated before the flip
            to finish, the minimum that makes online updates seamless.
    """

    def __init__(self, retain: int = 2):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.retain = retain
        self.current = 0
        self.staged: int | None = None
        self._retained: list[int] = [0]

    @property
    def retained(self) -> tuple[int, ...]:
        """Answerable epochs, oldest first (always contains current)."""
        return tuple(self._retained)

    def begin(self) -> int:
        """Stage epoch ``current + 1`` for ingestion.

        Raises:
            ValueError: If an ingestion is already staged (one update
                in flight at a time — the atomicity guarantee).
        """
        if self.staged is not None:
            raise ValueError(
                f"epoch {self.staged} is already staged; flip or abandon "
                f"it before beginning another update"
            )
        self.staged = self.current + 1
        return self.staged

    def flip(self) -> tuple[int, list[int]]:
        """Publish the staged epoch; retire beyond the retained window.

        Returns:
            ``(new_current, dropped)`` — the published epoch and the
            epochs that just left the retained window (the caller drops
            their table slices).

        Raises:
            ValueError: If no epoch is staged.
        """
        if self.staged is None:
            raise ValueError("no epoch is staged; call begin() first")
        self.current = self.staged
        self.staged = None
        self._retained.append(self.current)
        dropped = []
        while len(self._retained) > self.retain:
            dropped.append(self._retained.pop(0))
        return self.current, dropped

    def check(self, epoch: int) -> None:
        """Validate that ``epoch`` is answerable right now.

        Raises:
            EpochRetired: The epoch was published and has been retired.
            ValueError: The epoch was never published (future, or
                staged but not yet flipped).
        """
        if epoch in self._retained:
            return
        if 0 <= epoch <= self.current:
            raise EpochRetired(epoch, self.retained)
        if epoch == self.staged:
            raise ValueError(
                f"table epoch {epoch} is still ingesting; it is not "
                f"answerable until the flip"
            )
        raise ValueError(
            f"table epoch {epoch} has never been published (current is "
            f"{self.current})"
        )


@dataclass(eq=False)
class ShardReplica:
    """One replica of one shard: a backend plus its health state.

    Identity equality: replicas are tracked as objects through the
    rotation.  The table slices live in the owning :class:`ReplicaSet`
    (identical across siblings, so storing them per replica would just
    duplicate views).

    Attributes:
        backend: The execution backend this replica evaluates on
            (wrap in :class:`~repro.serve.chaos.FlakyBackend` to
            torture it).
        state: :data:`HEALTHY` / :data:`PROBATION` / :data:`EJECTED`.
        ejections: Times this replica has been ejected.
        probation_streak: Consecutive probation successes so far.
        idle_batches: Set-level batches answered since this replica's
            ejection (the rejoin countdown).
    """

    backend: ExecutionBackend
    state: str = HEALTHY
    ejections: int = 0
    probation_streak: int = 0
    idle_batches: int = 0


class _ReplicaExhausted(Exception):
    """Internal: one replica's retry budget is spent (carries cause)."""


@dataclass
class ShardStats:
    """Observable counters for one replica set's lifetime.

    Attributes:
        batches: Set-level answers completed (fused batches, not keys).
        retries: Same-replica retry attempts after a fault.
        ejections: Replica ejections (retry budget exhausted, or one
            probation fault).
        failovers: Batches (or un-merged constituents) re-dispatched to
            a sibling after an ejection.
        rejoins: Ejected replicas re-entering the rotation on probation.
        recoveries: Probation replicas promoted back to healthy.
    """

    batches: int = 0
    retries: int = 0
    ejections: int = 0
    failovers: int = 0
    rejoins: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict:
        """JSON-ready counters — the metrics-registry view shape."""
        return {
            "batches": self.batches,
            "retries": self.retries,
            "ejections": self.ejections,
            "failovers": self.failovers,
            "rejoins": self.rejoins,
            "recoveries": self.recoveries,
        }


class ReplicaSet:
    """R replicas of one shard: routing, health, retries, failover.

    All state transitions count *batches*, not seconds, so a replayed
    request sequence produces the identical ejection/rejoin history.

    Args:
        shard_index: Position of this shard in the front-end's order.
        lo, hi: The table rows ``[lo, hi)`` this shard serves.
        backends: One backend per replica (>= 1).
        retry: Same-replica retry budget before ejection (defaults to
            the serving loop's default policy).
        rejoin_after: Set-level batches an ejected replica sits out
            before rejoining on probation.  ``None`` disables rejoin
            (an ejected replica stays dead).
        probation_successes: Consecutive successes that promote a
            probation replica back to healthy.
        plan_cache: Optional :class:`~repro.exec.PlanCache` shared by
            this set's replicas: dispatches evaluate through it (the
            cache key carries the backend identity, so distinct devices
            never exchange plans).  Backends that hold their *own*
            worker-side caches and resident slices (duck-typed
            ``run_combined`` — :class:`~repro.exec.MultiProcessBackend`)
            bypass it on the combined fast path.
    """

    def __init__(
        self,
        shard_index: int,
        lo: int,
        hi: int,
        backends: Sequence[ExecutionBackend],
        retry: RetryPolicy | None = None,
        rejoin_after: int | None = 3,
        probation_successes: int = 2,
        plan_cache: "PlanCache | None" = None,
    ):
        if not backends:
            raise ValueError("need at least one replica backend")
        if not 0 <= lo < hi:
            raise ValueError(f"invalid shard range [{lo}, {hi})")
        if rejoin_after is not None and rejoin_after < 1:
            raise ValueError(f"rejoin_after must be >= 1 or None, got {rejoin_after}")
        if probation_successes < 1:
            raise ValueError(
                f"probation_successes must be >= 1, got {probation_successes}"
            )
        self.shard_index = shard_index
        self.lo = lo
        self.hi = hi
        self.replicas = [ShardReplica(backend) for backend in backends]
        self.retry = retry if retry is not None else RetryPolicy()
        self.rejoin_after = rejoin_after
        self.probation_successes = probation_successes
        self.plan_cache = plan_cache
        self.stats = ShardStats()
        self._cursor = 0

    # -- tables (installed by the owning ShardedPirServer) -------------

    @property
    def entries(self) -> int:
        return self.hi - self.lo

    def install_epoch(self, epoch: int, table_slice: np.ndarray) -> None:
        """Install one epoch's ``(hi - lo,)`` slice (a zero-copy view).

        Replica backends that expose ``install_table`` (the worker-pool
        backend) additionally get the slice pushed into their workers,
        enabling the combined fast path for this epoch.
        """
        if table_slice.shape != (self.entries,):
            raise ValueError(
                f"shard {self.shard_index} serves {self.entries} rows but "
                f"the epoch-{epoch} slice carries {table_slice.shape}"
            )
        self._tables = getattr(self, "_tables", {})
        self._tables[epoch] = table_slice
        for replica in self.replicas:
            install = getattr(replica.backend, "install_table", None)
            if callable(install):
                install(epoch, self.lo, table_slice)

    def drop_epoch(self, epoch: int) -> None:
        self._tables.pop(epoch, None)
        for replica in self.replicas:
            drop = getattr(replica.backend, "drop_table", None)
            if callable(drop):
                drop(epoch)

    # -- health --------------------------------------------------------

    def states(self) -> tuple[str, ...]:
        """Each replica's current state, in replica order."""
        return tuple(replica.state for replica in self.replicas)

    def _pick(self) -> ShardReplica | None:
        """Next serving replica: deterministic round-robin over the
        non-ejected, so load spreads and probation replicas carry real
        traffic (how they prove themselves)."""
        eligible = [r for r in self.replicas if r.state != EJECTED]
        if not eligible:
            return None
        replica = eligible[self._cursor % len(eligible)]
        self._cursor += 1
        return replica

    def _eject(self, replica: ShardReplica) -> None:
        replica.state = EJECTED
        replica.idle_batches = 0
        replica.probation_streak = 0
        self.stats.ejections += 1

    def _record_success(self, replica: ShardReplica) -> None:
        if replica.state == PROBATION:
            replica.probation_streak += 1
            if replica.probation_streak >= self.probation_successes:
                replica.state = HEALTHY
                replica.probation_streak = 0
                self.stats.recoveries += 1

    def _finish_batch(self) -> None:
        """Advance every ejected replica's rejoin countdown by one
        completed set-level batch; promote the ones that served their
        time to probation."""
        self.stats.batches += 1
        if self.rejoin_after is None:
            return
        for replica in self.replicas:
            if replica.state != EJECTED:
                continue
            replica.idle_batches += 1
            if replica.idle_batches >= self.rejoin_after:
                replica.state = PROBATION
                replica.probation_streak = 0
                replica.idle_batches = 0
                self.stats.rejoins += 1

    # -- serving -------------------------------------------------------

    def _run_once(
        self, replica: ShardReplica, request: EvalRequest, epoch: int
    ) -> np.ndarray:
        """One replica attempt under its retry budget; the ``(B,)``
        partial dot product on success, :class:`_ReplicaExhausted` when
        the budget is spent (probation replicas have none)."""
        table = self._tables[epoch]
        restricted = request.restrict(self.lo, self.hi)
        combined = getattr(replica.backend, "run_combined", None)
        attempts = 0
        while True:
            attempts += 1
            try:
                if callable(combined):
                    # Worker-pool fast path: the backend holds this
                    # shard's resident slice per worker and returns the
                    # (B,) partial directly — domain-parallel, tiny IPC.
                    return combined(restricted, epoch)
                if self.plan_cache is not None:
                    # Zero-dispatch path: memoized plan + pinned
                    # workspace, keyed per backend identity.
                    return (
                        self.plan_cache.run(replica.backend, restricted).answers
                        @ table
                    )
                # (B, hi-lo) range-restricted shares dotted with this
                # shard's slice: the partial sum the front-end adds up.
                return replica.backend.run(restricted).answers @ table
            except Exception as exc:
                if replica.state == PROBATION or not self.retry.allows_retry(
                    attempts, 0.0
                ):
                    raise _ReplicaExhausted() from exc
                self.stats.retries += 1
                # Annotate every query the faulted attempt carried
                # (the restricted view shares the request's traces).
                annotate_request(
                    restricted,
                    "shard_retry",
                    shard=self.shard_index,
                    attempt=attempts,
                    error=type(exc).__name__,
                )

    def answer(
        self,
        request: EvalRequest,
        epoch: int,
        sizes: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Answer the fused batch's partial shares for this shard.

        Fast path: one replica runs the merged batch whole.  On that
        replica's ejection the batch fails over un-merged: ``sizes``
        (when given) splits it back into its constituents, each
        re-dispatched in original order to the surviving rotation —
        seniority is preserved, and because partial shares are
        deterministic, constituents completed before a *second* death
        are kept rather than recomputed.

        Returns:
            ``(B,)`` uint64 partial shares over rows ``[lo, hi)``.

        Raises:
            ShardUnavailable: Every replica is ejected.
            KeyError: ``epoch``'s slice was never installed (a control-
                plane bug — :class:`ShardedPirServer` validates epochs
                before dispatch).
        """
        replica = self._pick()
        if replica is None:
            raise ShardUnavailable(self.shard_index, self.lo, self.hi)
        try:
            partial = self._run_once(replica, request, epoch)
            self._record_success(replica)
            self._finish_batch()
            return partial
        except _ReplicaExhausted as exhausted:
            self._eject(replica)
            cause = exhausted.__cause__
        # Failover: un-merge so each constituent survives independently.
        if sizes is not None and len(sizes) > 1:
            parts = EvalRequest.unmerge(request, sizes)
        else:
            parts = [request]
        partials: list[np.ndarray] = []
        replica = self._pick()
        while len(partials) < len(parts):
            if replica is None:
                raise ShardUnavailable(
                    self.shard_index, self.lo, self.hi
                ) from cause
            self.stats.failovers += 1
            # Mark the queries in the re-dispatched constituent: an
            # un-merged part carries exactly its own trace slot, so the
            # annotation lands on the queries that actually failed over.
            annotate_request(
                parts[len(partials)], "failover", shard=self.shard_index
            )
            try:
                partials.append(self._run_once(replica, parts[len(partials)], epoch))
                self._record_success(replica)
            except _ReplicaExhausted as exhausted:
                self._eject(replica)
                cause = exhausted.__cause__
                replica = self._pick()
        self._finish_batch()
        return partials[0] if len(partials) == 1 else np.concatenate(partials)


BackendFactory = Callable[[int, int], ExecutionBackend]
"""``(shard_index, replica_index) -> backend`` — how a
:class:`ShardedPirServer` populates its replica grid."""


class ShardedPirServer(PirServer):
    """A sharded, replicated front-end with the ``PirServer`` interface.

    Drop-in for :class:`~repro.pir.PirServer` everywhere the repo
    serves — ``handle``, the async loop, the bench harness — because it
    *is* one: construction, validation and framing are inherited, and
    only the two overridable seams change (:meth:`check_epoch` gains
    the epoch registry, :meth:`answer_request` fans out across shards
    and sums the partials mod 2^64 instead of running one backend).
    The property tests in ``tests/serve/test_shard.py`` pin the answer
    bytes to the unsharded server's for every shard/replica/backend
    combination, with and without injected faults.

    Args:
        table: The full database (epoch 0); sliced zero-copy across
            shards.
        shards: Contiguous sub-ranges to split the domain into.
        replicas: Replicas per shard.
        backend_factory: ``(shard, replica) -> backend``; default makes
            a fresh :class:`~repro.exec.SingleGpuBackend` each (wrap
            with :class:`~repro.serve.chaos.FlakyBackend` here to
            inject faults per replica).
        retry: Same-replica retry budget before ejection.
        rejoin_after: Batches an ejected replica sits out before
            probation (``None``: ejection is permanent).
        probation_successes: Consecutive successes promoting probation
            back to healthy.
        retain_epochs: Published epochs kept answerable (>= 1; 2 keeps
            the pre-flip epoch alive through each flip).
        prf_name, resident, max_batch: As on :class:`PirServer`.
        plan_cache: Optional :class:`~repro.exec.PlanCache` shared by
            every replica set (keys carry backend identity, so mixed
            fleets stay safe).  Enables the zero-dispatch steady state
            across shards.
    """

    def __init__(
        self,
        table: np.ndarray | Sequence[int],
        shards: int = 2,
        replicas: int = 1,
        backend_factory: BackendFactory | None = None,
        retry: RetryPolicy | None = None,
        rejoin_after: int | None = 3,
        probation_successes: int = 2,
        retain_epochs: int = 2,
        prf_name: str = "aes128",
        resident: bool = False,
        max_batch: int | None = None,
        plan_cache: PlanCache | None = None,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        factory = (
            backend_factory
            if backend_factory is not None
            else lambda shard, replica: SingleGpuBackend()
        )
        retry = retry if retry is not None else RetryPolicy()
        table = np.ascontiguousarray(np.asarray(table, dtype=np.uint64))
        if table.ndim != 1 or table.size == 0:
            raise ValueError("table must be a non-empty 1-D array of uint64 entries")
        ranges = shard_ranges(int(table.size), shards)
        self.shards = [
            ReplicaSet(
                index,
                lo,
                hi,
                [factory(index, replica) for replica in range(replicas)],
                retry=retry,
                rejoin_after=rejoin_after,
                probation_successes=probation_successes,
                plan_cache=plan_cache,
            )
            for index, (lo, hi) in enumerate(ranges)
        ]
        # The inherited backend is the drain-model/pricing
        # representative only; answer_request never runs it directly.
        super().__init__(
            table,
            backend=self.shards[0].replicas[0].backend,
            prf_name=prf_name,
            resident=resident,
            max_batch=max_batch,
            plan_cache=plan_cache,
        )
        self.registry = EpochRegistry(retain=retain_epochs)
        self._epoch_tables: dict[int, np.ndarray] = {0: self.table}
        self._staged_table: np.ndarray | None = None
        self._staged_shards: set[int] = set()
        for shard in self.shards:
            shard.install_epoch(0, self.table[shard.lo : shard.hi])

    # -- introspection -------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def replica_count(self) -> int:
        return len(self.shards[0].replicas)

    def replica_states(self) -> list[tuple[str, ...]]:
        """Per-shard replica states, for tests and the smoke script."""
        return [shard.states() for shard in self.shards]

    def stats_totals(self) -> ShardStats:
        """Fleet-wide health counters summed across shards."""
        total = ShardStats()
        for shard in self.shards:
            total.batches += shard.stats.batches
            total.retries += shard.stats.retries
            total.ejections += shard.stats.ejections
            total.failovers += shard.stats.failovers
            total.rejoins += shard.stats.rejoins
            total.recoveries += shard.stats.recoveries
        return total

    # -- epoch control plane -------------------------------------------

    def begin_update(self, new_table: np.ndarray | Sequence[int]) -> int:
        """Stage the next epoch's table for shard-by-shard ingestion.

        Serving continues uninterrupted against the retained epochs
        while the staged epoch ingests.

        Raises:
            ValueError: If an update is already in flight, or the new
                table's size differs from the current one (clients'
                keys address a fixed domain; resizing is a redeploy,
                not an epoch).
        """
        new_table = np.ascontiguousarray(np.asarray(new_table, dtype=np.uint64))
        if new_table.shape != (self.table_entries,):
            raise ValueError(
                f"epoch updates must keep the table size: current is "
                f"{self.table_entries} rows, new table has {new_table.shape}"
            )
        epoch = self.registry.begin()
        self._staged_table = new_table
        self._staged_shards = set()
        return epoch

    def ingest_shard(self, shard_index: int) -> None:
        """Install the staged epoch's slice on one shard's replica set.

        Idempotent per shard; callable in any order.  Queries keep
        answering from the retained epochs throughout — ingestion only
        *adds* slices.

        Raises:
            ValueError: If no update is staged or the index is out of
                range.
        """
        if self._staged_table is None or self.registry.staged is None:
            raise ValueError("no epoch update in flight; call begin_update first")
        if not 0 <= shard_index < len(self.shards):
            raise ValueError(
                f"shard_index must be in [0, {len(self.shards)}), got {shard_index}"
            )
        shard = self.shards[shard_index]
        shard.install_epoch(
            self.registry.staged, self._staged_table[shard.lo : shard.hi]
        )
        self._staged_shards.add(shard_index)

    def flip(self) -> int:
        """Atomically publish the staged epoch; retire beyond the window.

        The flip is one registry transition: every query admitted
        before it answers from its pinned (retained) epoch, every query
        pinned after it answers from the new table — no batch ever
        mixes versions.

        Returns:
            The newly current epoch.

        Raises:
            ValueError: If no update is staged or any shard has not
                ingested (an un-ingested shard would KeyError at serve
                time — refused up front instead).
        """
        if self._staged_table is None:
            raise ValueError("no epoch update in flight; call begin_update first")
        missing = set(range(len(self.shards))) - self._staged_shards
        if missing:
            raise ValueError(
                f"cannot flip: shards {sorted(missing)} have not ingested "
                f"the staged epoch"
            )
        staged_table = self._staged_table
        epoch, dropped = self.registry.flip()
        self._epoch_tables[epoch] = staged_table
        self.table = staged_table  # inherited sync paths serve current
        self.epoch = epoch
        self._staged_table = None
        self._staged_shards = set()
        for old in dropped:
            self._epoch_tables.pop(old, None)
            for shard in self.shards:
                shard.drop_epoch(old)
        return epoch

    def publish(self, new_table: np.ndarray | Sequence[int]) -> int:
        """The whole update in one call: begin, ingest every shard, flip."""
        self.begin_update(new_table)
        for shard_index in range(len(self.shards)):
            self.ingest_shard(shard_index)
        return self.flip()

    def epoch_table(self, epoch: int) -> np.ndarray:
        """The retained full table for ``epoch`` (tests' oracle hook).

        Raises:
            EpochRetired / ValueError: As :meth:`check_epoch`.
        """
        self.check_epoch(epoch)
        return self._epoch_tables[epoch]

    # -- serving seams (the PirServer overrides) -----------------------

    def check_epoch(self, epoch: int) -> None:
        """Registry semantics: retained answers, retired is typed.

        Raises:
            EpochRetired: ``epoch`` was published and aged out of the
                retained window.
            ValueError: ``epoch`` was never published (staged or
                future).
        """
        self.registry.check(epoch)

    def answer_request(
        self,
        request: EvalRequest,
        epoch: int = 0,
        backend: ExecutionBackend | None = None,
        sizes: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Fan the batch across shards; sum partials mod 2^64.

        Each shard contributes ``sum_{i in [lo, hi)} share[i] *
        table_epoch[i]`` from whichever replica serves it (retry,
        eject, fail over as needed); the shard ranges partition the
        domain, so the uint64 wrap-around sum of the partials is
        bit-identical to the unsharded dot product.

        Raises:
            EpochRetired / ValueError: Epoch not answerable.
            ShardUnavailable: Some shard has no serving replicas (the
                whole batch fails typed — a missing sub-range makes
                every answer share wrong, so there is no partial
                success to return).
        """
        if backend is not None:
            raise ValueError(
                "a sharded server routes across its own replicas; "
                "external backend routing (fleet=) is unsupported"
            )
        self.check_epoch(epoch)
        total = np.zeros(request.arena().batch, dtype=np.uint64)
        for shard in self.shards:
            np.add(total, shard.answer(request, epoch, sizes=sizes), out=total)
        return total
