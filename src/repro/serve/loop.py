"""The SLO-aware async serving loop: aggregate, dispatch, demultiplex.

This is the throughput engine the paper's serving claim rests on:
GPU PIR is fast *because* many concurrent clients' DPF keys run as one
fused expansion, so a server must aggregate live traffic into
kernel-sized batches without blowing each caller's latency budget.
:class:`AsyncPirServer` wraps one :class:`~repro.pir.PirServer` in an
asyncio request loop that does exactly that:

* **Submission** — :meth:`AsyncPirServer.submit` takes one framed
  :class:`~repro.pir.wire.PirQuery` buffer, validates it end to end
  (malformed, mismatched, or oversized queries fail *synchronously*,
  before entering the queue), applies admission control, enqueues the
  validated request, and awaits a per-request future.
* **Aggregation** — a background task merges pending requests into one
  fused :class:`~repro.exec.EvalRequest` and flushes when any SLO
  trigger fires: the batch reached ``max_batch`` queries, the pending
  key material reached ``max_arena_bytes``, or the *oldest* request's
  ``max_wait_s`` deadline arrived.
* **Dispatch** — the merged batch runs on the wrapped server's backend
  or, when a :class:`~repro.serve.fleet.FleetScheduler` is attached, on
  whichever fleet backend the model predicts finishes earliest.
* **Demultiplexing** — the merged ``(B, L)`` share matrix is combined
  against the table *once* and the ``(B,)`` answer vector sliced back
  per request; each caller's future resolves to its own framed
  :class:`~repro.pir.wire.PirReply`, bit-identical to what a
  sequential ``PirServer.handle`` call would have produced.

Admission control is a bounded queue: past ``max_pending`` queued
queries the submitter gets :class:`PirServerOverloaded` immediately
(shed-with-error) instead of unbounded queueing — under overload,
shedding keeps the latency of admitted requests bounded.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.exec.request import EvalRequest
from repro.pir.server import PirServer
from repro.pir.wire import PirQuery, PirReply
from repro.serve.fleet import FleetScheduler

FLUSH_MAX_BATCH = "max_batch"
"""Flush reason: the pending queue reached ``max_batch`` queries."""

FLUSH_ARENA_BYTES = "arena_bytes"
"""Flush reason: pending key material reached ``max_arena_bytes``."""

FLUSH_DEADLINE = "deadline"
"""Flush reason: the oldest request's ``max_wait_s`` deadline arrived."""

FLUSH_DRAIN = "drain"
"""Flush reason: the loop is stopping and drained its queue."""


class PirServerOverloaded(RuntimeError):
    """The bounded queue is full; the query was shed, not served.

    Raised to the submitter *synchronously* so a client can back off or
    retry elsewhere — under overload an immediate error is kinder than
    an unbounded queue whose tail latency grows without limit.
    """


@dataclass(frozen=True)
class SloConfig:
    """The serving loop's latency/batching knobs.

    Attributes:
        max_batch: Flush once this many queries are pending; also the
            cap on queries fused into one merged batch (a flush takes
            whole requests until adding the next would exceed it).
        max_wait_s: Deadline trigger — no admitted query waits longer
            than this for its batch to *start*, however light the
            traffic.  This is the knob that trades latency (small
            values) against fused-batch size (large values).
        max_arena_bytes: Optional key-material budget — flush once the
            pending arenas reach this many bytes, and cap each merged
            batch's arena footprint (its device-upload cost) at the
            same budget (a single over-budget request still flushes,
            alone).  ``None`` disables both.
    """

    max_batch: int = 64
    max_wait_s: float = 2e-3
    max_arena_bytes: int | None = None

    def __post_init__(self):
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.max_arena_bytes is not None and self.max_arena_bytes <= 0:
            raise ValueError(
                f"max_arena_bytes must be positive or None, got {self.max_arena_bytes}"
            )


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure policy for the bounded request queue.

    Attributes:
        max_pending: Maximum queries (keys, not requests) queued at
            once; a submission that would exceed it is shed with
            :class:`PirServerOverloaded`.
    """

    max_pending: int = 1024

    def __post_init__(self):
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")


@dataclass
class ServingStats:
    """Observable counters for one serving loop's lifetime.

    Attributes:
        submitted: Queries admitted into the queue.
        answered: Queries whose reply future resolved successfully.
        shed: Queries rejected by admission control.
        batches: Merged batches dispatched.
        largest_batch: Most queries fused into one dispatched batch.
        flushes: Dispatch counts keyed by flush reason
            (:data:`FLUSH_MAX_BATCH` / :data:`FLUSH_ARENA_BYTES` /
            :data:`FLUSH_DEADLINE` / :data:`FLUSH_DRAIN`).
        routes: Dispatch counts keyed by fleet backend label (only
            populated when a fleet scheduler is attached).
    """

    submitted: int = 0
    answered: int = 0
    shed: int = 0
    batches: int = 0
    largest_batch: int = 0
    flushes: dict[str, int] = field(default_factory=dict)
    routes: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch(self) -> float:
        """Average fused-batch size — the aggregation win in one number."""
        return self.answered / self.batches if self.batches else 0.0


@dataclass
class _Pending:
    """One admitted query awaiting its batch."""

    query: PirQuery
    request: EvalRequest
    future: asyncio.Future
    enqueued_at: float


class AsyncPirServer:
    """Async batch-aggregation front end for one :class:`PirServer`.

    Args:
        server: The wrapped server (table, PRF, backend, residency).
        slo: Batching/latency knobs; see :class:`SloConfig`.
        admission: Bounded-queue policy; see :class:`AdmissionConfig`.
        fleet: Optional :class:`FleetScheduler`; when given, merged
            batches are routed across its backends by predicted cost
            instead of running on ``server.backend``.
        clock: Monotonic time source (injectable for tests).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with AsyncPirServer(server) as loop:
            reply = await loop.submit(query_bytes)
    """

    def __init__(
        self,
        server: PirServer,
        slo: SloConfig | None = None,
        admission: AdmissionConfig | None = None,
        fleet: FleetScheduler | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.server = server
        self.slo = slo if slo is not None else SloConfig()
        self.admission = admission if admission is not None else AdmissionConfig()
        self.fleet = fleet
        self.stats = ServingStats()
        self._clock = clock
        self._pending: deque[_Pending] = deque()
        self._pending_queries = 0
        self._pending_arena_bytes = 0
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the background aggregation task (idempotent)."""
        if self._task is not None:
            return
        self._stopping = False
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Drain the queue, flush the final batch, stop the task."""
        if self._task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None

    async def __aenter__(self) -> "AsyncPirServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- submission ----------------------------------------------------

    @property
    def pending_queries(self) -> int:
        """Queries currently queued (the admission-controlled quantity)."""
        return self._pending_queries

    async def submit(self, request_bytes: bytes) -> bytes:
        """Serve one framed query through the aggregation loop.

        Returns the framed reply, bit-identical to what a sequential
        ``server.handle(request_bytes)`` call would produce.

        Submitting before :meth:`start` is legal — the query queues and
        is answered by the first flush after the loop starts (tests use
        this to build deterministic backlogs).  Submitting after (or
        racing with) :meth:`stop` raises instead of enqueueing a query
        no flush would ever answer.

        Admission is checked on the frame header *before* key
        ingestion, so shedding stays O(header) under overload — the
        regime it exists for.  (A query that is both shed-worthy and
        malformed therefore sheds rather than reporting its bad keys.)

        Raises:
            ValueError: Synchronously, on a malformed/mismatched/
                oversized query (never enters the queue).
            PirServerOverloaded: Synchronously, when admission control
                sheds the query (bounded queue full).
            RuntimeError: Synchronously, when the loop is stopped.
        """
        if self._stopping:
            raise RuntimeError("serving loop is stopped; no flush would answer this")
        query = PirQuery.from_bytes(request_bytes)
        if self._pending_queries + query.count > self.admission.max_pending:
            self.stats.shed += query.count
            raise PirServerOverloaded(
                f"queue holds {self._pending_queries} queries; admitting "
                f"{query.count} more would exceed max_pending="
                f"{self.admission.max_pending}"
            )
        request = self.server.ingest_query(query)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(query, request, future, self._clock()))
        self._pending_queries += query.count
        self._pending_arena_bytes += request.arena().nbytes
        self.stats.submitted += query.count
        if self._wake is not None:
            self._wake.set()
        return await future

    # -- aggregation ---------------------------------------------------

    def _flush_reason(self) -> str | None:
        """The SLO trigger that fires *now*, or None to keep waiting."""
        if not self._pending:
            return None
        if self._pending_queries >= self.slo.max_batch:
            return FLUSH_MAX_BATCH
        if (
            self.slo.max_arena_bytes is not None
            and self._pending_arena_bytes >= self.slo.max_arena_bytes
        ):
            return FLUSH_ARENA_BYTES
        age = self._clock() - self._pending[0].enqueued_at
        if age >= self.slo.max_wait_s:
            return FLUSH_DEADLINE
        return None

    async def _run(self) -> None:
        while not self._stopping:
            reason = self._flush_reason()
            if reason is not None:
                self._flush(reason)
                continue
            self._wake.clear()
            timeout = None
            if self._pending:
                deadline = self._pending[0].enqueued_at + self.slo.max_wait_s
                timeout = max(0.0, deadline - self._clock())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        while self._pending:
            self._flush(FLUSH_DRAIN)

    def _take_batch(self) -> list[_Pending]:
        """Pop whole requests until adding the next would exceed
        ``max_batch`` queries or the ``max_arena_bytes`` budget (always
        at least one, so a single request larger than either cap —
        legal unless the server caps it — still flushes alone)."""
        taken = []
        count = 0
        taken_bytes = 0
        budget = self.slo.max_arena_bytes
        while self._pending:
            nxt = self._pending[0]
            nxt_bytes = nxt.request.arena().nbytes
            if taken and (
                count + nxt.query.count > self.slo.max_batch
                or (budget is not None and taken_bytes + nxt_bytes > budget)
            ):
                break
            taken.append(self._pending.popleft())
            count += nxt.query.count
            taken_bytes += nxt_bytes
            self._pending_arena_bytes -= nxt_bytes
        self._pending_queries -= count
        return taken

    def _flush(self, reason: str) -> None:
        taken = self._take_batch()
        try:
            merged, sizes = EvalRequest.merge([p.request for p in taken])
            if self.fleet is not None:
                result, decision = self.fleet.dispatch(merged)
                self.stats.routes[decision.backend_label] = (
                    self.stats.routes.get(decision.backend_label, 0) + 1
                )
            else:
                result = self.server.backend.run(merged)
            # One combine for the whole fused batch, then per-request
            # slicing — the demux is row offsets, nothing recomputed.
            answers = self.server.combine(result.answers)
        except Exception as exc:  # pragma: no cover - backend failure path
            for pending in taken:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, int(answers.size))
        self.stats.flushes[reason] = self.stats.flushes.get(reason, 0) + 1
        offset = 0
        for pending, size in zip(taken, sizes):
            reply = PirReply(
                request_id=pending.query.request_id,
                answers=answers[offset : offset + size],
            ).to_bytes()
            offset += size
            self.stats.answered += size
            if not pending.future.done():
                pending.future.set_result(reply)
