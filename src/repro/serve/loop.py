"""The SLO-aware async serving loop: aggregate, dispatch, demultiplex.

This is the throughput engine the paper's serving claim rests on:
GPU PIR is fast *because* many concurrent clients' DPF keys run as one
fused expansion, so a server must aggregate live traffic into
kernel-sized batches without blowing each caller's latency budget.
:class:`AsyncPirServer` wraps one :class:`~repro.pir.PirServer` in an
asyncio request loop that does exactly that:

* **Submission** — :meth:`AsyncPirServer.submit` takes one framed
  :class:`~repro.pir.wire.PirQuery` buffer, validates it end to end
  (malformed, mismatched, or oversized queries fail *synchronously*,
  before entering the queue), applies admission control and the
  submitting tenant's QoS policy, enqueues the validated request under
  its priority class, and awaits a per-request future.
* **Aggregation** — a background task merges pending requests into one
  fused :class:`~repro.exec.EvalRequest` and flushes when any SLO
  trigger fires: the batch reached ``max_batch`` queries, the pending
  key material reached ``max_arena_bytes``, or the *oldest* request's
  ``max_wait_s`` deadline arrived.  Interactive-class requests are
  taken into fused batches ahead of batch-class ones, bounded by an
  anti-starvation age (see :class:`~repro.serve.control.QosPolicy`).
* **Dispatch** — the merged batch runs on the wrapped server's backend
  or, when a :class:`~repro.serve.fleet.FleetScheduler` is attached, on
  whichever fleet backend the model predicts finishes earliest.
* **Failure containment** — a fused batch concentrates risk: one
  backend exception would fail *every* query in it.  Instead, the loop
  un-merges a failed batch (:meth:`~repro.exec.EvalRequest.unmerge`)
  and requeues its surviving requests under the
  :class:`~repro.serve.control.RetryPolicy` (bounded attempts,
  exponential backoff charged against a per-request budget); only a
  request whose retry budget is exhausted fails, individually.
* **Demultiplexing** — the merged ``(B, L)`` share matrix is combined
  against the table *once* and the ``(B,)`` answer vector sliced back
  per request; each caller's future resolves to its own framed
  :class:`~repro.pir.wire.PirReply`, bit-identical to what a
  sequential ``PirServer.handle`` call would have produced — a
  property that holds *through* injected backend faults
  (``tests/serve/test_chaos.py``).

Admission control is two-layered.  The default policy sheds by
*predicted drain time*: queue depth divided by the modeled throughput
of a flush (:class:`~repro.serve.control.DrainTimeModel`, fleet-aware
when a fleet is attached) against ``drain_budget_s`` — "will this
query make it out inside the budget", not "how long is the line".
Behind it, ``max_pending`` remains a hard depth cap.  Shed queries get
:class:`PirServerOverloaded` immediately; rate-limited tenants get
:class:`TenantRateLimited` so clients can tell "server full" from
"you specifically are over quota".
"""

from __future__ import annotations

import asyncio
import time
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.exec.request import EvalRequest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    STAGE_ADMIT,
    STAGE_DEMUX,
    STAGE_DISPATCH,
    STAGE_MERGE,
    STAGE_PLAN,
    STAGE_QUEUE,
    STATUS_ANSWERED,
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    Span,
    TraceContext,
)
from repro.pir.server import PirServer
from repro.pir.wire import PirQuery, PirReply
from repro.serve.control import (
    QOS_CLASSES,
    SHED_DEPTH,
    SHED_DRAIN,
    SHED_RATE_LIMIT,
    DrainTimeModel,
    QosPolicy,
    RetryPolicy,
)
from repro.serve.fleet import FleetScheduler

FLUSH_MAX_BATCH = "max_batch"
"""Flush reason: the pending queue reached ``max_batch`` queries."""

FLUSH_ARENA_BYTES = "arena_bytes"
"""Flush reason: pending key material reached ``max_arena_bytes``."""

FLUSH_DEADLINE = "deadline"
"""Flush reason: the oldest request's ``max_wait_s`` deadline arrived."""

FLUSH_DRAIN = "drain"
"""Flush reason: the loop is stopping and drained its queue."""


_DISPATCH_EXECUTORS: (
    "weakref.WeakKeyDictionary[asyncio.AbstractEventLoop, list]"
) = weakref.WeakKeyDictionary()
"""Per-event-loop shared dispatch executor, as ``[executor, refcount]``."""


def _acquire_dispatch_executor(
    loop: asyncio.AbstractEventLoop,
) -> ThreadPoolExecutor:
    """The event loop's single shared dispatch thread (refcounted).

    Every overlapped serving loop on one event loop dispatches through
    the *same* one-thread executor.  One thread is the point: the two
    parties of the protocol normally run in one process, and giving
    each its own dispatch thread would run their expansions
    concurrently — which is not what double-buffering means (the
    pipeline overlaps *ingest* with expansion, never expansion with
    expansion) and, on a host without spare cores, actively loses
    throughput to GIL convoying between the two kernels.  Sharing one
    thread serializes every expansion in FIFO order while each loop
    still keeps at most one dispatch in flight, so replies stay
    bit-identical to sequential serving.
    """
    entry = _DISPATCH_EXECUTORS.get(loop)
    if entry is None:
        entry = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="pir-dispatch"),
            0,
        ]
        _DISPATCH_EXECUTORS[loop] = entry
    entry[1] += 1
    return entry[0]


def _release_dispatch_executor(
    loop: asyncio.AbstractEventLoop, executor: ThreadPoolExecutor
) -> None:
    """Drop one reference; the last holder shuts the executor down."""
    entry = _DISPATCH_EXECUTORS.get(loop)
    if entry is None or entry[0] is not executor:
        # Not (or no longer) the loop's shared executor — orphaned, so
        # shutting it down affects only the caller.
        executor.shutdown(wait=True)
        return
    entry[1] -= 1
    if entry[1] <= 0:
        del _DISPATCH_EXECUTORS[loop]
        executor.shutdown(wait=True)


class PirServerOverloaded(RuntimeError):
    """The query was shed by admission control, not served.

    Raised to the submitter *synchronously* so a client can back off or
    retry elsewhere — under overload an immediate error is kinder than
    an unbounded queue whose tail latency grows without limit.

    Attributes:
        reason: Which admission layer shed
            (:data:`~repro.serve.control.SHED_DEPTH` /
            :data:`~repro.serve.control.SHED_DRAIN` /
            :data:`~repro.serve.control.SHED_RATE_LIMIT`).
    """

    def __init__(self, message: str, reason: str = SHED_DEPTH):
        super().__init__(message)
        self.reason = reason


class TenantRateLimited(PirServerOverloaded):
    """The submitting tenant's token bucket was empty.

    A subclass of :class:`PirServerOverloaded` so existing shed
    handling catches it, but distinguishable: the *server* has
    capacity — this tenant is over its own quota and should back off
    without failing over to a replica.
    """

    def __init__(self, message: str):
        super().__init__(message, reason=SHED_RATE_LIMIT)


@dataclass(frozen=True)
class SloConfig:
    """The serving loop's latency/batching knobs.

    Attributes:
        max_batch: Flush once this many queries are pending; also the
            cap on queries fused into one merged batch (a flush takes
            whole requests until adding the next would exceed it).
        max_wait_s: Deadline trigger — no admitted query waits longer
            than this for its batch to *start*, however light the
            traffic.  This is the knob that trades latency (small
            values) against fused-batch size (large values).
        max_arena_bytes: Optional key-material budget — flush once the
            pending arenas reach this many bytes, and cap each merged
            batch's arena footprint (its device-upload cost) at the
            same budget (a single over-budget request still flushes,
            alone).  ``None`` disables both.
    """

    max_batch: int = 64
    max_wait_s: float = 2e-3
    max_arena_bytes: int | None = None

    def __post_init__(self):
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.max_arena_bytes is not None and self.max_arena_bytes <= 0:
            raise ValueError(
                f"max_arena_bytes must be positive or None, got {self.max_arena_bytes}"
            )


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure policy for the bounded request queue.

    Attributes:
        max_pending: Hard cap — maximum queries (keys, not requests)
            queued or awaiting retry at once; a submission that would
            exceed it is shed with :class:`PirServerOverloaded`.
        drain_budget_s: Drain-time policy (the default shedding layer):
            shed when the *modeled* time to drain the queue including
            the new query — pending queries over the modeled throughput
            of a ``max_batch`` flush, fleet-aware — would exceed this
            budget.  ``None`` disables the drain layer, reverting to
            depth-only shedding.
    """

    max_pending: int = 1024
    drain_budget_s: float | None = 0.25

    def __post_init__(self):
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.drain_budget_s is not None and self.drain_budget_s <= 0:
            raise ValueError(
                f"drain_budget_s must be positive or None, got {self.drain_budget_s}"
            )


@dataclass
class ServingStats:
    """Observable counters for one serving loop's lifetime.

    Attributes:
        submitted: Queries admitted into the queue.
        answered: Queries whose reply future actually received its
            result (a caller that cancelled mid-queue is counted under
            ``cancelled``, never here).
        shed: Queries rejected by admission control, all layers.
        shed_reasons: Shed counts keyed by admission layer
            (:data:`~repro.serve.control.SHED_DEPTH` /
            :data:`~repro.serve.control.SHED_DRAIN` /
            :data:`~repro.serve.control.SHED_RATE_LIMIT`).
        retried: Queries requeued after a failed batch dispatch.
        failed: Queries whose future received a backend failure after
            the retry budget was exhausted.
        failures: Failed batch *dispatches* keyed by exception type
            name (one entry per failed flush, however many queries it
            carried).
        cancelled: Queries whose caller cancelled the awaited future —
            purged before merging when caught in the queue, or dropped
            at demux when the cancel raced the dispatch.
        batches: Merged batches dispatched successfully.
        largest_batch: Most queries fused into one dispatched batch.
        flushes: Successful dispatch counts keyed by flush reason
            (:data:`FLUSH_MAX_BATCH` / :data:`FLUSH_ARENA_BYTES` /
            :data:`FLUSH_DEADLINE` / :data:`FLUSH_DRAIN`).
        routes: Dispatch counts keyed by fleet backend label (only
            populated when a fleet scheduler is attached).
        plan_cache_stats: The wrapped server's live
            :class:`~repro.exec.plan_cache.PlanCacheStats` (bound at
            loop construction when the server carries a cache; ``None``
            otherwise).  ``plan_cache_hits`` / ``plan_cache_misses``
            read *through* this binding, so they are live at any
            instant — not a mirror synced after each flush.
        overlap_flushes: Flushes whose expansion overlapped with new
            submissions — at least one query was parsed/enqueued while
            the batch ran in the dispatch thread.  Nonzero proves the
            double-buffered pipeline actually pipelined.
    """

    submitted: int = 0
    answered: int = 0
    shed: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    retried: int = 0
    failed: int = 0
    failures: dict[str, int] = field(default_factory=dict)
    cancelled: int = 0
    batches: int = 0
    largest_batch: int = 0
    flushes: dict[str, int] = field(default_factory=dict)
    routes: dict[str, int] = field(default_factory=dict)
    plan_cache_stats: "PlanCacheStats | None" = field(
        default=None, repr=False, compare=False
    )
    overlap_flushes: int = 0

    @property
    def plan_cache_hits(self) -> int:
        """Live plan-cache hits (0 when no cache is attached).

        Reads the cache's own counter at access time, so the value is
        current even mid-flush — the stale-between-flushes mirror this
        replaced only updated after each dispatch.
        """
        return self.plan_cache_stats.hits if self.plan_cache_stats is not None else 0

    @property
    def plan_cache_misses(self) -> int:
        """Live plan-cache misses (0 when no cache is attached)."""
        return self.plan_cache_stats.misses if self.plan_cache_stats is not None else 0

    @property
    def mean_batch(self) -> float:
        """Average fused-batch size — the aggregation win in one number."""
        return self.answered / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters — the metrics-registry view shape."""
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "shed": self.shed,
            "shed_reasons": dict(self.shed_reasons),
            "retried": self.retried,
            "failed": self.failed,
            "failures": dict(self.failures),
            "cancelled": self.cancelled,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch": self.mean_batch,
            "flushes": dict(self.flushes),
            "routes": dict(self.routes),
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "overlap_flushes": self.overlap_flushes,
        }


@dataclass(eq=False)
class _Pending:
    """One admitted query awaiting its batch (or its retry slot).

    Identity equality (``eq=False``): pendings are tracked through
    queues and the retry pen as objects, and field equality would
    recurse into numpy-backed requests."""

    query: PirQuery
    request: EvalRequest
    future: asyncio.Future
    enqueued_at: float
    tenant: str | None = None
    qos: str = QOS_CLASSES[0]
    attempts: int = 0
    backoff_used_s: float = 0.0
    not_before: float = 0.0
    # Tracing: the query's trace context (a no-op singleton when
    # tracing is off) and its currently-open queue-wait span.
    ctx: TraceContext = field(default_factory=NULL_TRACER.trace)
    queue_span: Span | None = None


class AsyncPirServer:
    """Async batch-aggregation front end for one :class:`PirServer`.

    Args:
        server: The wrapped server (table, PRF, backend, residency).
        slo: Batching/latency knobs; see :class:`SloConfig`.
        admission: Drain-budget + bounded-queue policy; see
            :class:`AdmissionConfig`.
        fleet: Optional :class:`FleetScheduler`; when given, merged
            batches are routed across its backends by predicted cost
            instead of running on ``server.backend``, and drain-time
            admission prices against the whole fleet's throughput.
        qos: Optional :class:`~repro.serve.control.QosPolicy` — per-
            tenant token buckets and priority classes.  ``None`` treats
            all traffic as one unlimited interactive tenant.
        retry: Batch-failure :class:`~repro.serve.control.RetryPolicy`
            (default: up to 3 attempts, immediate).  Pass
            ``RetryPolicy(max_attempts=1)`` to disable retries.
        overlap: Double-buffered ingest.  When on, each fused batch's
            expansion runs on the event loop's shared dispatch thread
            (one thread per event loop, shared by every overlapped
            serving loop on it) while the event loop keeps accepting
            submissions — wire-parse of batch N+1 (`KeyArena.from_wire`
            inside ``submit``) overlaps expansion of batch N, the
            classic two-slot pipeline.  Expansions never overlap each
            other: the shared thread serializes both parties' kernels
            in FIFO order, and each loop keeps at most one dispatch in
            flight, so answers stay bit-identical to sequential
            serving; the win is fuller fused batches and hidden parse
            time.  Off by default: deterministic tests drive the loop
            with fake clocks and expect strictly sequential dispatch.
        clock: Monotonic time source (injectable for tests).
        tracer: Optional :class:`~repro.obs.trace.Tracer`.  When given,
            every submitted query gets a trace context whose spans
            (admit → queue → merge → plan → dispatch → demux) follow it
            through batch fusion, retry, shard fan-out and failover;
            finished traces land in ``tracer.finished``.  The default
            is the no-op :data:`~repro.obs.trace.NULL_TRACER` — a
            handful of empty method calls per query, nothing allocated,
            nothing attached to requests.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`.
            When given, the loop registers every subsystem it can see
            as a view — its own :class:`ServingStats`, the server's
            plan cache and shard totals (duck-typed), the hybrid
            backend's routing counts, fleet routes, QoS bucket levels —
            so one ``metrics.snapshot()`` is the whole system's state.
            Pair it with the tracer (``Tracer(metrics=registry)``) to
            get per-stage latency histograms too.
        snapshot_every_s: Optional period for recording registry
            snapshots from the aggregation task (requires ``metrics``);
            a final snapshot is recorded at drain.  ``None`` (default)
            records only on demand.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with AsyncPirServer(server) as loop:
            reply = await loop.submit(query_bytes)
    """

    def __init__(
        self,
        server: PirServer,
        slo: SloConfig | None = None,
        admission: AdmissionConfig | None = None,
        fleet: FleetScheduler | None = None,
        qos: QosPolicy | None = None,
        retry: RetryPolicy | None = None,
        overlap: bool = False,
        clock: Callable[[], float] = time.monotonic,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        snapshot_every_s: float | None = None,
    ):
        self.server = server
        self.slo = slo if slo is not None else SloConfig()
        self.admission = admission if admission is not None else AdmissionConfig()
        self.fleet = fleet
        self.qos = qos
        self.retry = retry if retry is not None else RetryPolicy()
        self.overlap = overlap
        self._executor: ThreadPoolExecutor | None = None
        cache = getattr(server, "plan_cache", None)
        self.stats = ServingStats(
            plan_cache_stats=cache.stats if cache is not None else None
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if snapshot_every_s is not None and snapshot_every_s <= 0:
            raise ValueError(
                f"snapshot_every_s must be positive or None, got {snapshot_every_s}"
            )
        if snapshot_every_s is not None and metrics is None:
            raise ValueError("snapshot_every_s requires a metrics registry")
        self.snapshot_every_s = snapshot_every_s
        self._next_snapshot_s: float | None = None
        if metrics is not None:
            self._register_views(metrics)
        self._clock = clock
        self._drain_model = DrainTimeModel(
            [fleet if fleet is not None else server.backend],
            flush_batch=self.slo.max_batch,
        )
        self._queues: dict[str, deque[_Pending]] = {
            qos_class: deque() for qos_class in QOS_CLASSES
        }
        self._retrying: list[_Pending] = []
        self._queued_queries = 0
        self._queued_arena_bytes = 0
        self._retry_queries = 0
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._stopping = False

    def _register_views(self, metrics: MetricsRegistry) -> None:
        """Absorb every reachable ad-hoc counter bundle as a view.

        Duck-typed on purpose: the loop serves plain, sharded, pooled
        and hybrid servers through one seam, so it discovers what the
        wrapped stack can report rather than knowing its type.  Names
        are uniquified so two loops (the protocol's two parties) can
        share one registry.
        """
        metrics.register_view(metrics.unique_name("serving"), self.stats.as_dict)
        cache = getattr(self.server, "plan_cache", None)
        if cache is not None:
            metrics.register_view(
                metrics.unique_name("plan_cache"), cache.stats.as_dict
            )
        totals = getattr(self.server, "stats_totals", None)
        if callable(totals):
            metrics.register_view(
                metrics.unique_name("shards"), lambda: totals().as_dict()
            )
        backend = getattr(self.server, "backend", None)
        snapshot = getattr(backend, "snapshot", None)
        if callable(snapshot) and hasattr(backend, "routing_counts"):
            metrics.register_view(metrics.unique_name("hybrid"), snapshot)
        if self.fleet is not None:
            metrics.register_view(metrics.unique_name("fleet"), self.fleet.snapshot)
        if self.qos is not None:
            metrics.register_view(metrics.unique_name("qos"), self.qos.bucket_levels)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the background aggregation task (idempotent)."""
        if self._task is not None:
            return
        self._stopping = False
        self._wake = asyncio.Event()
        if self.overlap and self._executor is None:
            self._executor = _acquire_dispatch_executor(asyncio.get_running_loop())
        if self.snapshot_every_s is not None:
            self._next_snapshot_s = self._clock() + self.snapshot_every_s
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        """Drain the queue, flush the final batch, stop the task."""
        if self._task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None
        if self._executor is not None:
            _release_dispatch_executor(asyncio.get_running_loop(), self._executor)
            self._executor = None

    async def __aenter__(self) -> "AsyncPirServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- submission ----------------------------------------------------

    @property
    def pending_queries(self) -> int:
        """Queries queued or awaiting retry (what admission bounds)."""
        return self._queued_queries + self._retry_queries

    def _shed(self, exc: PirServerOverloaded, count: int) -> None:
        self.stats.shed += count
        self.stats.shed_reasons[exc.reason] = (
            self.stats.shed_reasons.get(exc.reason, 0) + count
        )
        raise exc

    def _admit(self, query: PirQuery, tenant: str | None, now: float) -> None:
        """All admission layers, cheapest first; raises to shed.

        Consulted on the frame header only — no key material has been
        ingested yet, so shedding stays O(header) under overload (the
        regime admission control exists for).
        """
        if self.pending_queries + query.count > self.admission.max_pending:
            self._shed(
                PirServerOverloaded(
                    f"queue holds {self.pending_queries} queries; admitting "
                    f"{query.count} more would exceed max_pending="
                    f"{self.admission.max_pending}",
                    reason=SHED_DEPTH,
                ),
                query.count,
            )
        if self.qos is not None and not self.qos.admit(tenant, query.count, now):
            self._shed(
                TenantRateLimited(
                    f"tenant {tenant!r} is over its admission rate "
                    f"({self.qos.spec(tenant).rate_qps:g} qps)"
                ),
                query.count,
            )
        if self.admission.drain_budget_s is not None:
            drain = self._drain_model.drain_s(
                self.pending_queries + query.count,
                self.server.table_entries,
                self.server.prf_name,
                self.server.resident,
            )
            if drain > self.admission.drain_budget_s:
                self._shed(
                    PirServerOverloaded(
                        f"admitting {query.count} queries would put modeled "
                        f"queue drain at {drain:.4f}s, over the "
                        f"drain_budget_s={self.admission.drain_budget_s:g} "
                        f"(depth {self.pending_queries})",
                        reason=SHED_DRAIN,
                    ),
                    query.count,
                )

    async def submit(self, request_bytes: bytes, tenant: str | None = None) -> bytes:
        """Serve one framed query through the aggregation loop.

        Returns the framed reply, bit-identical to what a sequential
        ``server.handle(request_bytes)`` call would produce.

        Submitting before :meth:`start` is legal — the query queues and
        is answered by the first flush after the loop starts (tests use
        this to build deterministic backlogs).  Submitting after (or
        racing with) :meth:`stop` raises instead of enqueueing a query
        no flush would ever answer.

        Admission (depth cap, tenant bucket, drain budget) is checked
        on the frame header *before* key ingestion, so shedding stays
        O(header) under overload — the regime it exists for.  (A query
        that is both shed-worthy and malformed therefore sheds rather
        than reporting its bad keys.)

        Args:
            request_bytes: One framed :class:`~repro.pir.wire.PirQuery`.
            tenant: Submitting tenant id for QoS (rate limit + priority
                class); ``None`` is the anonymous default tenant.

        Raises:
            ValueError: Synchronously, on a malformed/mismatched/
                oversized query (never enters the queue).
            PirServerOverloaded: Synchronously, when admission control
                sheds the query (depth cap or drain budget).
            TenantRateLimited: Synchronously, when the tenant's token
                bucket is empty (the server itself has capacity).
            RuntimeError: Synchronously, when the loop is stopped.
        """
        if self._stopping:
            raise RuntimeError("serving loop is stopped; no flush would answer this")
        query = PirQuery.from_bytes(request_bytes)
        now = self._clock()
        ctx = self.tracer.trace(
            request_id=query.request_id,
            tenant=tenant,
            count=query.count,
            epoch=query.epoch,
        )
        admit_span = ctx.begin(STAGE_ADMIT)
        try:
            self._admit(query, tenant, now)
            request = self.server.ingest_query(query)
        except PirServerOverloaded as exc:
            ctx.end(admit_span, shed=exc.reason)
            ctx.event("shed", reason=exc.reason)
            ctx.close(STATUS_SHED)
            raise
        except ValueError as exc:
            ctx.end(admit_span, error=type(exc).__name__)
            ctx.close(STATUS_REJECTED)
            raise
        ctx.end(admit_span)
        if self.tracer.enabled:
            # Thread the context through the request so fusion, shard
            # fan-out and failover can annotate exactly this query.
            request.traces = (ctx,)
        qos_class = self.qos.qos_class(tenant) if self.qos is not None else QOS_CLASSES[0]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _Pending(
            query,
            request,
            future,
            now,
            tenant=tenant,
            qos=qos_class,
            ctx=ctx,
            queue_span=ctx.begin(STAGE_QUEUE),
        )
        self._queues[qos_class].append(pending)
        self._queued_queries += query.count
        self._queued_arena_bytes += request.arena().nbytes
        self.stats.submitted += query.count
        if self._wake is not None:
            self._wake.set()
        return await future

    # -- aggregation ---------------------------------------------------

    def _oldest_head(self) -> _Pending | None:
        """The oldest front-of-queue request across priority classes."""
        heads = [queue[0] for queue in self._queues.values() if queue]
        return min(heads, key=lambda p: p.enqueued_at) if heads else None

    def _flush_reason(self) -> str | None:
        """The SLO trigger that fires *now*, or None to keep waiting."""
        oldest = self._oldest_head()
        if oldest is None:
            return None
        if self._queued_queries >= self.slo.max_batch:
            return FLUSH_MAX_BATCH
        if (
            self.slo.max_arena_bytes is not None
            and self._queued_arena_bytes >= self.slo.max_arena_bytes
        ):
            return FLUSH_ARENA_BYTES
        if self._clock() - oldest.enqueued_at >= self.slo.max_wait_s:
            return FLUSH_DEADLINE
        return None

    def _wait_timeout(self) -> float | None:
        """Seconds until the next time-based event (deadline or retry
        eligibility), or None when only a wake can create work."""
        candidates = []
        oldest = self._oldest_head()
        if oldest is not None:
            candidates.append(oldest.enqueued_at + self.slo.max_wait_s)
        if self._retrying:
            candidates.append(min(p.not_before for p in self._retrying))
        if self._next_snapshot_s is not None:
            candidates.append(self._next_snapshot_s)
        if not candidates:
            return None
        return max(0.0, min(candidates) - self._clock())

    def _maybe_snapshot(self) -> None:
        """Record a periodic registry snapshot when its time arrived."""
        if self._next_snapshot_s is None:
            return
        now = self._clock()
        if now >= self._next_snapshot_s:
            self.metrics.record_snapshot()
            self._next_snapshot_s = now + self.snapshot_every_s

    async def _run(self) -> None:
        while not self._stopping:
            self._promote_retries()
            self._maybe_snapshot()
            reason = self._flush_reason()
            if reason is not None:
                await self._flush(reason)
                await self._settle()
                continue
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), self._wait_timeout())
            except asyncio.TimeoutError:
                pass
        # Drain: requeue every in-flight retry immediately (backoff is
        # pointless when the loop is going away) and flush until empty.
        # Terminates even against an always-failing backend because
        # each failed dispatch consumes a bounded retry attempt.
        while self._retrying or any(self._queues.values()):
            self._promote_retries(force=True)
            await self._flush(FLUSH_DRAIN)
            await self._settle()
        if self._next_snapshot_s is not None:
            # Terminal snapshot: the export always carries the drained
            # end state, however the period fell against the session.
            self.metrics.record_snapshot()
            self._next_snapshot_s = None

    async def _settle(self) -> None:
        """Let answered callers resume before the next dispatch.

        ``_flush`` resolves futures synchronously, but the awaiting
        callers only *run* when this task yields — and resuming a
        caller takes a short ``call_soon`` chain (future → awaiting
        task → its own awaiters).  Without this yield a train of
        back-to-back flushes would hold the event loop for its whole
        synchronous duration, silently charging every earlier batch's
        callers with every later batch's dispatch time.  Three
        microtask rounds cover the resume chain's depth; this bounds
        reply-delivery latency at one flush, independent of queue
        depth.
        """
        for _ in range(3):
            await asyncio.sleep(0)

    def _promote_retries(self, force: bool = False) -> None:
        """Move retry-eligible requests back to the *front* of their
        class queue (they keep their original ``enqueued_at``, so the
        deadline trigger treats a retried request as the old request it
        is, not as fresh traffic)."""
        if not self._retrying:
            return
        now = self._clock()
        eligible = [p for p in self._retrying if force or p.not_before <= now]
        if not eligible:
            return
        self._retrying = [p for p in self._retrying if p not in eligible]
        # appendleft in newest-first order leaves the oldest at the
        # very front — seniority survives the round trip through retry.
        for pending in sorted(eligible, key=lambda p: p.enqueued_at, reverse=True):
            self._queues[pending.qos].appendleft(pending)
            self._retry_queries -= pending.query.count
            self._queued_queries += pending.query.count
            self._queued_arena_bytes += pending.request.arena().nbytes

    def _purge_cancelled(self) -> None:
        """Drop pendings whose caller cancelled the awaited future, so
        a client-side timeout neither evaluates nor counts — the
        cancelled-future leak fix."""
        for qos_class, queue in self._queues.items():
            if any(p.future.done() for p in queue):
                kept: deque[_Pending] = deque()
                for pending in queue:
                    if pending.future.done():
                        self.stats.cancelled += pending.query.count
                        self._queued_queries -= pending.query.count
                        self._queued_arena_bytes -= pending.request.arena().nbytes
                        self._close_cancelled(pending)
                    else:
                        kept.append(pending)
                self._queues[qos_class] = kept
        cancelled_retries = [p for p in self._retrying if p.future.done()]
        for pending in cancelled_retries:
            self.stats.cancelled += pending.query.count
            self._retry_queries -= pending.query.count
            self._close_cancelled(pending)
        if cancelled_retries:
            self._retrying = [p for p in self._retrying if not p.future.done()]

    @staticmethod
    def _close_cancelled(pending: _Pending) -> None:
        """End a purged pending's open queue span and close its trace."""
        if pending.queue_span is not None:
            pending.ctx.end(pending.queue_span, cancelled=True)
            pending.queue_span = None
        pending.ctx.close(STATUS_CANCELLED)

    def _take_order(self) -> list[str]:
        """Priority order for this batch: interactive first, unless the
        oldest waiting batch-class request has starved past the QoS
        policy's ``starvation_s`` bound."""
        order = list(QOS_CLASSES)
        if self.qos is None:
            return order
        batch_queue = self._queues[QOS_CLASSES[1]]
        if batch_queue and (
            self._clock() - batch_queue[0].enqueued_at >= self.qos.starvation_s
        ):
            order.reverse()
        return order

    def _take_batch(self) -> list[_Pending]:
        """Pop whole requests until adding the next would exceed
        ``max_batch`` queries or the ``max_arena_bytes`` budget (always
        at least one, so a single request larger than either cap —
        legal unless the server caps it — still flushes alone).
        Cancelled requests are purged first, so they are never merged
        into the fused batch.

        A batch is single-epoch: queries pinned to different table
        epochs must run against different table versions, so a queue
        that spans an epoch flip splits at the flip boundary — the
        head's epoch defines the batch and a mismatched head ends that
        queue's take (the next flush picks the other epoch up)."""
        self._purge_cancelled()
        taken: list[_Pending] = []
        epoch: int | None = None
        count = 0
        taken_bytes = 0
        budget = self.slo.max_arena_bytes
        for qos_class in self._take_order():
            queue = self._queues[qos_class]
            while queue:
                nxt = queue[0]
                if epoch is not None and nxt.query.epoch != epoch:
                    break
                nxt_bytes = nxt.request.arena().nbytes
                if taken and (
                    count + nxt.query.count > self.slo.max_batch
                    or (budget is not None and taken_bytes + nxt_bytes > budget)
                ):
                    self._queued_queries -= count
                    return taken
                taken.append(queue.popleft())
                if nxt.queue_span is not None:
                    nxt.ctx.end(nxt.queue_span, qos=nxt.qos)
                    nxt.queue_span = None
                epoch = nxt.query.epoch
                count += nxt.query.count
                taken_bytes += nxt_bytes
                self._queued_arena_bytes -= nxt_bytes
        self._queued_queries -= count
        return taken

    async def _flush(self, reason: str) -> None:
        taken = self._take_batch()
        if not taken:  # everything pending had been cancelled
            return
        merged = None
        sizes: tuple[int, ...] = ()
        decision = None
        epoch = taken[0].query.epoch
        # Stage spans open in lockstep across the batch: every taken
        # query is in the same stage at the same time, so `open_spans`
        # is the set to close (with the error) if the stage throws.
        open_spans: list[tuple[_Pending, Span]] = []
        try:
            open_spans = [(p, p.ctx.begin(STAGE_MERGE)) for p in taken]
            merged, sizes = EvalRequest.merge([p.request for p in taken])
            for pending, span in open_spans:
                pending.ctx.end(
                    span, queries=int(sum(sizes)), requests=len(taken), reason=reason
                )
            # One answer_request for the whole fused batch (the server's
            # overridable serving seam — a sharded server fans out and
            # recombines inside it), then per-request slicing: the
            # demux is row offsets, nothing recomputed.  Fleet routing
            # stays on the loop thread (it reads mutable queue state);
            # only the dispatch itself may move to the overlap thread.
            open_spans = [(p, p.ctx.begin(STAGE_PLAN)) for p in taken]
            if self.fleet is not None:
                decision = self.fleet.route(merged)
                backend = self.fleet.backends[decision.backend_index]
                for pending, span in open_spans:
                    pending.ctx.end(span, backend=decision.backend_label)
            else:
                backend = None
                for pending, span in open_spans:
                    pending.ctx.end(span)

            def dispatch() -> np.ndarray:
                if backend is not None:
                    return self.server.answer_request(
                        merged, epoch=epoch, backend=backend, sizes=sizes
                    )
                return self.server.answer_request(merged, epoch=epoch, sizes=sizes)

            open_spans = [(p, p.ctx.begin(STAGE_DISPATCH)) for p in taken]
            if self.overlap and self._executor is not None:
                # Two-slot pipeline: while this batch expands on the
                # dispatch thread, the event loop keeps parsing and
                # enqueueing the next batch's queries.  Exactly one
                # dispatch is ever in flight, so answers are
                # bit-identical to the sequential path.
                submitted_before = self.stats.submitted
                answers = await asyncio.get_running_loop().run_in_executor(
                    self._executor, dispatch
                )
                if self.stats.submitted > submitted_before:
                    self.stats.overlap_flushes += 1
            else:
                answers = dispatch()
            for pending, span in open_spans:
                pending.ctx.end(span)
            open_spans = []
        except Exception as exc:
            # End the batch's in-flight stage spans with the error
            # before containment — no trace leaves an orphan behind.
            for pending, span in open_spans:
                pending.ctx.end(span, error=type(exc).__name__)
            self._requeue_or_fail(taken, merged, sizes, exc)
            return
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, int(answers.size))
        self.stats.flushes[reason] = self.stats.flushes.get(reason, 0) + 1
        if decision is not None:
            self.stats.routes[decision.backend_label] = (
                self.stats.routes.get(decision.backend_label, 0) + 1
            )
        offset = 0
        for pending, size in zip(taken, sizes):
            span = pending.ctx.begin(STAGE_DEMUX)
            reply = PirReply(
                request_id=pending.query.request_id,
                answers=answers[offset : offset + size],
                epoch=pending.query.epoch,
            ).to_bytes()
            offset += size
            if pending.future.done():
                # The caller cancelled while the batch was in flight;
                # the work is sunk cost but must not count as answered.
                self.stats.cancelled += size
                pending.ctx.end(span, cancelled=True)
                pending.ctx.close(STATUS_CANCELLED)
                continue
            pending.future.set_result(reply)
            self.stats.answered += size
            pending.ctx.end(span)
            pending.ctx.close(STATUS_ANSWERED)

    def _requeue_or_fail(
        self,
        taken: list[_Pending],
        merged: EvalRequest | None,
        sizes: tuple[int, ...],
        exc: Exception,
    ) -> None:
        """Contain a failed batch dispatch: un-merge, requeue survivors
        within their retry budget, fail the rest *individually*."""
        now = self._clock()
        reason = type(exc).__name__
        self.stats.failures[reason] = self.stats.failures.get(reason, 0) + 1
        # Each survivor retries on a zero-copy slice of the merged
        # arena when the merge got that far; a pre-merge failure just
        # requeues the original per-request requests.
        if merged is not None and len(sizes) == len(taken):
            requests = EvalRequest.unmerge(merged, sizes)
        else:
            requests = [p.request for p in taken]
        for pending, request in zip(taken, requests):
            if pending.future.done():
                self.stats.cancelled += pending.query.count
                pending.ctx.close(STATUS_CANCELLED)
                continue
            pending.attempts += 1
            if self.retry.allows_retry(pending.attempts, pending.backoff_used_s):
                backoff = self.retry.next_backoff_s(pending.attempts)
                pending.backoff_used_s += backoff
                pending.not_before = now + backoff
                pending.request = request
                pending.ctx.event(
                    "retry",
                    attempt=pending.attempts,
                    error=reason,
                    backoff_s=backoff,
                )
                # The retry pen is a queue too: a fresh queue-wait span
                # opens now and ends when the retry is re-taken, so the
                # chain repeats the queue→merge→plan→dispatch group once
                # per dispatch attempt.
                pending.queue_span = pending.ctx.begin(STAGE_QUEUE)
                self._retrying.append(pending)
                self._retry_queries += pending.query.count
                self.stats.retried += pending.query.count
            else:
                pending.future.set_exception(exc)
                pending.ctx.event("failed", error=reason)
                pending.ctx.close(STATUS_FAILED)
                self.stats.failed += pending.query.count
