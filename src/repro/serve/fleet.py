"""Model-priced routing of merged batches across a backend fleet.

A serving deployment rarely runs one device: the paper's scale-out
story is a rack of (possibly mixed) GPUs, each wrapped in its own
:class:`~repro.exec.ExecutionBackend`.  :class:`FleetScheduler` decides
*which* backend a merged batch should run on, using the same
performance model the per-device scheduler selects strategies with:
every candidate backend prices the request through
:meth:`~repro.exec.ExecutionBackend.plan` (which bottoms out in the
memoized :meth:`repro.gpu.scheduler.Scheduler.latency_s` cost hook),
and the router picks the backend with the earliest *predicted
completion* — modeled queue drain plus the batch's modeled latency.

The queue model is a virtual clock per backend: each routed batch adds
its modeled latency to its backend's accumulated busy time, so a
stream of equal batches round-robins a homogeneous fleet and loads a
mixed V100 + A100 fleet proportionally to modeled speed.  Routing is a
pure function of the request sequence — no wall clock, no randomness —
so a replayed stream routes identically (pinned by
``tests/serve/test_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exec.backend import ExecutionBackend
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan


def _backend_label(backend: ExecutionBackend, index: int) -> str:
    """A stable human-readable name: device name(s) when available."""
    device = getattr(backend, "device", None)
    if device is not None:
        return f"{index}:{device.name}"
    devices = getattr(backend, "devices", None)
    if devices:
        return f"{index}:" + "+".join(d.name for d in devices)
    return f"{index}:{backend.name}"


@dataclass(frozen=True)
class RoutingDecision:
    """Where one merged batch was sent and why.

    Attributes:
        backend_index: Position of the chosen backend in the fleet.
        backend_label: Stable display name of the chosen backend.
        plan: The chosen backend's :class:`ExecutionPlan` for the batch
            (the latency that priced the decision).
        predicted_start_s: Modeled queue-drain time on the chosen
            backend when the batch was routed (virtual clock).
        predicted_finish_s: ``predicted_start_s`` plus the plan's
            modeled latency — what the router minimized.
    """

    backend_index: int
    backend_label: str
    plan: ExecutionPlan
    predicted_start_s: float
    predicted_finish_s: float


class FleetScheduler:
    """Routes requests across heterogeneous backends by predicted cost.

    Args:
        backends: Non-empty candidate pool.  Every backend must produce
            bit-identical answers (all :mod:`repro.exec` backends do),
            so routing affects modeled performance only — never
            results.

    Attributes:
        route_counts: Batches routed to each backend so far, by index.
    """

    def __init__(self, backends: Sequence[ExecutionBackend]):
        if not backends:
            raise ValueError("need at least one backend")
        self.backends = list(backends)
        self.labels = [
            _backend_label(backend, i) for i, backend in enumerate(self.backends)
        ]
        self.route_counts = [0] * len(self.backends)
        self._busy_s = [0.0] * len(self.backends)

    def route(self, request: EvalRequest) -> RoutingDecision:
        """Pick the backend with the earliest predicted completion.

        Every backend plans the request; the winner minimizes
        ``virtual_busy + plan.latency_s``, ties broken by fleet order
        (deterministic).  The winner's virtual clock advances by the
        batch's modeled latency, which is what spreads a stream of
        batches across the fleet instead of piling onto the single
        fastest device.

        A backend whose planner raises ``ValueError`` (no feasible
        strategy for this shape — a GPU model rejecting a batch a CPU
        entry would happily serve) simply drops out of the candidate
        set for this batch; the error propagates only when *every*
        backend rejects the shape.

        Raises:
            ValueError: When no backend in the fleet can plan the
                request.
        """
        plans: list[ExecutionPlan | None] = []
        for backend in self.backends:
            try:
                plans.append(backend.plan(request))
            except ValueError:
                plans.append(None)
        candidates = [i for i, plan in enumerate(plans) if plan is not None]
        if not candidates:
            raise ValueError(
                "no backend in the fleet can plan the request "
                f"(batch={request.arena().batch}, "
                f"domain={request.arena().domain_size})"
            )
        finishes = [
            self._busy_s[i] + plans[i].latency_s if plans[i] is not None else 0.0
            for i in range(len(plans))
        ]
        winner = min(candidates, key=lambda i: (finishes[i], i))
        decision = RoutingDecision(
            backend_index=winner,
            backend_label=self.labels[winner],
            plan=plans[winner],
            predicted_start_s=self._busy_s[winner],
            predicted_finish_s=finishes[winner],
        )
        self._busy_s[winner] = finishes[winner]
        self.route_counts[winner] += 1
        return decision

    def dispatch(self, request: EvalRequest) -> tuple[EvalResult, RoutingDecision]:
        """Route the request, then run it on the chosen backend."""
        decision = self.route(request)
        return self.backends[decision.backend_index].run(request), decision

    def snapshot(self) -> dict:
        """JSON-ready routing state — the metrics-registry view shape.

        Per-label batch counts plus each member's virtual-clock busy
        time (what the router balances), keyed by the same stable
        labels ``ServingStats.routes`` uses.
        """
        return {
            "routes": dict(zip(self.labels, self.route_counts)),
            "busy_s": dict(zip(self.labels, self._busy_s)),
        }

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        """Fleet-aggregate modeled latency for one workload shape.

        The fleet serves flushes *concurrently*, so its effective
        throughput is the sum of each backend's modeled QPS; the
        returned latency is ``batch_size`` over that sum — the number
        drain-time admission divides queue depth by when a fleet is
        attached.  ``None`` when any backend lacks a model (the caller
        must then skip model-based policies).  A member whose model
        raises ``ValueError`` is genuinely infeasible for the shape and
        contributes zero QPS instead of poisoning the aggregate — a
        fleet with a CPU entry therefore prices every shape.

        Raises:
            ValueError: When every member's model rejects the shape.
        """
        total_qps = 0.0
        priced_any = False
        for backend in self.backends:
            try:
                latency = backend.model_latency_s(
                    batch_size,
                    table_entries,
                    prf_name=prf_name,
                    resident=resident,
                    entry_bytes=entry_bytes,
                )
            except ValueError:
                continue
            if latency is None or latency <= 0:
                return None
            total_qps += batch_size / latency
            priced_any = True
        if not priced_any:
            raise ValueError(
                "no backend in the fleet can price the shape "
                f"(batch={batch_size}, domain={table_entries}, "
                f"prf={prf_name!r})"
            )
        return batch_size / total_qps
