"""Deterministic fault injection for the serving control plane.

A fused batch concentrates failure: if the backend dies mid-dispatch,
every query in the batch is at risk, so the retry/requeue path is the
part of the serving loop most worth torturing.  :class:`FlakyBackend`
wraps any :class:`~repro.exec.ExecutionBackend` and fails chosen
``run`` calls with :class:`BackendFault` according to a
:class:`FaultPlan` — *deterministically*, so a chaos test that found a
bug replays it exactly:

* :meth:`FaultPlan.nth` — fail specific run invocations (``nth(1)`` is
  fail-once-then-recover, the mid-session backend-kill scenario).
* :meth:`FaultPlan.always` — a dead backend; every dispatch fails.
* :meth:`FaultPlan.after` — healthy until run N, dead from then on:
  the replica-kill scenario (the failure persists until the replica is
  ejected, unlike ``nth``'s transient blip).
* :meth:`FaultPlan.random` — seeded Bernoulli faults for property
  tests that want coverage without choreography.  One plan may be
  shared across several :class:`FlakyBackend` wrappers: each wrapper
  draws from its *own* spawned RNG stream (handed out in wrap order),
  so whether backend A's 3rd run faults never depends on how its calls
  interleave with backend B's — multi-replica chaos replays exactly.

``plan`` and the cost hooks always delegate — the *model* of the
hardware is intact, only the execution is flaky, which mirrors a real
transient fault (and keeps fleet routing and drain-time admission
working mid-outage).  Used by ``tests/serve/test_chaos.py``,
``scripts/serve_smoke.py --chaos``, and the ``serving`` bench family's
chaos scenario.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exec.backend import ExecutionBackend
from repro.exec.request import EvalRequest, EvalResult, ExecutionPlan


class BackendFault(RuntimeError):
    """An injected backend failure (the chaos stand-in for a dead GPU)."""


class FaultPlan:
    """Decides, per ``run`` invocation, whether to inject a fault.

    Construct through the factories (:meth:`nth` / :meth:`always` /
    :meth:`random`); the plan is consulted with the 1-indexed run
    number and answers the same way on every replay.
    """

    def __init__(
        self,
        fail_runs: frozenset[int] = frozenset(),
        always: bool = False,
        dead_from: int | None = None,
        rate: float = 0.0,
        seed: int = 0,
    ):
        self.fail_runs = fail_runs
        self.always = always
        self.dead_from = dead_from
        self.rate = rate
        self.seed = seed
        # Root for per-wrapper streams: each FlakyBackend sharing this
        # plan spawns one child (in wrap order), so its Bernoulli draws
        # are a pure function of (plan seed, wrap index, its own run
        # count) — never of cross-backend call interleaving.
        self._seed_seq = np.random.SeedSequence(seed)
        self._rng = self.stream()

    @classmethod
    def nth(cls, *runs: int) -> "FaultPlan":
        """Fail exactly the given 1-indexed ``run`` invocations.

        ``FaultPlan.nth(1)`` is fail-once-then-recover: the first
        dispatched batch dies, every retry lands on a healthy backend.
        """
        if not runs or any(n < 1 for n in runs):
            raise ValueError(f"run numbers must be >= 1, got {runs}")
        return cls(fail_runs=frozenset(runs))

    @classmethod
    def always(cls) -> "FaultPlan":
        """Fail every run — a permanently dead backend."""
        return cls(always=True)

    @classmethod
    def after(cls, run: int) -> "FaultPlan":
        """Healthy for runs ``1..run-1``, dead from run ``run`` onward.

        The replica-kill scenario: unlike :meth:`nth`'s transient blip,
        the failure persists, so retries against the same replica keep
        failing and the replica set must eject and fail over.
        """
        if run < 1:
            raise ValueError(f"run must be >= 1, got {run}")
        return cls(dead_from=run)

    @classmethod
    def random(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Fail each run independently with probability ``rate``,
        drawn from a seeded generator (deterministic per seed)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(rate=rate, seed=seed)

    def stream(self) -> np.random.Generator:
        """A fresh independent RNG stream off this plan's seed.

        Streams are handed out in call order (`SeedSequence.spawn`), so
        the i-th wrapper constructed over this plan always receives the
        i-th stream — deterministic across runs, independent across
        wrappers.
        """
        return np.random.default_rng(self._seed_seq.spawn(1)[0])

    def should_fail(
        self, run_number: int, rng: np.random.Generator | None = None
    ) -> bool:
        """Whether the ``run_number``-th (1-indexed) run must fail.

        Args:
            run_number: The caller's own 1-indexed run counter.
            rng: The caller's private stream (see :meth:`stream`).
                ``None`` falls back to the plan's built-in stream —
                fine for a plan consulted by exactly one backend, wrong
                for a shared plan (draws would interleave).
        """
        if self.always or run_number in self.fail_runs:
            return True
        if self.dead_from is not None and run_number >= self.dead_from:
            return True
        if self.rate > 0.0:
            rng = rng if rng is not None else self._rng
            return bool(rng.random() < self.rate)
        return False


class FlakyBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` whose ``run`` fails on plan.

    Args:
        inner: The healthy backend every non-faulted call delegates to.
        plan: When to inject (see :class:`FaultPlan`).

    Attributes:
        runs: ``run`` invocations so far (faulted ones included).
        faults: Faults injected so far.
    """

    name = "flaky"

    def __init__(self, inner: ExecutionBackend, plan: FaultPlan):
        self.inner = inner
        self.fault_plan = plan
        self.runs = 0
        self.faults = 0
        self._rng = plan.stream()

    @property
    def device(self):
        """Delegate device identity so fleet route labels still name
        the real hardware, not the chaos wrapper."""
        return getattr(self.inner, "device", None)

    @property
    def devices(self):
        return getattr(self.inner, "devices", None)

    def plan(self, request: EvalRequest) -> ExecutionPlan:
        """Pricing never faults: the model is intact, the device flaky."""
        return self.inner.plan(request)

    def model_latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident: bool = False,
        entry_bytes: int = 8,
    ) -> float | None:
        return self.inner.model_latency_s(
            batch_size,
            table_entries,
            prf_name=prf_name,
            resident=resident,
            entry_bytes=entry_bytes,
        )

    def _dispatch(self) -> None:
        """Count one dispatch; raise if the plan says this one dies."""
        self.runs += 1
        if self.fault_plan.should_fail(self.runs, self._rng):
            self.faults += 1
            raise BackendFault(
                f"injected fault on {self.inner.name} run #{self.runs}"
            )

    def run(self, request: EvalRequest) -> EvalResult:
        self._dispatch()
        return self.inner.run(request)

    def __getattr__(self, name: str):
        """Mirror the inner backend's worker-pool seams.

        ``__getattr__`` only fires when normal lookup misses, so
        ``hasattr(flaky, "run_combined")`` is true exactly when the
        *inner* backend supports it — a wrapper around a plain backend
        never falsely advertises the combined fast path.  Table
        installs delegate untouched (the control plane is not flaky);
        ``run_combined`` is a dispatch like ``run``, so it shares the
        same run counter and fault plan — a killed replica is killed on
        whichever path the replica set routes through.
        """
        if name == "run_combined":
            inner_combined = getattr(self.inner, "run_combined")

            def run_combined(request: EvalRequest, epoch: int):
                self._dispatch()
                return inner_combined(request, epoch)

            return run_combined
        if name in ("install_table", "drop_table"):
            return getattr(self.inner, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


def flaky_fleet(
    backends: Sequence[ExecutionBackend], plans: Sequence[FaultPlan | None]
) -> list[ExecutionBackend]:
    """Wrap a fleet's backends in :class:`FlakyBackend` per plan.

    ``plans[i] is None`` leaves ``backends[i]`` healthy — the common
    chaos shape is one flaky device in an otherwise healthy fleet.
    """
    if len(backends) != len(plans):
        raise ValueError(
            f"need one plan per backend, got {len(plans)} plans "
            f"for {len(backends)} backends"
        )
    return [
        backend if plan is None else FlakyBackend(backend, plan)
        for backend, plan in zip(backends, plans)
    ]
