"""SLO-aware async serving: batching, admission, QoS, fault tolerance.

This package is the serving layer the ROADMAP's throughput and
control-plane items asked for — the piece that turns the synchronous,
one-caller-at-a-time :class:`~repro.pir.PirServer` into a system that
can absorb heavy concurrent traffic and survive backend failures:

* :mod:`repro.serve.loop` — :class:`AsyncPirServer`, the asyncio
  request loop: framed queries in, per-request futures out, with batch
  aggregation under a latency SLO (flush on max-batch, arena-bytes
  budget, or max-wait deadline), two-layer admission control (modeled
  drain time as the default policy, ``max_pending`` as the hard cap),
  and retry/requeue on backend failure (a failed fused batch is
  un-merged and its survivors retried individually).
* :mod:`repro.serve.control` — the control-plane policies the loop
  consults: :class:`RetryPolicy` (bounded retries, backoff budgets),
  :class:`QosPolicy` / :class:`TenantSpec` (per-tenant token buckets,
  :data:`INTERACTIVE`-over-:data:`BATCH` priority with anti-starvation),
  and :class:`DrainTimeModel` (queue drain priced via the performance
  model, fleet-aware).
* :mod:`repro.serve.chaos` — deterministic fault injection:
  :class:`FlakyBackend` + :class:`FaultPlan` fail chosen dispatches
  with :class:`BackendFault` so tests, the smoke session, and the
  chaos bench scenario can kill a backend mid-batch on demand.
* :mod:`repro.serve.fleet` — :class:`FleetScheduler`, routing merged
  batches across heterogeneous backends (e.g. a mixed V100 + A100
  fleet) by predicted completion time from each backend's
  :class:`~repro.exec.ExecutionPlan`.
* :mod:`repro.serve.load` — :func:`generate_load`, the concurrent
  client population that drives the loop in benches, tests, and the CI
  serve-smoke session, with per-tenant latency and retry accounting.
* :mod:`repro.serve.shard` — :class:`ShardedPirServer`, the sharded,
  replicated front-end: contiguous domain sub-ranges evaluated via the
  range-restricted DPF walk, partials recombined mod 2^64, replica
  health with ejection/failover/probation (:class:`ReplicaSet`), and
  epoch-versioned online table updates (:class:`EpochRegistry`) with
  typed :class:`ShardUnavailable` / :class:`EpochRetired` failures.

The invariant everything above preserves: answers served through the
aggregation loop are *bit-identical* to sequential
``PirServer.handle`` for the same queries, across every backend, every
concurrency level, and every injected fault short of retry-budget
exhaustion (``tests/serve/``).
"""

from repro.serve.chaos import BackendFault, FaultPlan, FlakyBackend, flaky_fleet
from repro.serve.control import (
    BATCH,
    INTERACTIVE,
    QOS_CLASSES,
    SHED_DEPTH,
    SHED_DRAIN,
    SHED_RATE_LIMIT,
    DrainTimeModel,
    QosPolicy,
    RetryPolicy,
    TenantSpec,
    TokenBucket,
)
from repro.serve.fleet import FleetScheduler, RoutingDecision
from repro.serve.load import LoadReport, generate_load
from repro.serve.shard import (
    EJECTED,
    HEALTHY,
    PROBATION,
    REPLICA_STATES,
    EpochRegistry,
    EpochRetired,
    ReplicaSet,
    ShardReplica,
    ShardStats,
    ShardUnavailable,
    ShardedPirServer,
    shard_ranges,
)
from repro.serve.loop import (
    FLUSH_ARENA_BYTES,
    FLUSH_DEADLINE,
    FLUSH_DRAIN,
    FLUSH_MAX_BATCH,
    AdmissionConfig,
    AsyncPirServer,
    PirServerOverloaded,
    ServingStats,
    SloConfig,
    TenantRateLimited,
)

__all__ = [
    "AsyncPirServer",
    "SloConfig",
    "AdmissionConfig",
    "ServingStats",
    "PirServerOverloaded",
    "TenantRateLimited",
    "RetryPolicy",
    "QosPolicy",
    "TenantSpec",
    "TokenBucket",
    "DrainTimeModel",
    "INTERACTIVE",
    "BATCH",
    "QOS_CLASSES",
    "SHED_DEPTH",
    "SHED_DRAIN",
    "SHED_RATE_LIMIT",
    "BackendFault",
    "FaultPlan",
    "FlakyBackend",
    "flaky_fleet",
    "FleetScheduler",
    "RoutingDecision",
    "LoadReport",
    "generate_load",
    "FLUSH_MAX_BATCH",
    "FLUSH_ARENA_BYTES",
    "FLUSH_DEADLINE",
    "FLUSH_DRAIN",
    "ShardedPirServer",
    "ReplicaSet",
    "ShardReplica",
    "ShardStats",
    "EpochRegistry",
    "EpochRetired",
    "ShardUnavailable",
    "shard_ranges",
    "HEALTHY",
    "PROBATION",
    "EJECTED",
    "REPLICA_STATES",
]
