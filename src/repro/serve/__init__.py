"""SLO-aware async serving: batching, admission control, fleet routing.

This package is the serving layer the ROADMAP's throughput item asked
for — the piece that turns the synchronous, one-caller-at-a-time
:class:`~repro.pir.PirServer` into a system that can absorb heavy
concurrent traffic:

* :mod:`repro.serve.loop` — :class:`AsyncPirServer`, the asyncio
  request loop: framed queries in, per-request futures out, with batch
  aggregation under a latency SLO (flush on max-batch, arena-bytes
  budget, or max-wait deadline) and bounded-queue admission control
  (shed with :class:`PirServerOverloaded` past ``max_pending``).
* :mod:`repro.serve.fleet` — :class:`FleetScheduler`, routing merged
  batches across heterogeneous backends (e.g. a mixed V100 + A100
  fleet) by predicted completion time from each backend's
  :class:`~repro.exec.ExecutionPlan`.
* :mod:`repro.serve.load` — :func:`generate_load`, the concurrent
  client population that drives the loop in benches, tests, and the CI
  serve-smoke session.

The invariant everything above preserves: answers served through the
aggregation loop are *bit-identical* to sequential
``PirServer.handle`` for the same queries, across every backend and
concurrency level (``tests/serve/``).
"""

from repro.serve.fleet import FleetScheduler, RoutingDecision
from repro.serve.load import LoadReport, generate_load
from repro.serve.loop import (
    FLUSH_ARENA_BYTES,
    FLUSH_DEADLINE,
    FLUSH_DRAIN,
    FLUSH_MAX_BATCH,
    AdmissionConfig,
    AsyncPirServer,
    PirServerOverloaded,
    ServingStats,
    SloConfig,
)

__all__ = [
    "AsyncPirServer",
    "SloConfig",
    "AdmissionConfig",
    "ServingStats",
    "PirServerOverloaded",
    "FleetScheduler",
    "RoutingDecision",
    "LoadReport",
    "generate_load",
    "FLUSH_MAX_BATCH",
    "FLUSH_ARENA_BYTES",
    "FLUSH_DEADLINE",
    "FLUSH_DRAIN",
]
