"""Streaming load generation against a pair of async PIR servers.

The serving loop is only interesting under *concurrent* traffic, so
this module models a population of independent clients:
:func:`generate_load` takes the index stream, splits it into
per-client requests (:meth:`~repro.pir.PirClient.query_many`), fires
them at both servers' :meth:`~repro.serve.loop.AsyncPirServer.submit`
concurrently — optionally paced to an offered QPS — and reconstructs
every answer, recording per-request latency.  The resulting
:class:`LoadReport` is what the ``serving`` bench family and the CI
serve-smoke session read their QPS / p50 / p99 numbers from.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.pir.client import PirClient, QueryBatch
from repro.serve.loop import AsyncPirServer, PirServerOverloaded


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one generated load session.

    Attributes:
        indices: The queried indices, in request order, for the
            requests that were *answered* (shed requests drop out).
        answers: ``(len(indices),)`` uint64 reconstructed table values,
            aligned with ``indices``.
        latencies_s: Per-request wall latency, aligned with the
            answered requests — measured from the request's *intended*
            release time to both replies reconstructed, so late
            releases under load count as latency rather than being
            coordinated-omission blind spots.
        shed: Queries rejected by admission control.
        wall_s: Wall time of the whole session.
        offered_qps: The pacing target (0 = unpaced burst).
    """

    indices: tuple[int, ...]
    answers: np.ndarray
    latencies_s: tuple[float, ...]
    shed: int
    wall_s: float
    offered_qps: float

    @property
    def answered(self) -> int:
        """Answered *queries* — same unit as ``shed``, so
        ``answered + shed`` equals the queries offered."""
        return len(self.indices)

    @property
    def answered_requests(self) -> int:
        """Answered requests (one latency sample each)."""
        return len(self.latencies_s)

    @property
    def achieved_qps(self) -> float:
        """Answered queries per second of session wall time."""
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile_ms(self, pct: float) -> float:
        """Latency percentile in milliseconds (0 if nothing answered)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.latencies_s), pct) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile_ms(99)


async def generate_load(
    client: PirClient,
    servers: Sequence[AsyncPirServer],
    indices: Sequence[int],
    queries_per_request: int = 1,
    offered_qps: float = 0.0,
) -> LoadReport:
    """Fire a stream of concurrent client requests and collect answers.

    Args:
        client: Query generator / reconstructor shared by the simulated
            client population (request ids stay distinct per request).
        servers: The two non-colluding parties' serving loops (must
            already be started).
        indices: Secret indices to retrieve, split into requests of
            ``queries_per_request`` in order.
        queries_per_request: Batch size each simulated client sends.
        offered_qps: Pacing target in *queries* per second; request
            ``i`` is released at ``i * queries_per_request /
            offered_qps``.  0 releases everything at once (a burst —
            maximum aggregation pressure).

    Returns:
        A :class:`LoadReport`; requests shed by admission control are
        counted, not retried.

    Raises:
        ValueError: If ``servers`` is not exactly the two parties.
    """
    if len(servers) != 2:
        raise ValueError(f"two-server PIR needs exactly 2 servers, got {len(servers)}")
    batches = client.query_many(indices, queries_per_request=queries_per_request)
    start = time.perf_counter()

    async def one(
        batch: QueryBatch, release_at: float
    ) -> tuple[QueryBatch, np.ndarray, float] | None:
        # Both parties are awaited to completion even when one sheds, so
        # no orphaned submission lingers in the other queue; the
        # surviving party's reply (work it cannot retract) is discarded.
        replies = await asyncio.gather(
            servers[0].submit(batch.requests[0]),
            servers[1].submit(batch.requests[1]),
            return_exceptions=True,
        )
        failures = [r for r in replies if isinstance(r, BaseException)]
        if failures:
            for failure in failures:
                if not isinstance(failure, PirServerOverloaded):
                    raise failure
            return None
        values = client.reconstruct(batch, replies[0], replies[1])
        # Latency is measured from the *intended* release time, not
        # from when this task got scheduled — a saturated event loop
        # that releases clients late must show up as latency, not be
        # silently absorbed (the coordinated-omission trap).
        return batch, values, time.perf_counter() - release_at

    tasks = []
    released = 0
    for batch in batches:
        if offered_qps > 0:
            release_at = start + released / offered_qps
            delay = release_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        else:
            release_at = time.perf_counter()
        released += batch.batch_size
        tasks.append(asyncio.create_task(one(batch, release_at)))
    outcomes = await asyncio.gather(*tasks)
    wall = time.perf_counter() - start

    answered_indices: list[int] = []
    answer_chunks: list[np.ndarray] = []
    latencies: list[float] = []
    shed = 0
    for batch, outcome in zip(batches, outcomes):
        if outcome is None:
            shed += batch.batch_size
            continue
        done_batch, values, latency = outcome
        answered_indices.extend(done_batch.indices)
        answer_chunks.append(values)
        latencies.append(latency)
    answers = (
        np.concatenate(answer_chunks)
        if answer_chunks
        else np.zeros(0, dtype=np.uint64)
    )
    return LoadReport(
        indices=tuple(answered_indices),
        answers=answers,
        latencies_s=tuple(latencies),
        shed=shed,
        wall_s=wall,
        offered_qps=offered_qps,
    )
