"""Streaming load generation against a pair of async PIR servers.

The serving loop is only interesting under *concurrent* traffic, so
this module models a population of independent clients:
:func:`generate_load` takes the index stream, splits it into
per-client requests (:meth:`~repro.pir.PirClient.query_many`), fires
them at both servers' :meth:`~repro.serve.loop.AsyncPirServer.submit`
concurrently — optionally paced to an offered QPS, optionally tagged
with per-request tenant ids so QoS policies engage — and reconstructs
every answer, recording per-request latency.  The resulting
:class:`LoadReport` is what the ``serving`` bench family and the CI
serve-smoke session read their QPS / p50 / p99 numbers from; it also
carries the servers' retry/failure deltas so a chaos scenario's
recovery cost is measurable, and per-tenant latency slices so
interactive-vs-batch QoS separation shows up as numbers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.pir.client import PirClient, QueryBatch
from repro.serve.loop import AsyncPirServer, PirServerOverloaded


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one generated load session.

    Attributes:
        indices: The queried indices, in request order, for the
            requests that were *answered* (shed requests drop out).
        answers: ``(len(indices),)`` uint64 reconstructed table values,
            aligned with ``indices``.
        latencies_s: Per-request wall latency, aligned with the
            answered requests — measured from the request's *intended*
            release time to both replies reconstructed, so late
            releases under load count as latency rather than being
            coordinated-omission blind spots.
        request_tenants: Tenant id per *answered* request, aligned with
            ``latencies_s`` (``None`` entries for untagged traffic).
        shed: Queries rejected by admission control.
        retried: Queries the serving loops requeued after failed batch
            dispatches during this session (summed over both parties —
            the chaos scenario's recovery-overhead number).
        failed: Queries that exhausted their retry budget during this
            session (summed over both parties).
        wall_s: Wall time of the whole session.
        offered_qps: The pacing target (0 = unpaced burst).
    """

    indices: tuple[int, ...]
    answers: np.ndarray
    latencies_s: tuple[float, ...]
    request_tenants: tuple[str | None, ...]
    shed: int
    retried: int
    failed: int
    wall_s: float
    offered_qps: float

    @property
    def answered(self) -> int:
        """Answered *queries* — same unit as ``shed``, so
        ``answered + shed`` equals the queries offered (when no request
        failed outright)."""
        return len(self.indices)

    @property
    def answered_requests(self) -> int:
        """Answered requests (one latency sample each)."""
        return len(self.latencies_s)

    @property
    def achieved_qps(self) -> float:
        """Answered queries per second of session wall time."""
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile_ms(
        self, pct: float, tenant: str | None = ...
    ) -> float:
        """Latency percentile in milliseconds (0 if nothing answered).

        Args:
            pct: Percentile in [0, 100].
            tenant: When given (including ``None`` for untagged
                requests), restrict to that tenant's requests — the
                per-class QoS comparison hook.  The default Ellipsis
                sentinel means "all requests".
        """
        if tenant is ...:
            samples = self.latencies_s
        else:
            samples = tuple(
                latency
                for latency, req_tenant in zip(
                    self.latencies_s, self.request_tenants
                )
                if req_tenant == tenant
            )
        if not samples:
            return 0.0
        return float(np.percentile(np.array(samples), pct) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile_ms(99)


async def generate_load(
    client: PirClient,
    servers: Sequence[AsyncPirServer],
    indices: Sequence[int],
    queries_per_request: int = 1,
    offered_qps: float = 0.0,
    tenants: Sequence[str | None] | None = None,
) -> LoadReport:
    """Fire a stream of concurrent client requests and collect answers.

    Args:
        client: Query generator / reconstructor shared by the simulated
            client population (request ids stay distinct per request).
        servers: The two non-colluding parties' serving loops (must
            already be started).
        indices: Secret indices to retrieve, split into requests of
            ``queries_per_request`` in order.
        queries_per_request: Batch size each simulated client sends.
        offered_qps: Pacing target in *queries* per second; request
            ``i`` is released at ``i * queries_per_request /
            offered_qps``.  0 releases everything at once (a burst —
            maximum aggregation pressure).
        tenants: Optional tenant id per *request* (one entry per group
            of ``queries_per_request`` indices), passed to both
            servers' ``submit`` so their QoS policies engage.  ``None``
            leaves every request untagged.

    Returns:
        A :class:`LoadReport`; requests shed by admission control are
        counted, not retried client-side (server-side retries are the
        loops' business and surface in ``retried``).

    Raises:
        ValueError: If ``servers`` is not exactly the two parties, or
            ``tenants`` does not align with the generated requests.
    """
    if len(servers) != 2:
        raise ValueError(f"two-server PIR needs exactly 2 servers, got {len(servers)}")
    batches = client.query_many(indices, queries_per_request=queries_per_request)
    if tenants is None:
        tenants = [None] * len(batches)
    elif len(tenants) != len(batches):
        raise ValueError(
            f"got {len(tenants)} tenant tags for {len(batches)} requests; "
            "pass one tenant per queries_per_request group"
        )
    retried_before = sum(server.stats.retried for server in servers)
    failed_before = sum(server.stats.failed for server in servers)
    start = time.perf_counter()

    async def one(
        batch: QueryBatch, tenant: str | None, release_at: float
    ) -> tuple[QueryBatch, np.ndarray, float] | None:
        # Both parties are awaited to completion even when one sheds, so
        # no orphaned submission lingers in the other queue; the
        # surviving party's reply (work it cannot retract) is discarded.
        replies = await asyncio.gather(
            servers[0].submit(batch.requests[0], tenant=tenant),
            servers[1].submit(batch.requests[1], tenant=tenant),
            return_exceptions=True,
        )
        failures = [r for r in replies if isinstance(r, BaseException)]
        if failures:
            for failure in failures:
                if not isinstance(failure, PirServerOverloaded):
                    raise failure
            return None
        values = client.reconstruct(batch, replies[0], replies[1])
        # Latency is measured from the *intended* release time, not
        # from when this task got scheduled — a saturated event loop
        # that releases clients late must show up as latency, not be
        # silently absorbed (the coordinated-omission trap).
        return batch, values, time.perf_counter() - release_at

    tasks = []
    released = 0
    for batch, tenant in zip(batches, tenants):
        if offered_qps > 0:
            release_at = start + released / offered_qps
            delay = release_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        else:
            release_at = time.perf_counter()
        released += batch.batch_size
        tasks.append(asyncio.create_task(one(batch, tenant, release_at)))
    outcomes = await asyncio.gather(*tasks)
    wall = time.perf_counter() - start

    answered_indices: list[int] = []
    answer_chunks: list[np.ndarray] = []
    latencies: list[float] = []
    answered_tenants: list[str | None] = []
    shed = 0
    for batch, tenant, outcome in zip(batches, tenants, outcomes):
        if outcome is None:
            shed += batch.batch_size
            continue
        done_batch, values, latency = outcome
        answered_indices.extend(done_batch.indices)
        answer_chunks.append(values)
        latencies.append(latency)
        answered_tenants.append(tenant)
    answers = (
        np.concatenate(answer_chunks)
        if answer_chunks
        else np.zeros(0, dtype=np.uint64)
    )
    return LoadReport(
        indices=tuple(answered_indices),
        answers=answers,
        latencies_s=tuple(latencies),
        request_tenants=tuple(answered_tenants),
        shed=shed,
        retried=sum(server.stats.retried for server in servers) - retried_before,
        failed=sum(server.stats.failed for server in servers) - failed_before,
        wall_s=wall,
        offered_qps=offered_qps,
    )
