"""Control-plane policies for the serving loop: QoS, retries, drain.

PR 5's :class:`~repro.serve.loop.AsyncPirServer` shipped with the
bluntest possible policies — shed on raw queue depth, no retries, one
implicit traffic class.  This module holds the *policy* objects the
reworked loop consults, kept separate from the loop mechanics so each
is independently testable and composable:

* :class:`RetryPolicy` — bounded retry/requeue for batch-dispatch
  failures.  A fused batch concentrates risk: one backend exception
  would fail every query in it, so the loop un-merges a failed batch
  and requeues the survivors under this policy (exponential backoff,
  each request's accumulated backoff charged against a budget; an
  exhausted request fails *individually*, never collectively).
* :class:`TenantSpec` / :class:`QosPolicy` — per-tenant token-bucket
  rate limiting plus a priority class (:data:`INTERACTIVE` ahead of
  :data:`BATCH` in the take order) with an anti-starvation age bound so
  batch traffic is delayed, never starved.
* :class:`DrainTimeModel` — predicted time to drain the pending queue,
  priced through the same performance model everything else uses
  (:meth:`~repro.exec.ExecutionBackend.model_latency_s`, which bottoms
  out in :meth:`repro.gpu.scheduler.Scheduler.latency_s`; fleet-aware
  when a :class:`~repro.serve.fleet.FleetScheduler` is attached).  The
  loop sheds when the modeled drain time exceeds a budget — "will this
  query make it inside the SLO", not "how long is the line" — which is
  the default admission policy; raw ``max_pending`` depth remains the
  hard cap behind it.

All policies are deterministic: buckets refill from the loop's
injected clock and the drain model is a pure function of queue state
and the analytic cost model, so tests pin exact shed decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

INTERACTIVE = "interactive"
"""QoS class served first: user-facing, latency-sensitive traffic."""

BATCH = "batch"
"""QoS class served after :data:`INTERACTIVE`: throughput traffic that
tolerates delay but must never starve (see ``QosPolicy.starvation_s``)."""

QOS_CLASSES = (INTERACTIVE, BATCH)
"""Priority order: earlier classes are taken into fused batches first."""

SHED_DEPTH = "depth"
"""Shed reason: the ``max_pending`` hard cap (queue depth) was hit."""

SHED_DRAIN = "drain"
"""Shed reason: modeled queue drain time exceeded the drain budget."""

SHED_RATE_LIMIT = "rate_limit"
"""Shed reason: the submitting tenant's token bucket was empty."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry/requeue for failed batch dispatches.

    Attributes:
        max_attempts: Total dispatch attempts per request, including
            the first (1 = never retry; the default allows two
            retries).
        backoff_s: Base delay before a request's first retry; attempt
            ``k``'s delay is ``backoff_s * 2**(k-1)`` (exponential).
            0 retries immediately — right for the modeled backends,
            where a fault is a property of the *run*, not the wall
            clock.
        backoff_budget_s: Cap on one request's *accumulated* backoff —
            the retry time charged against its SLO.  A retry whose
            delay would blow the budget fails the request instead.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_budget_s: float = math.inf

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_budget_s < 0:
            raise ValueError(
                f"backoff_budget_s must be >= 0, got {self.backoff_budget_s}"
            )

    def next_backoff_s(self, attempts: int) -> float:
        """Delay before the retry following the ``attempts``-th failed
        dispatch (1-indexed): ``backoff_s * 2**(attempts-1)``."""
        return self.backoff_s * (2 ** (attempts - 1))

    def allows_retry(self, attempts: int, backoff_used_s: float) -> bool:
        """Whether a request that has failed ``attempts`` dispatches and
        accumulated ``backoff_used_s`` of backoff may be requeued."""
        if attempts >= self.max_attempts:
            return False
        return backoff_used_s + self.next_backoff_s(attempts) <= self.backoff_budget_s


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's rate limit and priority class.

    Attributes:
        rate_qps: Sustained admission rate in queries/s; ``None`` means
            unlimited (no bucket is consulted).
        burst: Bucket capacity in queries — the largest spike admitted
            after a full refill.  Defaults to ``rate_qps`` (one
            second's worth) when left at 0.
        qos: Priority class (:data:`INTERACTIVE` or :data:`BATCH`).
    """

    rate_qps: float | None = None
    burst: float = 0.0
    qos: str = INTERACTIVE

    def __post_init__(self):
        if self.rate_qps is not None and self.rate_qps <= 0:
            raise ValueError(
                f"rate_qps must be positive or None, got {self.rate_qps}"
            )
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")
        if self.qos not in QOS_CLASSES:
            raise ValueError(f"qos must be one of {QOS_CLASSES}, got {self.qos!r}")

    @property
    def capacity(self) -> float:
        """Effective bucket capacity: ``burst`` or one second of rate."""
        if self.burst > 0:
            return self.burst
        return self.rate_qps if self.rate_qps is not None else math.inf


class TokenBucket:
    """A deterministic token bucket refilled from an injected clock.

    Tokens accrue continuously at ``rate_qps`` up to ``capacity``; a
    take of ``n`` tokens succeeds only when ``n`` whole tokens are
    available.  All time comes from the caller, so replayed submission
    sequences make identical admit/shed decisions.
    """

    def __init__(self, rate_qps: float, capacity: float, now: float = 0.0):
        self.rate_qps = rate_qps
        self.capacity = capacity
        self.tokens = capacity  # a fresh tenant may burst immediately
        self._last_refill = now

    def try_take(self, count: int, now: float) -> bool:
        """Admit ``count`` queries at time ``now`` if tokens allow.

        ``now`` is clamped to the bucket's high-water mark: a caller
        whose clock steps backwards (or concurrent callers racing a
        shared clock) must not rewind ``_last_refill``, which would
        double-credit the rewound interval on the next take.
        """
        now = max(now, self._last_refill)
        elapsed = now - self._last_refill
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate_qps)
        self._last_refill = now
        if self.tokens >= count:
            self.tokens -= count
            return True
        return False


@dataclass
class QosPolicy:
    """Per-tenant QoS: token buckets plus priority classes.

    Attributes:
        tenants: Explicit per-tenant specs; tenants not listed (and the
            anonymous ``None`` tenant) fall back to ``default``.
        default: Spec for unlisted tenants (unlimited, interactive).
        starvation_s: Anti-starvation bound — once the oldest waiting
            :data:`BATCH` query has waited this long, it is taken
            *ahead* of interactive traffic in the next fused batch, so
            priority delays batch work but can never starve it.
    """

    tenants: dict[str, TenantSpec] = field(default_factory=dict)
    default: TenantSpec = field(default_factory=TenantSpec)
    starvation_s: float = 0.05

    def __post_init__(self):
        if self.starvation_s < 0:
            raise ValueError(
                f"starvation_s must be >= 0, got {self.starvation_s}"
            )
        self._buckets: dict[str | None, TokenBucket] = {}

    def spec(self, tenant: str | None) -> TenantSpec:
        """The governing spec for ``tenant`` (``default`` if unlisted)."""
        if tenant is not None and tenant in self.tenants:
            return self.tenants[tenant]
        return self.default

    def qos_class(self, tenant: str | None) -> str:
        """The priority class ``tenant``'s queries queue under."""
        return self.spec(tenant).qos

    def admit(self, tenant: str | None, count: int, now: float) -> bool:
        """Charge ``count`` queries against ``tenant``'s bucket.

        Unlimited tenants always admit; limited tenants admit while
        their bucket holds ``count`` tokens.  The bucket is created on
        first use, full (so a new tenant can burst to ``capacity``).
        """
        spec = self.spec(tenant)
        if spec.rate_qps is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(spec.rate_qps, spec.capacity, now=now)
            self._buckets[tenant] = bucket
        return bucket.try_take(count, now)

    def bucket_levels(self) -> dict:
        """Remaining tokens per rate-limited tenant — the metrics-
        registry view shape.  Only tenants that have submitted traffic
        appear (buckets are created on first use); the anonymous
        tenant reports under ``"<anonymous>"``."""
        return {
            tenant if tenant is not None else "<anonymous>": bucket.tokens
            for tenant, bucket in self._buckets.items()
        }


class DrainTimeModel:
    """Predicted time to drain a pending queue, from the cost model.

    The question admission control should ask is not "how deep is the
    queue" but "can the queue drain inside the latency budget".  This
    model answers it with the same analytic performance model the
    scheduler and fleet router already trust: the backend (or, fleet-
    aware, the *sum* of fleet backends) prices a ``max_batch``-sized
    flush via :meth:`~repro.exec.ExecutionBackend.model_latency_s`, and
    the drain time is ``pending_queries / modeled_qps``.

    Modeled QPS is memoized per workload shape (the underlying
    :class:`~repro.gpu.scheduler.Scheduler` memoizes too), so the
    per-submission cost is a dict lookup.  A backend without a model
    (``model_latency_s`` returning ``None``) yields ``inf`` QPS, which
    disables drain shedding rather than guessing.

    ``ValueError`` from a backend's model means something different
    from ``None``: the shape is genuinely *infeasible* there (e.g. no
    feasible GPU strategy at ``flush_batch``), so that backend
    contributes zero QPS while the rest of the fleet still prices the
    shape honestly.  Only when **no** backend can price it — every
    model raises — does the drain model fail open with ``inf``.  A
    fleet containing a :class:`~repro.baselines.cpu.CpuBackend` (which
    prices every shape) therefore never takes the fail-open path.
    """

    def __init__(self, backends, flush_batch: int, entry_bytes: int = 8):
        if flush_batch <= 0:
            raise ValueError(f"flush_batch must be positive, got {flush_batch}")
        self.backends = list(backends)
        self.flush_batch = flush_batch
        self.entry_bytes = entry_bytes
        self._qps: dict[tuple[int, str, bool], float] = {}

    def modeled_qps(
        self, table_entries: int, prf_name: str, resident: bool
    ) -> float:
        """Aggregate modeled serving throughput for one table shape."""
        key = (table_entries, prf_name, resident)
        qps = self._qps.get(key)
        if qps is None:
            qps = 0.0
            priced_any = False
            for backend in self.backends:
                try:
                    latency = backend.model_latency_s(
                        self.flush_batch,
                        table_entries,
                        prf_name=prf_name,
                        resident=resident,
                        entry_bytes=self.entry_bytes,
                    )
                except ValueError:
                    # Genuinely infeasible on this backend (no feasible
                    # plan at flush_batch): zero QPS from it, but the
                    # rest of the fleet still prices the shape.
                    continue
                if latency is None or latency <= 0:
                    # No model at all: fail open — admit rather than
                    # shed on a guess.
                    priced_any = False
                    break
                qps += self.flush_batch / latency
                priced_any = True
            if not priced_any:
                qps = math.inf
            self._qps[key] = qps
        return qps

    def drain_s(
        self,
        pending_queries: int,
        table_entries: int,
        prf_name: str,
        resident: bool,
    ) -> float:
        """Modeled seconds to evaluate ``pending_queries`` queued queries."""
        if pending_queries <= 0:
            return 0.0
        qps = self.modeled_qps(table_entries, prf_name, resident)
        return 0.0 if math.isinf(qps) else pending_queries / qps
