"""DPF key material and wire-format serialization.

The client sends one key per server (paper Figure 2); the key size is
the client->server communication the paper reports in Table 4's "Bytes"
column.  The BGI construction used here carries one 128-bit seed plus
two control-bit corrections per tree level, a root seed, and a 64-bit
output correction word, giving ``O(lambda log L)`` communication.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dpf.ggm import log2_ceil

_MAGIC = b"DPF1"
_U64_MASK = (1 << 64) - 1

_HEADER_FMT = "<4sBBIQB"
HEADER_BYTES = struct.calcsize(_HEADER_FMT)
"""Fixed-size wire header: magic, party, log_domain, domain, output_cw, prf_len."""

CW_BYTES = 17
"""Per-level wire bytes: a 16-byte correction seed plus one packed bit byte."""


def _record_size(log_domain: int, prf_len: int) -> int:
    """Wire bytes of one key record: header, PRF name, root, levels.

    The single source of the record arithmetic — ``from_bytes``,
    ``split_wire`` and :meth:`repro.gpu.arena.KeyArena.from_wire` all
    frame records through it.
    """
    return HEADER_BYTES + prf_len + 1 + 16 + log_domain * CW_BYTES


def wire_size(log_domain: int, prf_name: str = "aes128") -> int:
    """Serialized size of a key with the given tree depth and PRF name.

    Every key of one ``(log_domain, prf_name)`` shape serializes to the
    same number of bytes, which is what makes batched wire parsing
    (:meth:`repro.gpu.arena.KeyArena.from_wire`) a fixed-stride reshape.
    """
    if log_domain < 0:
        raise ValueError(f"log_domain must be non-negative, got {log_domain}")
    return _record_size(log_domain, len(prf_name.encode()))


@dataclass(frozen=True)
class CorrectionWord:
    """Per-level correction: a seed word plus the two control-bit fixes."""

    seed: np.ndarray  # (16,) uint8
    t_left: int
    t_right: int

    def __post_init__(self):
        if self.seed.shape != (16,):
            raise ValueError(f"correction seed must be (16,), got {self.seed.shape}")


@dataclass(frozen=True)
class DpfKey:
    """One party's share of a distributed point function.

    Attributes:
        party: 0 or 1 (which non-colluding server this key is for).
        domain_size: Number of addressable indices L (may be below
            ``2 ** log_domain`` for non-power-of-two tables).
        log_domain: Tree depth n = ceil(log2(L)).
        root_seed: ``(16,)`` uint8 root seed.
        root_t: Root control bit (0 for party 0, 1 for party 1).
        correction_words: One :class:`CorrectionWord` per level.
        output_cw: Final output correction word in Z_{2^64}.
        prf_name: Registry name of the PRF both parties must use.
    """

    party: int
    domain_size: int
    log_domain: int
    root_seed: np.ndarray
    root_t: int
    correction_words: list[CorrectionWord] = field(default_factory=list)
    output_cw: int = 0
    prf_name: str = "aes128"

    def __post_init__(self):
        if self.party not in (0, 1):
            raise ValueError(f"party must be 0 or 1, got {self.party}")
        if len(self.correction_words) != self.log_domain:
            raise ValueError(
                f"expected {self.log_domain} correction words, "
                f"got {len(self.correction_words)}"
            )

    @property
    def size_bytes(self) -> int:
        """Serialized size — the per-query upload cost.

        Computed from the wire-format arithmetic rather than by
        serializing; ``test_size_bytes_matches_serialization`` pins the
        two against each other for every PRF and a range of depths.
        """
        return wire_size(self.log_domain, self.prf_name)

    def to_bytes(self) -> bytes:
        """Serialize to the wire format (little-endian, versioned)."""
        prf_bytes = self.prf_name.encode()
        header = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            self.party,
            self.log_domain,
            self.domain_size,
            self.output_cw & _U64_MASK,
            len(prf_bytes),
        )
        body = [header, prf_bytes, bytes([self.root_t]), self.root_seed.tobytes()]
        for cw in self.correction_words:
            body.append(cw.seed.tobytes())
            body.append(bytes([cw.t_left | (cw.t_right << 1)]))
        return b"".join(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DpfKey":
        """Parse a key produced by :meth:`to_bytes`.

        Raises:
            ValueError: On a malformed or truncated buffer.
        """
        if len(data) < HEADER_BYTES:
            raise ValueError("truncated DPF key")
        magic, party, log_domain, domain_size, output_cw, prf_len = struct.unpack(
            _HEADER_FMT, data[:HEADER_BYTES]
        )
        if magic != _MAGIC:
            raise ValueError(f"bad DPF key magic {magic!r}")
        # Validate the header semantics and total length up front: a
        # corrupted domain or a buffer truncated mid-correction-word
        # must fail here with a clear message, not deep inside
        # np.frombuffer, CorrectionWord.__post_init__, or — worse —
        # only once evaluation walks off the correction-word array.
        if domain_size <= 0 or log2_ceil(domain_size) != log_domain:
            raise ValueError(
                f"domain_size {domain_size} is inconsistent with tree "
                f"depth {log_domain}"
            )
        expected = _record_size(log_domain, prf_len)
        if len(data) != expected:
            raise ValueError(
                f"DPF key with depth {log_domain} and a {prf_len}-byte PRF "
                f"name must be exactly {expected} bytes, got {len(data)}"
            )
        offset = HEADER_BYTES
        prf_name = data[offset : offset + prf_len].decode()
        offset += prf_len
        root_t = data[offset]
        offset += 1
        root_seed = np.frombuffer(data[offset : offset + 16], dtype=np.uint8).copy()
        offset += 16
        cws = []
        for _ in range(log_domain):
            seed = np.frombuffer(data[offset : offset + 16], dtype=np.uint8).copy()
            offset += 16
            bits = data[offset]
            offset += 1
            cws.append(CorrectionWord(seed=seed, t_left=bits & 1, t_right=(bits >> 1) & 1))
        return cls(
            party=party,
            domain_size=domain_size,
            log_domain=log_domain,
            root_seed=root_seed,
            root_t=root_t,
            correction_words=cws,
            output_cw=output_cw,
            prf_name=prf_name,
        )


def key_size_bytes(domain_size: int, prf_name: str = "aes128") -> int:
    """Size of a serialized key for a given table size, without generating one.

    Used by the communication accounting and the batch-PIR planner.
    """
    return wire_size(log2_ceil(max(domain_size, 1)), prf_name)


def pack_keys(keys: Sequence[DpfKey]) -> bytes:
    """Concatenate a batch of keys into one wire buffer.

    This is the client->server upload format for a multi-query batch:
    back-to-back :meth:`DpfKey.to_bytes` records with no extra framing.
    All keys must share one domain and PRF, which fixes the record size
    (:func:`wire_size`) and lets the server ingest the whole buffer with
    one vectorized parse (:meth:`repro.gpu.arena.KeyArena.from_wire`)
    instead of per-key Python object construction.

    Raises:
        ValueError: On an empty batch or mixed domains/PRFs.
    """
    if not keys:
        raise ValueError("need at least one key")
    first = keys[0]
    for key in keys:
        if (key.domain_size, key.log_domain, key.prf_name) != (
            first.domain_size,
            first.log_domain,
            first.prf_name,
        ):
            raise ValueError("all keys in a batch must share the same domain and PRF")
    return b"".join(key.to_bytes() for key in keys)


def split_wire(data: bytes) -> list[bytes]:
    """Split a concatenated wire buffer into per-key records.

    Each record's size is read from its own header, so a stream of
    heterogeneous keys also frames correctly; :func:`pack_keys` output
    is the homogeneous special case.

    Every header is semantically validated (magic, party, domain/depth
    consistency) *before* its record length is trusted, so trailing
    garbage after the last well-formed record cannot frame as an extra
    record — it fails here rather than surviving until (or past) the
    per-key parse.

    Raises:
        ValueError: On bad magic, an invalid or inconsistent header, or
            a buffer that ends mid-record.
    """
    records = []
    offset = 0
    view = memoryview(data)
    while offset < len(data):
        if len(data) - offset < HEADER_BYTES:
            raise ValueError(
                f"wire buffer ends mid-header: {len(data) - offset} "
                f"trailing bytes at offset {offset}"
            )
        magic, party, log_domain, domain_size, _, prf_len = struct.unpack_from(
            _HEADER_FMT, data, offset
        )
        if magic != _MAGIC:
            raise ValueError(f"bad DPF key magic {magic!r} at offset {offset}")
        if party not in (0, 1):
            raise ValueError(f"party must be 0 or 1, got {party} at offset {offset}")
        if domain_size <= 0 or log2_ceil(domain_size) != log_domain:
            raise ValueError(
                f"domain_size {domain_size} is inconsistent with tree "
                f"depth {log_domain} at offset {offset}"
            )
        record = _record_size(log_domain, prf_len)
        if offset + record > len(data):
            raise ValueError(
                f"wire buffer ends mid-record: need {record} bytes at "
                f"offset {offset}, have {len(data) - offset}"
            )
        records.append(bytes(view[offset : offset + record]))
        offset += record
    return records


def unpack_keys(data: bytes) -> list[DpfKey]:
    """Parse a concatenated wire buffer into key objects.

    This is the reference (per-key, Python-object) ingestion path; the
    serving hot path uses :meth:`repro.gpu.arena.KeyArena.from_wire`,
    which parses the same buffer without constructing any per-key
    objects.
    """
    return [DpfKey.from_bytes(record) for record in split_wire(data)]
