"""DPF key material and wire-format serialization.

The client sends one key per server (paper Figure 2); the key size is
the client->server communication the paper reports in Table 4's "Bytes"
column.  The BGI construction used here carries one 128-bit seed plus
two control-bit corrections per tree level, a root seed, and a 64-bit
output correction word, giving ``O(lambda log L)`` communication.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.dpf.ggm import log2_ceil

_MAGIC = b"DPF1"
_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class CorrectionWord:
    """Per-level correction: a seed word plus the two control-bit fixes."""

    seed: np.ndarray  # (16,) uint8
    t_left: int
    t_right: int

    def __post_init__(self):
        if self.seed.shape != (16,):
            raise ValueError(f"correction seed must be (16,), got {self.seed.shape}")


@dataclass(frozen=True)
class DpfKey:
    """One party's share of a distributed point function.

    Attributes:
        party: 0 or 1 (which non-colluding server this key is for).
        domain_size: Number of addressable indices L (may be below
            ``2 ** log_domain`` for non-power-of-two tables).
        log_domain: Tree depth n = ceil(log2(L)).
        root_seed: ``(16,)`` uint8 root seed.
        root_t: Root control bit (0 for party 0, 1 for party 1).
        correction_words: One :class:`CorrectionWord` per level.
        output_cw: Final output correction word in Z_{2^64}.
        prf_name: Registry name of the PRF both parties must use.
    """

    party: int
    domain_size: int
    log_domain: int
    root_seed: np.ndarray
    root_t: int
    correction_words: list[CorrectionWord] = field(default_factory=list)
    output_cw: int = 0
    prf_name: str = "aes128"

    def __post_init__(self):
        if self.party not in (0, 1):
            raise ValueError(f"party must be 0 or 1, got {self.party}")
        if len(self.correction_words) != self.log_domain:
            raise ValueError(
                f"expected {self.log_domain} correction words, "
                f"got {len(self.correction_words)}"
            )

    @property
    def size_bytes(self) -> int:
        """Serialized size — the per-query upload cost."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialize to the wire format (little-endian, versioned)."""
        prf_bytes = self.prf_name.encode()
        header = struct.pack(
            "<4sBBIQB",
            _MAGIC,
            self.party,
            self.log_domain,
            self.domain_size,
            self.output_cw & _U64_MASK,
            len(prf_bytes),
        )
        body = [header, prf_bytes, bytes([self.root_t]), self.root_seed.tobytes()]
        for cw in self.correction_words:
            body.append(cw.seed.tobytes())
            body.append(bytes([cw.t_left | (cw.t_right << 1)]))
        return b"".join(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DpfKey":
        """Parse a key produced by :meth:`to_bytes`.

        Raises:
            ValueError: On a malformed or truncated buffer.
        """
        header_size = struct.calcsize("<4sBBIQB")
        if len(data) < header_size:
            raise ValueError("truncated DPF key")
        magic, party, log_domain, domain_size, output_cw, prf_len = struct.unpack(
            "<4sBBIQB", data[:header_size]
        )
        if magic != _MAGIC:
            raise ValueError(f"bad DPF key magic {magic!r}")
        offset = header_size
        prf_name = data[offset : offset + prf_len].decode()
        offset += prf_len
        root_t = data[offset]
        offset += 1
        root_seed = np.frombuffer(data[offset : offset + 16], dtype=np.uint8).copy()
        offset += 16
        cws = []
        for _ in range(log_domain):
            seed = np.frombuffer(data[offset : offset + 16], dtype=np.uint8).copy()
            offset += 16
            bits = data[offset]
            offset += 1
            cws.append(CorrectionWord(seed=seed, t_left=bits & 1, t_right=(bits >> 1) & 1))
        if offset != len(data):
            raise ValueError("trailing bytes in DPF key")
        return cls(
            party=party,
            domain_size=domain_size,
            log_domain=log_domain,
            root_seed=root_seed,
            root_t=root_t,
            correction_words=cws,
            output_cw=output_cw,
            prf_name=prf_name,
        )


def key_size_bytes(domain_size: int, prf_name: str = "aes128") -> int:
    """Size of a serialized key for a given table size, without generating one.

    Used by the communication accounting and the batch-PIR planner.
    """
    log_domain = log2_ceil(max(domain_size, 1))
    header = struct.calcsize("<4sBBIQB") + len(prf_name.encode()) + 1 + 16
    return header + log_domain * 17
