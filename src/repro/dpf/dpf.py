"""DPF key generation and evaluation (paper Section 3.1).

``gen`` runs on the client (cheap, O(log L) PRF calls — Figure 3);
``eval_full`` runs on the servers (O(L) PRF calls, the paper's
acceleration target).  ``eval_full`` here is the *reference* level-by-
level expansion; the GPU strategies in :mod:`repro.gpu.strategies`
provide the accelerated/instrumented traversals and are tested for
bit-equality against this function.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prf import Prf, SEED_BYTES
from repro.dpf import ggm
from repro.dpf.keys import CorrectionWord, DpfKey

_U64_MASK = (1 << 64) - 1


def gen(
    alpha: int,
    domain_size: int,
    prf: Prf,
    rng: np.random.Generator,
    beta: int = 1,
) -> tuple[DpfKey, DpfKey]:
    """Generate the two DPF keys encoding ``f(alpha) = beta``.

    Args:
        alpha: Secret index in ``[0, domain_size)``.
        domain_size: Table size L.
        prf: PRF shared with the evaluating servers.
        rng: Source of the random root seeds.
        beta: Output value at ``alpha`` (mod 2^64); PIR uses 1.

    Returns:
        ``(key_0, key_1)`` for the two non-colluding servers.

    Raises:
        ValueError: If ``alpha`` is out of range or the domain is empty.
    """
    if domain_size <= 0:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if not 0 <= alpha < domain_size:
        raise ValueError(f"alpha={alpha} out of range for domain of {domain_size}")
    n = ggm.log2_ceil(domain_size)

    seed_a = rng.integers(0, 256, size=(1, SEED_BYTES), dtype=np.uint8)
    seed_b = rng.integers(0, 256, size=(1, SEED_BYTES), dtype=np.uint8)
    t_a, t_b = np.array([0], dtype=np.uint8), np.array([1], dtype=np.uint8)
    root_a, root_b = seed_a[0].copy(), seed_b[0].copy()

    correction_words: list[CorrectionWord] = []
    for level in range(n):
        path_bit = (alpha >> (n - 1 - level)) & 1
        sl_a, tl_a, sr_a, tr_a = ggm.prg_expand(prf, seed_a, t_a)
        sl_b, tl_b, sr_b, tr_b = ggm.prg_expand(prf, seed_b, t_b)

        if path_bit == 0:
            keep_a, keep_t_a, lose_a = sl_a, tl_a, sr_a
            keep_b, keep_t_b, lose_b = sl_b, tl_b, sr_b
        else:
            keep_a, keep_t_a, lose_a = sr_a, tr_a, sl_a
            keep_b, keep_t_b, lose_b = sr_b, tr_b, sl_b

        cw_seed = (lose_a ^ lose_b)[0]
        cw_t_left = int(tl_a[0] ^ tl_b[0] ^ path_bit ^ 1)
        cw_t_right = int(tr_a[0] ^ tr_b[0] ^ path_bit)
        correction_words.append(
            CorrectionWord(seed=cw_seed, t_left=cw_t_left, t_right=cw_t_right)
        )
        cw_t_keep = cw_t_right if path_bit else cw_t_left

        seed_a = keep_a ^ (cw_seed[np.newaxis, :] * t_a[:, np.newaxis])
        seed_b = keep_b ^ (cw_seed[np.newaxis, :] * t_b[:, np.newaxis])
        new_t_a = np.array([keep_t_a[0] ^ (t_a[0] & cw_t_keep)], dtype=np.uint8)
        new_t_b = np.array([keep_t_b[0] ^ (t_b[0] & cw_t_keep)], dtype=np.uint8)
        t_a, t_b = new_t_a, new_t_b

    conv_a = int(ggm.convert_to_u64(seed_a)[0])
    conv_b = int(ggm.convert_to_u64(seed_b)[0])
    output_cw = (beta - conv_a + conv_b) & _U64_MASK
    if int(t_b[0]) == 1:
        output_cw = (-output_cw) & _U64_MASK

    common = dict(
        domain_size=domain_size,
        log_domain=n,
        correction_words=correction_words,
        output_cw=output_cw,
        prf_name=prf.name,
    )
    key_0 = DpfKey(party=0, root_seed=root_a, root_t=0, **common)
    key_1 = DpfKey(party=1, root_seed=root_b, root_t=1, **common)
    return key_0, key_1


_BITREV_CACHE: dict[int, np.ndarray] = {}
_BITREV_CACHE_MAX_BITS = 20
"""Depths above this (8 MiB+ of int64 indices each) are rebuilt per call
rather than retained, so sweeping domain sizes cannot accumulate
unbounded resident permutations."""


def _bitrev_perm(n: int) -> np.ndarray:
    """The n-bit bit-reversal permutation of ``arange(2**n)``."""
    perm = _BITREV_CACHE.get(n)
    if perm is None:
        idx = np.arange(1 << n, dtype=np.int64)
        perm = np.zeros_like(idx)
        for bit in range(n):
            perm |= ((idx >> bit) & 1) << (n - 1 - bit)
        if n <= _BITREV_CACHE_MAX_BITS:
            _BITREV_CACHE[n] = perm
    return perm


def eval_full(key: DpfKey, prf: Prf) -> np.ndarray:
    """Expand a key over the whole domain (reference level-by-level walk).

    The expansion keeps each level's children in ``[left | right]``
    block order (the layout the fused
    :meth:`~repro.crypto.prf.Prf.expand_pair` produces) instead of
    interleaving per parent; per-level corrections and control bits are
    order-independent, so a single bit-reversal gather at the leaves
    restores natural index order bit-identically while the per-level
    work stays two XOR passes plus one fused cipher invocation.

    Returns:
        ``(domain_size,)`` uint64 array of output shares; adding both
        parties' arrays mod 2^64 yields ``beta`` at ``alpha`` and 0
        elsewhere.
    """
    _check_prf(key, prf)
    n = key.log_domain
    seeds = key.root_seed[np.newaxis, :].copy()
    ts = np.array([key.root_t], dtype=np.uint8)
    for cw in key.correction_words:
        width = seeds.shape[0]
        new_seeds = prf.expand_pair_stacked(seeds)
        t_left = new_seeds[:width, 0] & 1
        t_right = new_seeds[width:, 0] & 1
        corr = ggm.correction_u64(cw.seed, ts)
        words = new_seeds.view(np.uint64).reshape(2 * width, 2)
        words[:width] ^= corr
        words[width:] ^= corr
        new_ts = np.empty(2 * width, dtype=np.uint8)
        np.bitwise_xor(t_left, ts & np.uint8(cw.t_left), out=new_ts[:width])
        np.bitwise_xor(t_right, ts & np.uint8(cw.t_right), out=new_ts[width:])
        seeds, ts = new_seeds, new_ts
    values = ggm.leaf_values(seeds, ts, key.output_cw, key.party)
    # Undo the [left | right] block layout: leaf i sits at bitrev(i).
    return values[_bitrev_perm(n)[: key.domain_size]]


def eval_range(key: DpfKey, prf: Prf, lo: int, hi: int) -> np.ndarray:
    """Expand a key over the contiguous sub-domain ``[lo, hi)`` only.

    This is the shard-server evaluation path: a server holding rows
    ``[lo, hi)`` of the table needs the key's shares on exactly those
    rows, and expanding the whole tree to throw most of it away would
    make sharding a no-op for compute.  The walk keeps, per level, only
    the GGM nodes whose subtrees intersect ``[lo, hi)`` — in natural
    index order that set is one contiguous window
    ``[lo >> shift, (hi - 1) >> shift]``, so each level is a single
    :func:`repro.dpf.ggm.expand_level` over the window followed by a
    clip.  Cost is ``O((hi - lo) + log L)`` PRF pairs instead of
    ``O(L)``.

    Returns:
        ``(hi - lo,)`` uint64 output shares, bit-identical to
        ``eval_full(key, prf)[lo:hi]`` (pinned by
        ``tests/dpf/test_properties.py``).

    Raises:
        ValueError: On a PRF mismatch or a range that is empty or falls
            outside ``[0, domain_size)``.
    """
    _check_prf(key, prf)
    if not 0 <= lo < hi <= key.domain_size:
        raise ValueError(
            f"range [{lo}, {hi}) is not a non-empty sub-range of the "
            f"domain [0, {key.domain_size})"
        )
    n = key.log_domain
    seeds = key.root_seed[np.newaxis, :].copy()
    ts = np.array([key.root_t], dtype=np.uint8)
    node_lo = 0  # natural-order index of seeds[0] at the current level
    for level, cw in enumerate(key.correction_words):
        seeds, ts = ggm.expand_level(
            prf, seeds, ts, cw.seed, cw.t_left, cw.t_right
        )
        # Children cover natural-order nodes [2*node_lo, 2*node_lo + 2m);
        # keep only those whose subtree intersects [lo, hi).
        shift = n - (level + 1)
        keep_lo = lo >> shift
        keep_hi = ((hi - 1) >> shift) + 1
        seeds = seeds[keep_lo - 2 * node_lo : keep_hi - 2 * node_lo]
        ts = ts[keep_lo - 2 * node_lo : keep_hi - 2 * node_lo]
        node_lo = keep_lo
    # The surviving frontier is exactly the leaves [lo, hi), in order.
    return ggm.leaf_values(seeds, ts, key.output_cw, key.party)


def eval_points(key: DpfKey, prf: Prf, indices: np.ndarray) -> np.ndarray:
    """Evaluate a key at a set of indices without a full expansion.

    This is the O(|indices| log L) path walk; useful for client-side
    spot checks and tests.  Server-side PIR always needs the full
    expansion (it must touch every row to stay oblivious).

    Returns:
        ``(len(indices),)`` uint64 output shares.
    """
    _check_prf(key, prf)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= key.domain_size):
        raise ValueError("index out of domain")
    m = indices.shape[0]
    seeds = np.broadcast_to(key.root_seed, (m, 16)).copy()
    ts = np.full(m, key.root_t, dtype=np.uint8)
    n = key.log_domain
    for level, cw in enumerate(key.correction_words):
        bits = ((indices >> (n - 1 - level)) & 1).astype(np.uint8)
        s_left, t_left, s_right, t_right = ggm.prg_expand(prf, seeds, ts)
        chosen_s = np.where(bits[:, np.newaxis] == 0, s_left, s_right)
        chosen_t = np.where(bits == 0, t_left, t_right)
        cw_t = np.where(bits == 0, np.uint8(cw.t_left), np.uint8(cw.t_right))
        seeds = chosen_s ^ (cw.seed[np.newaxis, :] * ts[:, np.newaxis])
        ts = (chosen_t ^ (ts & cw_t)).astype(np.uint8)
    return ggm.leaf_values(seeds, ts, key.output_cw, key.party)


def _check_prf(key: DpfKey, prf: Prf) -> None:
    if key.prf_name != prf.name:
        raise ValueError(
            f"key was generated for PRF {key.prf_name!r} but evaluation "
            f"uses {prf.name!r}; the parties would not reconstruct"
        )
