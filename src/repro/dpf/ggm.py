"""GGM-tree expansion primitives shared by DPF Gen/Eval and GPU kernels.

The DPF evaluation (paper Eq. 1--3, Figure 4) is the expansion of a
binary tree of 128-bit seeds: each node carries a seed ``s`` and a
control bit ``t``; its children are derived with two PRF calls plus a
per-level correction applied when ``t = 1``.  These helpers implement
that step vectorized over an arbitrary frontier of nodes, which is the
building block every parallelization strategy in :mod:`repro.gpu`
reuses.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prf import Prf, seeds_to_u64


def log2_ceil(value: int) -> int:
    """GGM-tree depth for a domain: ``ceil(log2(value))``, 0 for value <= 1.

    Integer-exact (no float log), shared by key generation, key-size
    accounting, and every GPU strategy.
    """
    return max(int(value - 1).bit_length(), 0)


def prg_expand(
    prf: Prf, seeds: np.ndarray, ts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Length-doubling PRG on a frontier of nodes.

    Args:
        prf: The PRF backing the PRG (Matyas--Meyer--Oseas mode).
        seeds: ``(N, 16)`` uint8 node seeds.
        ts: ``(N,)`` uint8 control bits (0/1); unused here but accepted
            so call sites read naturally — correction happens in
            :func:`apply_correction`.

    Returns:
        ``(left_seeds, left_ts, right_seeds, right_ts)`` where seeds are
        ``(N, 16)`` uint8 and control bits ``(N,)`` uint8 extracted from
        the low bit of each child block's first byte.
    """
    del ts  # The PRG depends only on the seed.
    left, right = prf.expand_pair(seeds)
    return left, left[:, 0] & 1, right, right[:, 0] & 1


def apply_correction(
    child_seeds: np.ndarray,
    child_ts: np.ndarray,
    parent_ts: np.ndarray,
    cw_seed: np.ndarray,
    cw_t: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a level's correction word where the parent control bit is set.

    Args:
        child_seeds: ``(N, 16)`` uint8 child seeds (mutated copy returned).
        child_ts: ``(N,)`` uint8 child control bits.
        parent_ts: ``(N,)`` uint8 parent control bits.
        cw_seed: ``(16,)`` uint8 seed correction word.
        cw_t: Control-bit correction (0/1) for this child side.

    Returns:
        Corrected ``(seeds, ts)``.
    """
    mask = parent_ts.astype(np.uint8)
    seeds = child_seeds ^ (cw_seed[np.newaxis, :] * mask[:, np.newaxis])
    ts = (child_ts ^ (mask & np.uint8(cw_t))).astype(np.uint8)
    return seeds, ts


def correction_u64(cw_seed: np.ndarray, parent_ts: np.ndarray) -> np.ndarray:
    """Per-node seed correction as ``(N, 2)`` uint64 words.

    The 16-byte correction word is XORed into a child seed exactly when
    the parent control bit is 1; because the mask is 0/1, multiplying
    the two uint64 halves of the correction word by it is bit-identical
    to the bytewise ``cw * mask`` and an eighth of the element count.
    """
    cw64 = seeds_to_u64(cw_seed.reshape(1, 16))
    return cw64 * parent_ts.astype(np.uint64)[:, np.newaxis]


def expand_level(
    prf: Prf,
    seeds: np.ndarray,
    ts: np.ndarray,
    cw_seed: np.ndarray,
    cw_t_left: int,
    cw_t_right: int,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a frontier one level, interleaving children in index order.

    Node ``j`` at the current depth produces children ``2j`` (left) and
    ``2j + 1`` (right) at the next depth, so the returned arrays hold
    ``2N`` nodes in natural index order.

    The PRG runs as a single fused cipher pass
    (:meth:`~repro.crypto.prf.Prf.expand_pair`), and the seed
    corrections are applied as uint64-view XORs in place on the cipher
    output before the interleave.

    Args:
        out: Optional ``(seeds, ts)`` destination arrays of shape
            ``(2N, 16)`` / ``(2N,)`` uint8; callers expanding level by
            level pass ping-pong buffers here to avoid reallocating the
            frontier on every level.

    Returns:
        ``(seeds, ts)`` of shape ``(2N, 16)`` / ``(2N,)`` — the ``out``
        arrays when provided.
    """
    n = seeds.shape[0]
    s_left, s_right = prf.expand_pair(seeds)
    # Control bits come from the *uncorrected* child blocks.
    t_left = s_left[:, 0] & 1
    t_right = s_right[:, 0] & 1
    corr = correction_u64(cw_seed, ts)
    s_left = np.ascontiguousarray(s_left)
    s_right = np.ascontiguousarray(s_right)
    s_left.view(np.uint64)[:] ^= corr
    s_right.view(np.uint64)[:] ^= corr
    mask = ts.astype(np.uint8)
    t_left = (t_left ^ (mask & np.uint8(cw_t_left))).astype(np.uint8)
    t_right = (t_right ^ (mask & np.uint8(cw_t_right))).astype(np.uint8)

    if out is None:
        out_seeds = np.empty((2 * n, 16), dtype=np.uint8)
        out_ts = np.empty(2 * n, dtype=np.uint8)
    else:
        out_seeds, out_ts = out
    out_seeds[0::2] = s_left
    out_seeds[1::2] = s_right
    out_ts[0::2] = t_left
    out_ts[1::2] = t_right
    return out_seeds, out_ts


def convert_to_u64(seeds: np.ndarray) -> np.ndarray:
    """Map seeds into the output group Z_{2^64} (first 8 bytes, LE)."""
    return np.ascontiguousarray(seeds[:, :8]).view("<u8").reshape(-1)


def leaf_values(
    seeds: np.ndarray, ts: np.ndarray, output_cw: int, party: int
) -> np.ndarray:
    """Final share conversion at the leaves.

    Party ``b`` outputs ``(-1)^b * (convert(s) + t * CW_out)`` mod 2^64
    so that the two parties' leaves sum to ``beta`` at ``alpha`` and to
    0 elsewhere.

    Returns:
        ``(N,)`` uint64 output shares.
    """
    values = convert_to_u64(seeds) + ts.astype(np.uint64) * np.uint64(output_cw % (1 << 64))
    if party == 1:
        values = np.uint64(0) - values
    return values
