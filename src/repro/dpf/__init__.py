"""Distributed point functions (DPFs), the paper's core primitive.

A DPF (Section 3.1) lets a client split the point function
``f(x) = beta if x == alpha else 0`` into two compact keys such that
each key alone reveals nothing about ``alpha``, yet the two servers'
full-domain evaluations sum to the one-hot vector ``beta * I(alpha)``.
This package implements the Boyle--Gilboa--Ishai correction-word
construction the paper builds on, with O(lambda log L) keys and
O(lambda L) evaluation:

* :mod:`repro.dpf.ggm` — the GGM-tree PRG expansion shared by ``Gen``,
  ``Eval`` and every GPU parallelization strategy.
* :mod:`repro.dpf.keys` — key material and wire serialization (the
  "Bytes" column of the paper's Table 4).
* :mod:`repro.dpf.dpf` — ``gen`` / ``eval_full`` / ``eval_range`` /
  ``eval_points``.
"""

from repro.dpf.dpf import eval_full, eval_points, eval_range, gen
from repro.dpf.ggm import convert_to_u64, expand_level, prg_expand
from repro.dpf.keys import (
    CorrectionWord,
    DpfKey,
    key_size_bytes,
    pack_keys,
    split_wire,
    unpack_keys,
    wire_size,
)

__all__ = [
    "gen",
    "eval_full",
    "eval_range",
    "eval_points",
    "DpfKey",
    "CorrectionWord",
    "key_size_bytes",
    "wire_size",
    "pack_keys",
    "split_wire",
    "unpack_keys",
    "prg_expand",
    "expand_level",
    "convert_to_u64",
]
