"""Functional GPU kernels: the paper's DPF parallelization strategies.

Section 3.2 of the paper explores four ways to map the GGM-tree
expansion of a DPF onto a SIMT device, trading PRF recomputation
against live memory (Figure 6):

* :class:`BranchParallel` — one thread per *leaf*; every thread walks
  root->leaf independently.  Maximum parallelism from the first wave
  and no intermediate storage on a real GPU (the path seed lives in a
  register), at the price of O(L log L) PRF work per query.
* :class:`LevelByLevel` — the textbook breadth-first expansion; O(L)
  PRF work but the whole frontier is materialized in global memory,
  O(B L) bytes for a batch of B queries, plus an unfused second kernel
  for the table dot product.
* :class:`MemoryBoundedTree` — expand the top of the tree to a frontier
  of K subtree roots, then depth-first traverse the K subtrees in
  parallel lanes with an explicit per-level stack: O(L) PRF work with
  only O(B K log L) live bytes, fused with the dot product.  This is
  the paper's headline kernel and its Table 4 calibration target.
* :class:`CooperativeGroups` — a single cooperative launch that keeps
  each subtree tile resident in shared memory, paying occupancy (the
  tile evicts resident blocks) instead of global-memory traffic.

Every strategy is implemented as a *real* vectorized-numpy traversal
that is bit-identical to :func:`repro.dpf.dpf.eval_full`, meters its
buffers through :class:`~repro.gpu.memory.MemoryMeter`, and can emit a
:class:`~repro.gpu.kernel.KernelPlan` for the performance model in
:mod:`repro.gpu.sim`.  The meter tracks the *functional* working set;
for the fused strategies the converted output shares are accumulated
straight into the dot product on a real device and are therefore not
metered (the Figure 6 bounds concern the expansion working set).

A registry mirrors :mod:`repro.crypto.prf`:
:func:`available_strategies` / :func:`get_strategy`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.crypto.prf import Prf, get_prf, seeds_to_u64
from repro.dpf import ggm
from repro.dpf.keys import DpfKey, key_size_bytes
from repro.gpu.arena import ExpansionWorkspace, KeyArena, KeySource
from repro.gpu.kernel import KernelPhase, KernelPlan
from repro.gpu.memory import MemoryMeter

NODE_BYTES = 17
"""Metered bytes per live tree node: a 16-byte seed plus its control bit."""


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class StrategyCost:
    """Analytic cost of one strategy invocation (Figure 6 quantities).

    ``prf_blocks`` is exact — tests assert it against a
    :class:`~repro.crypto.prf.CountingPrf`.  ``peak_mem_bytes`` is the
    analytic working-set peak the functional kernel's
    :class:`~repro.gpu.memory.MemoryMeter` must match exactly.

    Attributes:
        strategy: Registry name.
        batch_size: Queries per invocation B.
        domain_size: Table size L.
        prf_blocks: Total PRF block evaluations.
        peak_mem_bytes: Peak live bytes of the expansion working set.
        parallel_width: Maximum exposed parallelism (work items).
    """

    strategy: str
    batch_size: int
    domain_size: int
    prf_blocks: int
    peak_mem_bytes: int
    parallel_width: int


def _expand_level_batch(
    prf: Prf,
    seeds: np.ndarray,  # (B, W, 16)
    ts: np.ndarray,  # (B, W)
    cw_seed: np.ndarray,  # (B, 16)
    cw_t_left: np.ndarray,  # (B,)
    cw_t_right: np.ndarray,  # (B,)
    out: tuple[np.ndarray, np.ndarray] | None = None,
    stage: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`repro.dpf.ggm.expand_level` with per-key corrections.

    One fused cipher pass per call; seed corrections are uint64-view
    XORs applied in place on the cipher output.  ``out``, when given,
    receives the interleaved children (ping-pong buffers from
    ``_expand_to_level``).  ``stage``, when given, is a reusable
    ``(b*w, 16)`` buffer for the contiguous cipher-input copy a
    non-contiguous frontier needs (from :class:`ExpansionWorkspace`).
    """
    b, w, _ = seeds.shape
    if seeds.flags.c_contiguous:
        flat = seeds.reshape(b * w, 16)
    elif stage is not None:
        flat = stage
        flat.reshape(b, w, 16)[:] = seeds
    else:
        flat = np.ascontiguousarray(seeds).reshape(b * w, 16)
    left, right = prf.expand_pair(flat)
    # Control bits come from the *uncorrected* child blocks.
    t_left = (left[:, 0] & 1).reshape(b, w)
    t_right = (right[:, 0] & 1).reshape(b, w)
    corr = seeds_to_u64(cw_seed)[:, np.newaxis, :] * ts.astype(np.uint64)[:, :, np.newaxis]
    left = np.ascontiguousarray(left)
    right = np.ascontiguousarray(right)
    left.view(np.uint64).reshape(b, w, 2)[:] ^= corr
    right.view(np.uint64).reshape(b, w, 2)[:] ^= corr
    t_left = (t_left ^ (ts & cw_t_left[:, np.newaxis])).astype(np.uint8)
    t_right = (t_right ^ (ts & cw_t_right[:, np.newaxis])).astype(np.uint8)
    if out is None:
        out_seeds = np.empty((b, 2 * w, 16), dtype=np.uint8)
        out_ts = np.empty((b, 2 * w), dtype=np.uint8)
    else:
        out_seeds, out_ts = out
    out_seeds[:, 0::2] = left.reshape(b, w, 16)
    out_seeds[:, 1::2] = right.reshape(b, w, 16)
    out_ts[:, 0::2] = t_left
    out_ts[:, 1::2] = t_right
    return out_seeds, out_ts


def _leaf_values_batch(
    seeds: np.ndarray,  # (B, W, 16)
    ts: np.ndarray,  # (B, W)
    output_cws: np.ndarray,  # (B,) uint64
    negate: np.ndarray,  # (B,) bool
) -> np.ndarray:
    """Batched :func:`repro.dpf.ggm.leaf_values` (bit-identical math)."""
    b, w, _ = seeds.shape
    values = ggm.convert_to_u64(seeds.reshape(b * w, 16)).reshape(b, w)
    values = values + ts.astype(np.uint64) * output_cws[:, np.newaxis]
    values[negate] = np.uint64(0) - values[negate]
    return values


class Strategy(abc.ABC):
    """A DPF full-domain-evaluation parallelization strategy.

    Subclasses implement the functional traversal (:meth:`_eval`), the
    analytic cost model (:meth:`cost`), and the device execution recipe
    (:meth:`plan`).
    """

    name: str = "abstract"
    fused: bool = True
    threads_per_block: int = 256
    shared_mem_per_block: int = 0

    def eval_full(
        self, key: DpfKey, prf: Prf, meter: MemoryMeter | None = None
    ) -> np.ndarray:
        """Expand one key over the whole domain; ``(L,)`` uint64 shares."""
        return self.eval_batch([key], prf, meter)[0]

    def eval_batch(
        self,
        keys: KeySource,
        prf: Prf,
        meter: MemoryMeter | None = None,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        """Expand a batch of same-domain keys; ``(B, L)`` uint64 shares.

        ``keys`` is anything :meth:`KeyArena.ingest` accepts — an
        already-built arena (the serving hot path, where stacking or the
        vectorized wire parse happened once upstream), a list of key
        objects, or concatenated wire bytes.  ``workspace``, when given,
        keeps the ping-pong frontier buffers alive across calls; the
        returned share matrix is never workspace-backed.

        All device-side expansion buffers are reported to ``meter``; the
        meter's ``current`` returns to zero before this method returns
        (buffers are released once the answer shares leave the device).
        """
        arena = KeyArena.ingest(keys, prf_name=prf.name)
        meter = meter if meter is not None else MemoryMeter()
        return self._eval(arena, prf, meter, workspace)

    @abc.abstractmethod
    def _eval(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        """Strategy-specific traversal over a stacked key arena."""

    @abc.abstractmethod
    def cost(self, batch_size: int, domain_size: int) -> StrategyCost:
        """Analytic PRF-work and peak-memory model for one invocation."""

    @abc.abstractmethod
    def plan(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int = 8,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> KernelPlan:
        """Device execution recipe for the simulator.

        Unlike :meth:`cost` (which mirrors the functional kernel's
        metered buffers), the plan's ``peak_mem_bytes`` models the real
        device: branch-parallel path seeds live in registers and
        cooperative-groups tiles in shared memory, so neither occupies
        global memory.

        With ``resident_keys=True`` the plan models serving from a
        :class:`KeyArena` already uploaded to the device: the per-batch
        key transfer (``host_bytes_in``) is amortized to zero and the
        arena instead occupies device memory for the plan's lifetime
        (``resident_bytes``), which the simulator's capacity check
        accounts for.
        """

    # -- shared pieces -------------------------------------------------

    @staticmethod
    def _depth(domain_size: int) -> int:
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        return ggm.log2_ceil(domain_size)

    def _plan_common(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int,
        prf_name: str,
        resident_keys: bool = False,
    ) -> dict:
        key_bytes = batch_size * key_size_bytes(table_entries, prf_name)
        return dict(
            strategy=self.name,
            batch_size=batch_size,
            table_entries=table_entries,
            entry_bytes=entry_bytes,
            fused=self.fused,
            host_bytes_in=0 if resident_keys else key_bytes,
            host_bytes_out=batch_size * entry_bytes,
            resident_bytes=key_bytes if resident_keys else 0,
            prf_name=prf_name,
            prf_cost=get_prf(prf_name).gpu_cost,
        )

    def _alloc_root(self, kb: KeyArena, meter: MemoryMeter) -> tuple[np.ndarray, np.ndarray]:
        seeds = meter.alloc_array(kb.roots[:, np.newaxis, :].copy())
        ts = meter.alloc_array(kb.root_ts[:, np.newaxis].copy())
        return seeds, ts

    def _expand_to_level(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        stop_level: int,
        workspace: ExpansionWorkspace | None = None,
        slot: str = "frontier",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Breadth-first expansion of the batch down to ``stop_level``.

        The growing frontier ping-pongs between two preallocated buffer
        pairs (level ``l`` reads one and writes prefix views of the
        other), replacing the old per-level frontier allocations.  With
        a ``workspace`` the buffer pairs (slot ``slot``) and the cipher
        staging copy persist across calls instead of being reallocated
        per batch.  For
        ``batch > 1`` the prefix view is non-contiguous, so the cipher
        still stages one contiguous copy of the *parent* frontier per
        level inside ``_expand_level_batch`` — equivalent to the
        pre-existing staging cost, not an extra one; a level-major
        frontier layout that removes it is future work.  The meter
        records the *live frontier* byte counts — parents plus freshly
        written children at each level — which is what the Figure 6
        analytic model describes.
        """
        if stop_level == 0:
            return self._alloc_root(kb, meter)
        b, cap = kb.batch, 1 << stop_level
        if workspace is not None:
            back_seeds, back_ts = workspace.frontier_pair(slot, b, cap)
        else:
            back_seeds = (
                np.empty((b, cap, 16), dtype=np.uint8),
                np.empty((b, cap, 16), dtype=np.uint8),
            )
            back_ts = (
                np.empty((b, cap), dtype=np.uint8),
                np.empty((b, cap), dtype=np.uint8),
            )
        seeds = back_seeds[0][:, :1]
        ts = back_ts[0][:, :1]
        seeds[:] = kb.roots[:, np.newaxis, :]
        ts[:] = kb.root_ts[:, np.newaxis]
        meter.alloc(seeds.nbytes + ts.nbytes)
        for level in range(stop_level):
            side = (level + 1) % 2
            width = 2 << level
            new_seeds = back_seeds[side][:, :width]
            new_ts = back_ts[side][:, :width]
            stage = None
            if workspace is not None:
                stage = workspace.stage(slot, b * (width >> 1))
            _expand_level_batch(
                prf,
                seeds,
                ts,
                kb.cw_seeds[:, level],
                kb.cw_t_left[:, level],
                kb.cw_t_right[:, level],
                out=(new_seeds, new_ts),
                stage=stage,
            )
            meter.alloc_arrays(new_seeds, new_ts)
            meter.free_arrays(seeds, ts)
            seeds, ts = new_seeds, new_ts
        return seeds, ts

    @staticmethod
    def _bfs_peak_bytes(batch_size: int, depth: int) -> int:
        """Peak metered bytes of `_expand_to_level(..., depth)` alone."""
        if depth == 0:
            return NODE_BYTES * batch_size
        # Parent frontier plus freshly-allocated children at the last level.
        return NODE_BYTES * batch_size * (2 ** (depth - 1) + 2**depth)


_REGISTRY: dict[str, type[Strategy]] = {}


def register_strategy(cls: type[Strategy]) -> type[Strategy]:
    """Class decorator adding a strategy to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_strategies() -> list[str]:
    """Names of all registered parallelization strategies."""
    return sorted(_REGISTRY)


def get_strategy(name: str, **params) -> Strategy:
    """Instantiate a registered strategy by name.

    Args:
        name: Registry name, e.g. ``"memory_bounded"``.
        **params: Forwarded to the strategy constructor (e.g.
            ``log_subtrees`` for :class:`MemoryBoundedTree`).

    Raises:
        KeyError: If ``name`` is not registered.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown strategy {name!r}; available: {available_strategies()}")
    return _REGISTRY[name](**params)


@register_strategy
class BranchParallel(Strategy):
    """One lane per leaf; every lane recomputes its root->leaf path.

    O(L log L) PRF blocks per query but no dependence between lanes:
    the whole batch is exposed as ``B * L`` parallel work items from the
    first wave, and a real kernel keeps the path seed in a register.
    Wins on small tables where the per-level launch/sync overheads of
    the breadth-first strategies dominate.
    """

    name = "branch_parallel"
    fused = True

    def _eval(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        # No ping-pong frontier to reuse: every level's children come
        # straight out of the cipher, so the workspace is unused here.
        b, n, domain = kb.batch, kb.depth, kb.domain_size
        leaf_idx = np.arange(domain, dtype=np.int64)
        seeds = meter.alloc_array(
            np.broadcast_to(kb.roots[:, np.newaxis, :], (b, domain, 16)).copy()
        )
        ts = meter.alloc_array(np.broadcast_to(kb.root_ts[:, np.newaxis], (b, domain)).copy())
        for level in range(n):
            bits = ((leaf_idx >> (n - 1 - level)) & 1).astype(np.uint8)
            flat = seeds.reshape(b * domain, 16)
            children = np.empty_like(flat)
            go_left = np.tile(bits == 0, b)
            if go_left.any():
                children[go_left] = prf.expand(flat[go_left], 0)
            go_right = ~go_left
            if go_right.any():
                children[go_right] = prf.expand(flat[go_right], 1)
            meter.alloc(children.nbytes + b * domain)
            child_ts = (children[:, 0] & 1).reshape(b, domain)
            children = children.reshape(b, domain, 16)
            corr = (
                seeds_to_u64(kb.cw_seeds[:, level])[:, np.newaxis, :]
                * ts.astype(np.uint64)[:, :, np.newaxis]
            )
            children.view(np.uint64).reshape(b, domain, 2)[:] ^= corr
            cw_t = np.where(
                bits[np.newaxis, :] == 0,
                kb.cw_t_left[:, level][:, np.newaxis],
                kb.cw_t_right[:, level][:, np.newaxis],
            ).astype(np.uint8)
            child_ts = (child_ts ^ (ts & cw_t)).astype(np.uint8)
            meter.free_arrays(seeds, ts)
            seeds, ts = children, child_ts
        values = _leaf_values_batch(seeds, ts, kb.output_cws, kb.negate)
        meter.free_arrays(seeds, ts)
        return values

    def cost(self, batch_size: int, domain_size: int) -> StrategyCost:
        n = self._depth(domain_size)
        peak = NODE_BYTES * batch_size * domain_size * (2 if n >= 1 else 1)
        return StrategyCost(
            strategy=self.name,
            batch_size=batch_size,
            domain_size=domain_size,
            prf_blocks=batch_size * domain_size * n,
            peak_mem_bytes=peak,
            parallel_width=batch_size * domain_size,
        )

    def plan(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int = 8,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> KernelPlan:
        n = self._depth(table_entries)
        width = batch_size * table_entries
        phase = KernelPhase(
            label="branch-walk+mac",
            prf_blocks=batch_size * table_entries * n,
            parallel_width=width,
            bytes_read=batch_size * n * NODE_BYTES
            + batch_size * table_entries * entry_bytes,
            bytes_written=batch_size * entry_bytes,
            mac_ops=batch_size * table_entries * max(1, entry_bytes // 8),
            launches=1,
            syncs=0,
            threads_per_block=self.threads_per_block,
            shared_mem_per_block=self.shared_mem_per_block,
        )
        # Path seeds live in registers; global memory holds only the
        # staged keys and the per-query accumulators.
        peak = batch_size * (key_size_bytes(table_entries, prf_name) + entry_bytes)
        return KernelPlan(
            phases=[phase],
            peak_mem_bytes=peak,
            **self._plan_common(
                batch_size, table_entries, entry_bytes, prf_name, resident_keys
            ),
        )


@register_strategy
class LevelByLevel(Strategy):
    """Breadth-first expansion with the frontier in global memory.

    O(L) PRF blocks but O(B L) live bytes, one kernel launch per level,
    and an unfused conversion + dot-product pass that re-reads the
    materialized shares from global memory.
    """

    name = "level_by_level"
    fused = False

    def _eval(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        seeds, ts = self._expand_to_level(kb, prf, meter, kb.depth, workspace)
        values = _leaf_values_batch(seeds, ts, kb.output_cws, kb.negate)
        meter.alloc_array(values)  # unfused: shares are materialized
        meter.free_arrays(seeds, ts)
        result = values[:, : kb.domain_size].copy() if kb.domain_size < values.shape[1] else values
        meter.free_array(values)
        return result

    def cost(self, batch_size: int, domain_size: int) -> StrategyCost:
        n = self._depth(domain_size)
        leaves = 2**n
        peak = max(
            self._bfs_peak_bytes(batch_size, n),
            NODE_BYTES * batch_size * leaves + 8 * batch_size * leaves,
        )
        return StrategyCost(
            strategy=self.name,
            batch_size=batch_size,
            domain_size=domain_size,
            prf_blocks=batch_size * (2 ** (n + 1) - 2),
            peak_mem_bytes=peak,
            parallel_width=batch_size * leaves,
        )

    def plan(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int = 8,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> KernelPlan:
        n = self._depth(table_entries)
        leaves = 2**n
        phases = [
            KernelPhase(
                label=f"level-{level}",
                prf_blocks=batch_size * 2**level,
                parallel_width=batch_size * 2**level,
                bytes_read=batch_size * 2 ** (level - 1) * NODE_BYTES + NODE_BYTES,
                bytes_written=batch_size * 2**level * NODE_BYTES,
                launches=1,
                syncs=1,
                threads_per_block=self.threads_per_block,
            )
            for level in range(1, n + 1)
        ]
        phases.append(
            KernelPhase(
                label="convert+mac",
                prf_blocks=0,
                parallel_width=batch_size * table_entries,
                bytes_read=batch_size * leaves * NODE_BYTES
                + batch_size * leaves * 8
                + table_entries * entry_bytes,
                bytes_written=batch_size * leaves * 8 + batch_size * entry_bytes,
                mac_ops=batch_size * table_entries * max(1, entry_bytes // 8),
                launches=2,
                syncs=1,
                threads_per_block=self.threads_per_block,
            )
        )
        return KernelPlan(
            phases=phases,
            peak_mem_bytes=self.cost(batch_size, table_entries).peak_mem_bytes,
            **self._plan_common(
                batch_size, table_entries, entry_bytes, prf_name, resident_keys
            ),
        )


@register_strategy
class MemoryBoundedTree(Strategy):
    """Top-of-tree breadth-first, then depth-first subtree lanes.

    The top ``k = log2(K)`` levels are expanded breadth-first to a
    frontier of K subtree roots per query; the K subtrees then run as
    parallel lanes, each walking its subtree depth-first with an
    explicit stack of at most ``d = n - k`` sibling nodes.  Live memory
    is O(B K log L) while PRF work stays at the optimal 2(L-1) blocks
    per query, and the leaf shares feed the table dot product in
    registers (fused — the paper's Table 4 kernel).

    Subtrees that lie entirely outside a non-power-of-two domain are
    never traversed.

    Args:
        log_subtrees: log2 of the per-query subtree count K (clamped to
            the tree depth).
    """

    name = "memory_bounded"
    fused = True

    def __init__(self, log_subtrees: int = 9):
        if log_subtrees < 0:
            raise ValueError("log_subtrees must be non-negative")
        self.log_subtrees = log_subtrees

    def _split(self, domain_size: int) -> tuple[int, int, int]:
        """Return (k, d, active_subtrees) for a domain."""
        n = self._depth(domain_size)
        k = min(self.log_subtrees, n)
        d = n - k
        active = _ceil_div(domain_size, 2**d)
        return k, d, active

    def _eval(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        b, domain = kb.batch, kb.domain_size
        k, d, active = self._split(domain)
        seeds, ts = self._expand_to_level(kb, prf, meter, k, workspace)
        if active < seeds.shape[1]:
            lane_seeds = seeds[:, :active].copy()
            lane_ts = ts[:, :active].copy()
            meter.alloc(lane_seeds.nbytes + lane_ts.nbytes)
            meter.free_arrays(seeds, ts)
        else:
            lane_seeds, lane_ts = seeds, ts

        out = np.empty((b, active, 2**d), dtype=np.uint64)
        cw64_l = [
            seeds_to_u64(np.repeat(kb.cw_seeds[:, k + j], active, axis=0))
            for j in range(d)
        ]
        cw_tl_l = [np.repeat(kb.cw_t_left[:, k + j], active) for j in range(d)]
        cw_tr_l = [np.repeat(kb.cw_t_right[:, k + j], active) for j in range(d)]
        next_leaf = [0]

        def emit(seeds_f: np.ndarray, ts_f: np.ndarray) -> None:
            values = ggm.convert_to_u64(seeds_f).reshape(b, active)
            values = values + ts_f.reshape(b, active).astype(np.uint64) * kb.output_cws[
                :, np.newaxis
            ]
            values[kb.negate] = np.uint64(0) - values[kb.negate]
            out[:, :, next_leaf[0]] = values
            next_leaf[0] += 1

        def descend(seeds_f: np.ndarray, ts_f: np.ndarray, level: int) -> None:
            if level == d:
                emit(seeds_f, ts_f)
                return
            left, right = prf.expand_pair(seeds_f)
            t_left = left[:, 0] & 1
            t_right = right[:, 0] & 1
            corr = cw64_l[level] * ts_f.astype(np.uint64)[:, np.newaxis]
            left = np.ascontiguousarray(left)
            right = np.ascontiguousarray(right)
            left.view(np.uint64)[:] ^= corr
            right.view(np.uint64)[:] ^= corr
            t_left = (t_left ^ (ts_f & cw_tl_l[level])).astype(np.uint8)
            t_right = (t_right ^ (ts_f & cw_tr_l[level])).astype(np.uint8)
            meter.alloc(left.nbytes + t_left.nbytes + right.nbytes + t_right.nbytes)
            descend(left, t_left, level + 1)
            meter.free(left.nbytes + t_left.nbytes)
            descend(right, t_right, level + 1)
            meter.free(right.nbytes + t_right.nbytes)

        descend(lane_seeds.reshape(b * active, 16), lane_ts.reshape(b * active), 0)
        meter.free_arrays(lane_seeds, lane_ts)
        flat = out.reshape(b, active * 2**d)
        return flat[:, :domain].copy() if domain < flat.shape[1] else flat

    def cost(self, batch_size: int, domain_size: int) -> StrategyCost:
        k, d, active = self._split(domain_size)
        lanes = batch_size * active
        candidates = [self._bfs_peak_bytes(batch_size, k)]
        if active < 2**k:
            candidates.append(NODE_BYTES * batch_size * (2**k + active))
        candidates.append(NODE_BYTES * lanes * (1 + 2 * d))
        blocks = batch_size * (2 ** (k + 1) - 2) + 2 * lanes * (2**d - 1)
        return StrategyCost(
            strategy=self.name,
            batch_size=batch_size,
            domain_size=domain_size,
            prf_blocks=blocks,
            peak_mem_bytes=max(candidates),
            parallel_width=lanes,
        )

    def plan(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int = 8,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> KernelPlan:
        k, d, active = self._split(table_entries)
        lanes = batch_size * active
        phases = [
            KernelPhase(
                label=f"top-level-{level}",
                prf_blocks=batch_size * 2**level,
                parallel_width=batch_size * 2**level,
                bytes_read=batch_size * 2 ** (level - 1) * NODE_BYTES + NODE_BYTES,
                bytes_written=batch_size * 2**level * NODE_BYTES,
                launches=1,
                syncs=1,
                threads_per_block=self.threads_per_block,
            )
            for level in range(1, k + 1)
        ]
        phases.append(
            KernelPhase(
                label="subtree-dfs+mac",
                prf_blocks=2 * lanes * (2**d - 1),
                parallel_width=lanes,
                bytes_read=lanes * NODE_BYTES
                + batch_size * table_entries * entry_bytes,
                bytes_written=batch_size * entry_bytes,
                mac_ops=batch_size * table_entries * max(1, entry_bytes // 8),
                launches=1,
                syncs=0,
                threads_per_block=self.threads_per_block,
            )
        )
        # Device footprint: the breadth-first frontier plus each lane's
        # depth-first stack (spilled to local memory).
        peak = NODE_BYTES * batch_size * 2**k + NODE_BYTES * lanes * (1 + d)
        return KernelPlan(
            phases=phases,
            peak_mem_bytes=peak,
            **self._plan_common(
                batch_size, table_entries, entry_bytes, prf_name, resident_keys
            ),
        )


@register_strategy
class CooperativeGroups(Strategy):
    """Single cooperative launch with shared-memory subtree tiles.

    The top of the tree is expanded with grid-wide syncs instead of
    kernel relaunches; each bottom subtree of ``T`` leaves is then
    expanded entirely inside one block's shared-memory tile (double
    buffered), so intermediate levels never touch global memory.  The
    tile's shared-memory demand evicts resident blocks, which the
    simulator prices as reduced occupancy.

    Args:
        log_tile: log2 of the tile's leaf count T (clamped to the tree
            depth).
    """

    name = "cooperative_groups"
    fused = True

    def __init__(self, log_tile: int = 9):
        if log_tile < 0:
            raise ValueError("log_tile must be non-negative")
        self.log_tile = log_tile

    @property
    def tile_leaves(self) -> int:
        return 2**self.log_tile

    def _split(self, domain_size: int) -> tuple[int, int, int]:
        """Return (top_depth m, tile_depth t, active_tiles)."""
        n = self._depth(domain_size)
        t = min(self.log_tile, n)
        m = n - t
        active = _ceil_div(domain_size, 2**t)
        return m, t, active

    def _eval(
        self,
        kb: KeyArena,
        prf: Prf,
        meter: MemoryMeter,
        workspace: ExpansionWorkspace | None = None,
    ) -> np.ndarray:
        b, domain = kb.batch, kb.domain_size
        m, t, active = self._split(domain)
        frontier_seeds, frontier_ts = self._expand_to_level(kb, prf, meter, m, workspace)
        out = np.empty((b, active * 2**t), dtype=np.uint64)
        # Double-buffered tile expansion: the same two buffer pairs are
        # reused for every tile and every level within a tile.  The
        # "tile" workspace slot is distinct from the "frontier" slot the
        # expansion above used, because the frontier views stay live
        # across the whole tile loop.
        tile_cap = 2**t
        if workspace is not None:
            tile_seeds, tile_ts = workspace.frontier_pair("tile", b, tile_cap)
        else:
            tile_seeds = (
                np.empty((b, tile_cap, 16), dtype=np.uint8),
                np.empty((b, tile_cap, 16), dtype=np.uint8),
            )
            tile_ts = (
                np.empty((b, tile_cap), dtype=np.uint8),
                np.empty((b, tile_cap), dtype=np.uint8),
            )
        for tile in range(active):
            seeds = tile_seeds[0][:, :1]
            ts = tile_ts[0][:, :1]
            seeds[:] = frontier_seeds[:, tile : tile + 1]
            ts[:] = frontier_ts[:, tile : tile + 1]
            meter.alloc(seeds.nbytes + ts.nbytes)
            for j in range(t):
                level = m + j
                side = (j + 1) % 2
                width = 2 << j
                new_seeds = tile_seeds[side][:, :width]
                new_ts = tile_ts[side][:, :width]
                stage = None
                if workspace is not None:
                    stage = workspace.stage("tile", b * (width >> 1))
                _expand_level_batch(
                    prf,
                    seeds,
                    ts,
                    kb.cw_seeds[:, level],
                    kb.cw_t_left[:, level],
                    kb.cw_t_right[:, level],
                    out=(new_seeds, new_ts),
                    stage=stage,
                )
                meter.alloc_arrays(new_seeds, new_ts)
                meter.free_arrays(seeds, ts)
                seeds, ts = new_seeds, new_ts
            values = _leaf_values_batch(seeds, ts, kb.output_cws, kb.negate)
            out[:, tile * 2**t : (tile + 1) * 2**t] = values
            meter.free_arrays(seeds, ts)
        meter.free_arrays(frontier_seeds, frontier_ts)
        return out[:, :domain].copy() if domain < out.shape[1] else out

    def cost(self, batch_size: int, domain_size: int) -> StrategyCost:
        m, t, active = self._split(domain_size)
        frontier = NODE_BYTES * batch_size * 2**m
        tile_peak = self._bfs_peak_bytes(batch_size, t)
        peak = max(self._bfs_peak_bytes(batch_size, m), frontier + tile_peak)
        blocks = batch_size * (2 ** (m + 1) - 2) + active * batch_size * 2 * (2**t - 1)
        return StrategyCost(
            strategy=self.name,
            batch_size=batch_size,
            domain_size=domain_size,
            prf_blocks=blocks,
            peak_mem_bytes=peak,
            parallel_width=batch_size * active * 2**t,
        )

    def plan(
        self,
        batch_size: int,
        table_entries: int,
        entry_bytes: int = 8,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> KernelPlan:
        m, t, active = self._split(table_entries)
        tile = 2**t
        shared = 2 * tile * NODE_BYTES  # double-buffered tile
        phases = [
            KernelPhase(
                label=f"coop-level-{level}",
                prf_blocks=batch_size * 2**level,
                parallel_width=batch_size * 2**level,
                bytes_read=batch_size * 2 ** (level - 1) * NODE_BYTES + NODE_BYTES,
                bytes_written=batch_size * 2**level * NODE_BYTES,
                launches=1 if level == 1 else 0,
                syncs=1,  # grid-wide sync, not a relaunch
                threads_per_block=self.threads_per_block,
                shared_mem_per_block=shared,
            )
            for level in range(1, m + 1)
        ]
        phases.append(
            KernelPhase(
                label="tile-expand+mac",
                prf_blocks=active * batch_size * 2 * (tile - 1),
                parallel_width=batch_size * active * tile,
                bytes_read=batch_size * 2**m * NODE_BYTES
                + batch_size * table_entries * entry_bytes,
                bytes_written=batch_size * entry_bytes,
                mac_ops=batch_size * table_entries * max(1, entry_bytes // 8),
                launches=1 if m == 0 else 0,
                syncs=0,
                threads_per_block=self.threads_per_block,
                shared_mem_per_block=shared,
            )
        )
        # Tiles stay in shared memory; global memory holds the frontier.
        peak = NODE_BYTES * batch_size * 2**m + batch_size * entry_bytes
        return KernelPlan(
            phases=phases,
            peak_mem_bytes=peak,
            **self._plan_common(
                batch_size, table_entries, entry_bytes, prf_name, resident_keys
            ),
        )
