"""GPU execution substrate for DPF-PIR (paper Section 3.2).

The paper's artifact is a set of CUDA kernels on an NVIDIA V100.  This
package substitutes that hardware with two tightly-coupled layers
(DESIGN.md, "Substitutions"):

* **Functional kernels** — every parallelization strategy
  (branch-parallel, level-by-level, memory-bounded tree traversal,
  cooperative-groups) is implemented as a real vectorized-numpy
  traversal whose PRF-call counts and peak live memory are metered and
  tested against the analytic formulas (Figure 6).
* **Performance model** — a wave-level simulator of a SIMT device
  (:mod:`repro.gpu.sim`) with occupancy, shared-memory, bandwidth, and
  launch-overhead effects, calibrated against the paper's published
  V100 numbers (Tables 4 and 5).  It produces the latency, throughput,
  and utilization series behind Figures 8, 9, 13, 14 and 15.

The scheduler (:mod:`repro.gpu.scheduler`) reproduces the paper's
batch- and table-size-aware strategy selection (Section 3.2.5).

:mod:`repro.gpu.arena` holds the serving-path data layer: a persistent
:class:`KeyArena` built from key objects or straight from wire bytes
(zero per-key Python objects), zero-copy sharding, a reusable
:class:`ExpansionWorkspace`, and — through the plans' resident-keys
mode — amortization of the per-batch PCIe key upload.
"""

from repro.gpu.arena import ExpansionWorkspace, KeyArena
from repro.gpu.device import A100, DeviceSpec, V100
from repro.gpu.kernel import KernelPhase, KernelPlan, KernelStats
from repro.gpu.memory import MemoryMeter
from repro.gpu.scheduler import Scheduler, select_strategy
from repro.gpu.sim import GpuSimulator
from repro.gpu.strategies import (
    BranchParallel,
    CooperativeGroups,
    LevelByLevel,
    MemoryBoundedTree,
    StrategyCost,
    available_strategies,
    get_strategy,
)
from repro.gpu.multigpu import MultiGpuExecutor

__all__ = [
    "DeviceSpec",
    "V100",
    "A100",
    "KeyArena",
    "ExpansionWorkspace",
    "MemoryMeter",
    "KernelPhase",
    "KernelPlan",
    "KernelStats",
    "GpuSimulator",
    "BranchParallel",
    "LevelByLevel",
    "MemoryBoundedTree",
    "CooperativeGroups",
    "StrategyCost",
    "available_strategies",
    "get_strategy",
    "Scheduler",
    "select_strategy",
    "MultiGpuExecutor",
]
