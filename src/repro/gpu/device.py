"""Device specifications for the SIMT performance model.

The V100 numbers are the paper's platform (Section 5.1).  The crypto
throughput constant is *calibrated*, not datasheet-derived: Table 4
reports 1,358 QPS for a 1M-entry table with AES-128, and a 1M-entry
full-domain evaluation costs ~2(L-1) PRF block evaluations, giving
~2.9e9 AES blocks/s device-wide for the fused memory-bounded kernel.
All other PRFs scale by their ``gpu_cost`` metadata (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU for the performance model.

    Attributes:
        name: Marketing name.
        num_sms: Streaming multiprocessors.
        max_threads_per_sm: Resident thread contexts per SM.
        warp_size: Threads per warp.
        max_blocks_per_sm: Resident block limit per SM.
        shared_mem_per_sm: Bytes of shared memory per SM.
        max_shared_mem_per_block: Bytes of shared memory one block may use.
        max_threads_per_block: CUDA block-size limit.
        global_mem_bytes: Device memory capacity.
        mem_bandwidth: Global-memory bandwidth, bytes/s.
        pcie_bandwidth: Host link bandwidth, bytes/s.
        aes_rate: Device-wide AES-128 block evaluations/s at full
            occupancy (calibration constant; see module docstring).
        int_mac_rate: Integer multiply-accumulate ops/s for the table
            dot products.
        kernel_launch_overhead: Seconds per kernel launch.
        sync_overhead: Seconds per device-wide barrier (grid sync or
            back-to-back launch dependency).
        per_query_overhead: Fixed per-query scheduling/copy cost in
            seconds (calibrated from the paper's small-table QPS).
    """

    name: str
    num_sms: int
    max_threads_per_sm: int
    warp_size: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int
    max_shared_mem_per_block: int
    max_threads_per_block: int
    global_mem_bytes: int
    mem_bandwidth: float
    pcie_bandwidth: float
    aes_rate: float
    int_mac_rate: float
    kernel_launch_overhead: float
    sync_overhead: float
    per_query_overhead: float

    @property
    def total_threads(self) -> int:
        """Maximum resident threads device-wide."""
        return self.num_sms * self.max_threads_per_sm

    def prf_rate(self, gpu_cost: float) -> float:
        """Device-wide PRF block rate for a PRF with the given relative cost."""
        return self.aes_rate / gpu_cost

    def occupancy(self, threads_per_block: int, shared_mem_per_block: int) -> float:
        """Fraction of thread contexts a kernel can keep resident.

        Mirrors the CUDA occupancy calculation: resident blocks per SM
        are limited by the block count cap, the shared-memory budget,
        and the thread-context budget.

        Returns:
            Occupancy in (0, 1]; 0.0 if the block cannot launch at all
            (e.g. its shared-memory demand exceeds the per-block limit).
        """
        if threads_per_block <= 0:
            return 0.0
        if threads_per_block > self.max_threads_per_block:
            return 0.0
        if shared_mem_per_block > self.max_shared_mem_per_block:
            return 0.0
        limits = [
            self.max_blocks_per_sm,
            self.max_threads_per_sm // threads_per_block,
        ]
        if shared_mem_per_block > 0:
            limits.append(self.shared_mem_per_sm // shared_mem_per_block)
        blocks = max(min(limits), 0)
        return min(1.0, blocks * threads_per_block / self.max_threads_per_sm)


V100 = DeviceSpec(
    name="V100-SXM2-16GB",
    num_sms=80,
    max_threads_per_sm=2048,
    warp_size=32,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    max_shared_mem_per_block=96 * 1024,
    max_threads_per_block=1024,
    global_mem_bytes=16 * 1024**3,
    mem_bandwidth=900e9,
    pcie_bandwidth=12e9,
    aes_rate=2.9e9,
    int_mac_rate=2.0e12,
    kernel_launch_overhead=5e-6,
    sync_overhead=10e-6,
    per_query_overhead=5e-6,
)

A100 = DeviceSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    max_threads_per_sm=2048,
    warp_size=32,
    max_blocks_per_sm=32,
    shared_mem_per_sm=164 * 1024,
    max_shared_mem_per_block=164 * 1024,
    max_threads_per_block=1024,
    global_mem_bytes=40 * 1024**3,
    mem_bandwidth=1555e9,
    pcie_bandwidth=25e9,
    aes_rate=5.4e9,  # scaled by SM count and clock vs the calibrated V100
    int_mac_rate=4.0e12,
    kernel_launch_overhead=5e-6,
    sync_overhead=10e-6,
    per_query_overhead=5e-6,
)
