"""Wave-level SIMT performance model for kernel plans.

Prices a :class:`~repro.gpu.kernel.KernelPlan` on a
:class:`~repro.gpu.device.DeviceSpec` and returns
:class:`~repro.gpu.kernel.KernelStats`.  The model is deliberately
simple but captures every first-order effect the paper measures:

* **Occupancy** — each phase's block shape is run through the CUDA
  occupancy calculation (:meth:`DeviceSpec.occupancy`); a shape that
  cannot launch makes the whole plan infeasible.
* **Exposed parallelism** — a phase whose ``parallel_width`` is below
  the device's resident-thread count cannot fill the machine, so its
  effective PRF/MAC rate scales down proportionally.  This is what
  makes the top tree levels latency-bound and small batches slow
  (the paper's Figures 8 and 9).
* **Roofline** — each phase costs the *maximum* of its compute time and
  its global-memory time, never the sum.
* **Fixed overheads** — kernel launches, device-wide syncs, a
  calibrated per-query cost, and PCIe transfers for keys in and answer
  shares out.  A resident-keys plan (``KernelPlan.resident_bytes``)
  has already uploaded its key arena, so its ``host_bytes_in`` is zero
  and the arena is charged against capacity instead.
* **Capacity** — a plan whose working set does not fit beside the
  resident table is reported with ``feasible=False`` (its timing
  fields are then upper bounds, as documented on ``KernelStats``).

The V100 constants in :mod:`repro.gpu.device` make the fused
memory-bounded kernel land on the paper's Table 4 calibration point
(1,358 QPS for AES-128 over a 1M-entry table); the test suite asserts
that to within 10%.

The simulator prices plans and nothing else — callers who want "run
this batch and tell me what it cost" go through a
:class:`~repro.exec.ExecutionBackend`, which drives the scheduler (and
therefore this model) behind one request API.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec, V100
from repro.gpu.kernel import KernelPhase, KernelPlan, KernelStats

HOST_PARSE_BANDWIDTH = 2.0e9
"""Modeled host-side wire-parse rate, bytes/s.

The vectorized :meth:`~repro.gpu.arena.KeyArena.from_wire` parse is one
``np.frombuffer`` + strided column slices — a streaming memcpy-class
pass over the wire buffer on the host CPU, not a device operation, so
it is priced against a host bandwidth constant rather than the device's
memory system.  2 GB/s is the order measured for the parse on one
commodity core; the serving pipeline hides this time entirely when
double-buffered ingest is on (see :meth:`GpuSimulator.pipelined_latency_s`).
"""


class GpuSimulator:
    """Prices kernel plans on one device.

    Args:
        device: The device model to simulate (default: the paper's
            calibrated V100).
    """

    def __init__(self, device: DeviceSpec = V100):
        self.device = device

    def free_mem_bytes(self, plan: KernelPlan) -> int:
        """Device memory left for the plan's working set.

        Both the replicated table and (in resident-keys mode) the
        uploaded key arena stay in device memory across the batch, so
        both are subtracted before the peak working set must fit.
        """
        return (
            self.device.global_mem_bytes
            - plan.table_entries * plan.entry_bytes
            - plan.resident_bytes
        )

    def _phase_rate_factor(self, phase: KernelPhase) -> tuple[float, bool]:
        """Fraction of peak device throughput a phase can sustain.

        Returns:
            ``(factor, launchable)`` where ``factor`` is in (0, 1] and
            ``launchable`` is False for block shapes the device rejects
            (those are priced at full rate but mark the plan
            infeasible).
        """
        device = self.device
        occ = device.occupancy(phase.threads_per_block, phase.shared_mem_per_block)
        if occ <= 0.0:
            return 1.0, False
        resident = device.total_threads * occ
        active = min(max(phase.parallel_width, 1), resident)
        return active / device.total_threads, True

    def simulate(self, plan: KernelPlan) -> KernelStats:
        """Price a plan; see the module docstring for the cost model."""
        device = self.device
        prf_rate = device.prf_rate(plan.prf_cost)

        compute_time = 0.0
        memory_time = 0.0
        elapsed = 0.0
        launches = 0
        syncs = 0
        prf_blocks = 0
        util_weighted = 0.0
        util_weight = 0.0
        launchable = True

        for phase in plan.phases:
            factor, ok = self._phase_rate_factor(phase)
            launchable = launchable and ok
            prf_time = phase.prf_blocks / (prf_rate * factor) if phase.prf_blocks else 0.0
            mac_time = (
                phase.mac_ops / (device.int_mac_rate * factor) if phase.mac_ops else 0.0
            )
            phase_compute = prf_time + mac_time
            phase_memory = (phase.bytes_read + phase.bytes_written) / device.mem_bandwidth
            compute_time += phase_compute
            memory_time += phase_memory
            elapsed += max(phase_compute, phase_memory)
            launches += phase.launches
            syncs += phase.syncs
            prf_blocks += phase.prf_blocks
            if prf_time > 0.0:
                util_weighted += prf_time * factor
                util_weight += prf_time

        overhead = (
            launches * device.kernel_launch_overhead
            + syncs * device.sync_overhead
            + plan.batch_size * device.per_query_overhead
        )
        transfer = (plan.host_bytes_in + plan.host_bytes_out) / device.pcie_bandwidth
        latency = elapsed + overhead + transfer

        feasible = launchable and plan.fits(self.free_mem_bytes(plan))
        utilization = util_weighted / util_weight if util_weight > 0.0 else 0.0
        throughput = plan.batch_size / latency if latency > 0.0 else 0.0
        return KernelStats(
            latency_s=latency,
            throughput_qps=throughput,
            utilization=utilization,
            peak_mem_bytes=plan.peak_mem_bytes,
            prf_blocks=prf_blocks,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            overhead_time_s=overhead + transfer,
            feasible=feasible,
        )

    def host_parse_s(self, plan: KernelPlan) -> float:
        """Modeled host-side wire-parse time for the plan's key batch.

        The bytes parsed are the plan's ``host_bytes_in`` (the wire key
        material crossing PCIe); a resident-keys plan has nothing to
        parse per batch, so its parse time is zero — exactly as its
        transfer time already is.
        """
        return plan.host_bytes_in / HOST_PARSE_BANDWIDTH

    def pipelined_latency_s(self, plan: KernelPlan, overlap: bool = True) -> float:
        """Steady-state per-batch latency with or without ingest overlap.

        Without overlap a serving loop alternates: parse batch N+1's
        wire keys, then expand batch N — per-batch cost is the *sum* of
        parse and kernel time.  With double-buffered ingest the parse of
        batch N+1 runs on the host while batch N's expansion occupies
        the device, so the steady-state cost is the *maximum* of the two
        stages (the classic two-stage software pipeline; the analogue of
        ``cp.async`` double-buffering inside a kernel).  The pipeline
        can only hide host work behind device work, so the floor is the
        kernel latency from :meth:`simulate`.
        """
        kernel = self.simulate(plan).latency_s
        parse = self.host_parse_s(plan)
        return max(kernel, parse) if overlap else kernel + parse
