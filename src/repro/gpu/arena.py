"""Persistent key arenas: stacked key material for the serving hot path.

A server answering a stream of PIR batches spends its constant factors
*around* the cryptography: re-packing `DpfKey` objects into stacked
arrays on every ``eval_batch`` call, re-stacking per multi-GPU shard,
and — worst of all — building one Python object per wire key before any
vectorized work can start.  :class:`KeyArena` removes all three:

* :meth:`KeyArena.from_keys` stacks key objects once (the former
  private ``_stack_keys`` in :mod:`repro.gpu.strategies`).
* :meth:`KeyArena.from_wire` parses a concatenated wire buffer
  (:func:`repro.dpf.keys.pack_keys`) with one ``np.frombuffer`` and a
  fixed-stride reshape — zero per-key Python object construction.
* Slicing (``arena[a:b]``) returns *views*, so
  :class:`~repro.gpu.multigpu.MultiGpuExecutor` shards a batch without
  copying a byte.

On the modeled device the arena is what stays resident in global memory
between batches (the kernel plans' ``resident_bytes``), which is what
lets the resident-keys serving mode amortize ``host_bytes_in`` to zero.

:class:`ExpansionWorkspace` is the companion scratch discipline: the
ping-pong frontier and tile buffers (and the cipher staging copy) that
the expansion loops would otherwise reallocate per call, kept alive and
grown on demand across repeated ``eval_batch`` invocations — PR 2's AES
scratch workspace, lifted to the expansion loop.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.dpf.ggm import log2_ceil
from repro.dpf.keys import (
    CW_BYTES,
    HEADER_BYTES,
    _HEADER_FMT,
    _MAGIC,
    _record_size,
    CorrectionWord,
    DpfKey,
)

KeySource = Union["KeyArena", Sequence[DpfKey], bytes, bytearray, memoryview]
"""Anything a batch entry point accepts as key material: an arena
(used as-is), a sequence of key objects (stacked), or a concatenated
wire buffer (parsed vectorized).  :meth:`KeyArena.ingest` is the single
normalization point."""


@dataclass(frozen=True, eq=False)
class KeyArena:
    """A batch of same-domain DPF keys in structure-of-arrays layout.

    This is the layout every strategy's vectorized traversal consumes
    directly, and the layout that would be uploaded once per batch to a
    real device.  All arrays share the leading batch axis; slicing the
    arena slices them as views.

    Attributes:
        batch: Number of keys B.
        depth: Tree depth n (``log_domain`` of every key).
        domain_size: Addressable indices L (shared by every key).
        prf_name: PRF registry name (shared by every key).
        roots: ``(B, 16)`` uint8 root seeds.
        root_ts: ``(B,)`` uint8 root control bits.
        cw_seeds: ``(B, n, 16)`` uint8 correction seeds.
        cw_t_left: ``(B, n)`` uint8 left control-bit corrections.
        cw_t_right: ``(B, n)`` uint8 right control-bit corrections.
        output_cws: ``(B,)`` uint64 output correction words.
        negate: ``(B,)`` bool — party-1 rows get sign-flipped.
    """

    batch: int
    depth: int
    domain_size: int
    prf_name: str
    roots: np.ndarray
    root_ts: np.ndarray
    cw_seeds: np.ndarray
    cw_t_left: np.ndarray
    cw_t_right: np.ndarray
    output_cws: np.ndarray
    negate: np.ndarray

    # -- construction --------------------------------------------------

    @classmethod
    def from_keys(cls, keys: list[DpfKey], prf_name: str | None = None) -> "KeyArena":
        """Stack key objects into an arena.

        Args:
            keys: Non-empty batch of same-domain, same-PRF keys.
            prf_name: When given, the PRF the evaluator will use; a
                mismatch raises instead of silently diverging.

        Raises:
            ValueError: On an empty batch, mixed domains/PRFs, or a
                ``prf_name`` mismatch.
        """
        if not keys:
            raise ValueError("need at least one key")
        first = keys[0]
        want_prf = prf_name if prf_name is not None else first.prf_name
        for key in keys:
            if key.prf_name != want_prf:
                raise ValueError(
                    f"key was generated for PRF {key.prf_name!r} but evaluation "
                    f"uses {want_prf!r}; the parties would not reconstruct"
                )
            if (key.domain_size, key.log_domain) != (first.domain_size, first.log_domain):
                raise ValueError("all keys in a batch must share the same domain")
        b, n = len(keys), first.log_domain
        if n:
            cw_seeds = np.array(
                [[cw.seed for cw in key.correction_words] for key in keys],
                dtype=np.uint8,
            ).reshape(b, n, 16)
            cw_bits = np.array(
                [
                    [(cw.t_left, cw.t_right) for cw in key.correction_words]
                    for key in keys
                ],
                dtype=np.uint8,
            ).reshape(b, n, 2)
            cw_tl = np.ascontiguousarray(cw_bits[:, :, 0])
            cw_tr = np.ascontiguousarray(cw_bits[:, :, 1])
        else:
            cw_seeds = np.zeros((b, 0, 16), dtype=np.uint8)
            cw_tl = np.zeros((b, 0), dtype=np.uint8)
            cw_tr = np.zeros((b, 0), dtype=np.uint8)
        return cls(
            batch=b,
            depth=n,
            domain_size=first.domain_size,
            prf_name=want_prf,
            roots=np.stack([k.root_seed for k in keys]),
            root_ts=np.array([k.root_t for k in keys], dtype=np.uint8),
            cw_seeds=cw_seeds,
            cw_t_left=cw_tl,
            cw_t_right=cw_tr,
            output_cws=np.array([k.output_cw for k in keys], dtype=np.uint64),
            negate=np.array([k.party == 1 for k in keys]),
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "KeyArena":
        """Parse a concatenated wire buffer into an arena, vectorized.

        The buffer is :func:`repro.dpf.keys.pack_keys` output:
        back-to-back fixed-size records (the size follows from the
        shared domain and PRF).  The whole parse is one
        ``np.frombuffer`` + fixed-stride reshape + column slices; no
        per-key Python objects are built.  Per-record validation
        (magic, party, homogeneous domain and PRF) is vectorized too.

        Raises:
            ValueError: On an empty/truncated buffer, bad magic, an
                invalid party byte, or records that do not all share the
                first record's domain and PRF.
        """
        if len(data) < HEADER_BYTES:
            raise ValueError("truncated DPF key batch")
        magic, _, depth, domain_size, _, prf_len = struct.unpack_from(_HEADER_FMT, data)
        if magic != _MAGIC:
            raise ValueError(f"bad DPF key magic {magic!r}")
        if domain_size <= 0 or log2_ceil(domain_size) != depth:
            raise ValueError(
                f"domain_size {domain_size} is inconsistent with tree depth {depth}"
            )
        record = _record_size(depth, prf_len)
        if len(data) % record:
            raise ValueError(
                f"wire buffer of {len(data)} bytes is not a whole number of "
                f"{record}-byte key records"
            )
        b = len(data) // record
        mat = np.frombuffer(data, dtype=np.uint8).reshape(b, record)

        if not (mat[:, :4] == np.frombuffer(_MAGIC, dtype=np.uint8)).all():
            raise ValueError("bad DPF key magic inside batch")
        parties = mat[:, 4]
        if not ((parties == 0) | (parties == 1)).all():
            raise ValueError("party must be 0 or 1")
        # Homogeneity: depth + domain (header bytes 5..9) and the PRF
        # name must match the first record, or the fixed stride (and the
        # batch itself) is meaningless.
        if not (mat[:, 5:10] == mat[0, 5:10]).all():
            raise ValueError("all keys in a batch must share the same domain")
        name_end = HEADER_BYTES + prf_len
        if not (mat[:, HEADER_BYTES - 1] == prf_len).all() or not (
            mat[:, HEADER_BYTES:name_end] == mat[0, HEADER_BYTES:name_end]
        ).all():
            raise ValueError("all keys in a batch must share the same PRF")
        prf_name = bytes(mat[0, HEADER_BYTES:name_end]).decode()

        output_cws = (
            np.ascontiguousarray(mat[:, 10:18]).view(np.dtype("<u8")).reshape(b)
        ).astype(np.uint64, copy=False)
        root_ts = mat[:, name_end].copy()
        roots = np.ascontiguousarray(mat[:, name_end + 1 : name_end + 17])
        cw = mat[:, name_end + 17 :].reshape(b, depth, CW_BYTES)
        cw_seeds = np.ascontiguousarray(cw[:, :, :16])
        bits = cw[:, :, 16]
        return cls(
            batch=b,
            depth=depth,
            domain_size=domain_size,
            prf_name=prf_name,
            roots=roots,
            root_ts=root_ts,
            cw_seeds=cw_seeds,
            cw_t_left=bits & np.uint8(1),
            cw_t_right=(bits >> np.uint8(1)) & np.uint8(1),
            output_cws=output_cws,
            negate=parties == 1,
        )

    @classmethod
    def ingest(cls, source: KeySource, prf_name: str | None = None) -> "KeyArena":
        """Normalize any accepted key source into a non-empty arena.

        This is the one batch-entry point the execution stack shares:
        strategies, the multi-GPU executor, and the
        :mod:`repro.exec` backends all route their ``keys`` argument
        through it instead of each re-implementing the
        arena/objects/wire dispatch.

        Args:
            source: An existing arena (returned as-is after validation),
                a sequence of :class:`DpfKey` objects (stacked via
                :meth:`from_keys`), or concatenated wire bytes (parsed
                via :meth:`from_wire`).
            prf_name: When given, the PRF the evaluator will use; a
                mismatch raises instead of silently diverging.

        Raises:
            ValueError: On an empty source, malformed wire bytes, mixed
                domains/PRFs, or a ``prf_name`` mismatch.
            TypeError: On a source of an unsupported type.
        """
        if isinstance(source, KeyArena):
            if source.batch == 0:
                raise ValueError("need at least one key")
            arena = source
        elif isinstance(source, (bytes, bytearray, memoryview)):
            arena = cls.from_wire(bytes(source))
        elif isinstance(source, Sequence) and not isinstance(source, str):
            return cls.from_keys(list(source), prf_name=prf_name)
        else:
            # str is a Sequence but never key material — reject it here
            # rather than dying on str.prf_name inside from_keys.
            raise TypeError(
                f"cannot ingest keys from {type(source).__name__}; pass a "
                "KeyArena, a sequence of DpfKey, or wire bytes"
            )
        if prf_name is not None:
            arena.require_prf(prf_name)
        return arena

    @classmethod
    def concat(cls, arenas: Sequence["KeyArena"]) -> "KeyArena":
        """Stack several same-shape arenas into one merged batch.

        This is the aggregation primitive the serving loop uses to fuse
        many concurrent clients' key batches into one kernel-sized
        batch: key ``i`` of arena ``j`` becomes row
        ``sum(len(arenas[:j])) + i`` of the result, so callers can slice
        the merged answers back out by offset.  The copy is one
        ``np.concatenate`` per field — no per-key Python objects.

        Args:
            arenas: Non-empty sequence of arenas sharing the same
                domain, depth, and PRF.  A single arena is returned
                as-is (no copy).

        Raises:
            ValueError: On an empty sequence or arenas whose domains or
                PRFs disagree (the merged batch would be meaningless).
        """
        if not arenas:
            raise ValueError("need at least one arena")
        first = arenas[0]
        for arena in arenas[1:]:
            if (arena.domain_size, arena.depth) != (first.domain_size, first.depth):
                raise ValueError("all arenas in a merge must share the same domain")
            if arena.prf_name != first.prf_name:
                raise ValueError("all arenas in a merge must share the same PRF")
        if len(arenas) == 1:
            return first
        return cls(
            batch=sum(arena.batch for arena in arenas),
            depth=first.depth,
            domain_size=first.domain_size,
            prf_name=first.prf_name,
            roots=np.concatenate([a.roots for a in arenas]),
            root_ts=np.concatenate([a.root_ts for a in arenas]),
            cw_seeds=np.concatenate([a.cw_seeds for a in arenas]),
            cw_t_left=np.concatenate([a.cw_t_left for a in arenas]),
            cw_t_right=np.concatenate([a.cw_t_right for a in arenas]),
            output_cws=np.concatenate([a.output_cws for a in arenas]),
            negate=np.concatenate([a.negate for a in arenas]),
        )

    def pad_to(self, total: int) -> "KeyArena":
        """Pad to ``total`` rows by repeating the last key.

        This is the pad half of the plan cache's pad-and-slice batch
        bucketing: a batch of 13 runs at the pow2 bucket of 16, with the
        last key duplicated into the 3 tail rows so every row is a
        well-formed key for the same domain and PRF.  Callers slice the
        answers back to the true batch (``answers[:batch]``), so the
        padded rows can never reach a client — duplicating a *real* key
        keeps the tail bit-exact-evaluable without inventing key
        material.

        Args:
            total: Target batch size, ``>= batch``.  Equal sizes return
                ``self`` (no copy).

        Raises:
            ValueError: If ``total`` is smaller than the current batch.
        """
        if total < self.batch:
            raise ValueError(
                f"cannot pad a batch of {self.batch} down to {total} rows"
            )
        if total == self.batch:
            return self
        pad = total - self.batch

        def padded(field: np.ndarray) -> np.ndarray:
            return np.concatenate([field, np.repeat(field[-1:], pad, axis=0)])

        return KeyArena(
            batch=total,
            depth=self.depth,
            domain_size=self.domain_size,
            prf_name=self.prf_name,
            roots=padded(self.roots),
            root_ts=padded(self.root_ts),
            cw_seeds=padded(self.cw_seeds),
            cw_t_left=padded(self.cw_t_left),
            cw_t_right=padded(self.cw_t_right),
            output_cws=padded(self.output_cws),
            negate=padded(self.negate),
        )

    # -- views and round trips -----------------------------------------

    def to_wire(self) -> bytes:
        """Serialize back to the concatenated wire format, vectorized.

        The exact inverse of :meth:`from_wire` (and byte-identical to
        ``pack_keys(arena.to_keys())``), built as one ``(B, record)``
        uint8 matrix with column assignments — no per-key Python
        objects.  This is how a multi-process backend ships a batch to
        worker processes: wire bytes cross the pipe, not pickled arrays,
        and the worker re-parses with the vectorized ``from_wire``.
        """
        prf_bytes = self.prf_name.encode()
        prf_len = len(prf_bytes)
        record = _record_size(self.depth, prf_len)
        b = self.batch
        mat = np.empty((b, record), dtype=np.uint8)
        # Header template with party and output_cw zeroed; both are
        # overwritten column-wise below.
        template = struct.pack(
            _HEADER_FMT, _MAGIC, 0, self.depth, self.domain_size, 0, prf_len
        )
        mat[:, : HEADER_BYTES + prf_len] = np.frombuffer(
            template + prf_bytes, dtype=np.uint8
        )
        mat[:, 4] = self.negate
        mat[:, 10:18] = (
            np.ascontiguousarray(self.output_cws, dtype="<u8")
            .view(np.uint8)
            .reshape(b, 8)
        )
        name_end = HEADER_BYTES + prf_len
        mat[:, name_end] = self.root_ts
        mat[:, name_end + 1 : name_end + 17] = self.roots
        cw = mat[:, name_end + 17 :].reshape(b, self.depth, CW_BYTES)
        cw[:, :, :16] = self.cw_seeds
        cw[:, :, 16] = self.cw_t_left | (self.cw_t_right << np.uint8(1))
        return mat.tobytes()

    def __eq__(self, other: object) -> bool:
        """Field-for-field equality (array fields compared by value)."""
        if not isinstance(other, KeyArena):
            return NotImplemented
        scalars = ("batch", "depth", "domain_size", "prf_name")
        arrays = (
            "roots",
            "root_ts",
            "cw_seeds",
            "cw_t_left",
            "cw_t_right",
            "output_cws",
            "negate",
        )
        return all(getattr(self, f) == getattr(other, f) for f in scalars) and all(
            np.array_equal(getattr(self, f), getattr(other, f)) for f in arrays
        )

    def __len__(self) -> int:
        return self.batch

    def __getitem__(self, index: slice) -> "KeyArena":
        """Zero-copy shard: every array of the result views this arena."""
        if not isinstance(index, slice):
            raise TypeError("KeyArena supports slice indexing only")
        roots = self.roots[index]
        return KeyArena(
            batch=roots.shape[0],
            depth=self.depth,
            domain_size=self.domain_size,
            prf_name=self.prf_name,
            roots=roots,
            root_ts=self.root_ts[index],
            cw_seeds=self.cw_seeds[index],
            cw_t_left=self.cw_t_left[index],
            cw_t_right=self.cw_t_right[index],
            output_cws=self.output_cws[index],
            negate=self.negate[index],
        )

    @property
    def nbytes(self) -> int:
        """Bytes of stacked key material (the device-resident footprint)."""
        return (
            self.roots.nbytes
            + self.root_ts.nbytes
            + self.cw_seeds.nbytes
            + self.cw_t_left.nbytes
            + self.cw_t_right.nbytes
            + self.output_cws.nbytes
            + self.negate.nbytes
        )

    def require_prf(self, prf_name: str) -> None:
        """Raise unless the arena's keys were generated for ``prf_name``."""
        if self.prf_name != prf_name:
            raise ValueError(
                f"key was generated for PRF {self.prf_name!r} but evaluation "
                f"uses {prf_name!r}; the parties would not reconstruct"
            )

    def to_keys(self) -> list[DpfKey]:
        """Reconstruct the per-key objects (tests and debugging only)."""
        keys = []
        for i in range(self.batch):
            cws = [
                CorrectionWord(
                    seed=self.cw_seeds[i, level].copy(),
                    t_left=int(self.cw_t_left[i, level]),
                    t_right=int(self.cw_t_right[i, level]),
                )
                for level in range(self.depth)
            ]
            keys.append(
                DpfKey(
                    party=1 if self.negate[i] else 0,
                    domain_size=self.domain_size,
                    log_domain=self.depth,
                    root_seed=self.roots[i].copy(),
                    root_t=int(self.root_ts[i]),
                    correction_words=cws,
                    output_cw=int(self.output_cws[i]),
                    prf_name=self.prf_name,
                )
            )
        return keys


class ExpansionWorkspace:
    """Grow-on-demand scratch buffers for repeated ``eval_batch`` calls.

    The breadth-first expansion loops ping-pong the frontier between two
    buffer pairs and stage one contiguous copy of the parent frontier
    per level for the fused cipher pass.  Without a workspace those
    buffers are reallocated on every call; a server evaluating batch
    after batch against the same arena passes one workspace instead and
    the buffers persist, growing monotonically to the largest shape
    seen.

    Buffers are handed out as prefix views, and every expansion loop
    fully overwrites a view before reading it, so reuse cannot leak
    state between calls (``test_workspace_reuse_is_bit_identical``).
    The returned share matrices are *never* workspace-backed — results
    stay valid after the next call.

    Not thread-safe: use one workspace per serving thread (or per
    device, as :class:`~repro.gpu.multigpu.MultiGpuExecutor` does).
    """

    def __init__(self):
        self._pairs: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        self._stages: dict[str, np.ndarray] = {}

    @property
    def nbytes(self) -> int:
        """Total bytes currently retained across all slots."""
        total = sum(sum(a.nbytes for a in bufs) for bufs in self._pairs.values())
        return total + sum(a.nbytes for a in self._stages.values())

    def frontier_pair(
        self, name: str, batch: int, cap: int
    ) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Ping-pong buffer pairs for one expansion loop.

        Args:
            name: Slot name; loops that are live at the same time (the
                cooperative-groups frontier and its tile loop) must use
                distinct names.
            batch: Leading batch dimension B.
            cap: Maximum frontier width the loop will write.

        Returns:
            ``(seed_pair, ts_pair)`` where each element of ``seed_pair``
            is a ``(B, cap, 16)`` uint8 view and each element of
            ``ts_pair`` a ``(B, cap)`` uint8 view.
        """
        entry = self._pairs.get(name)
        if entry is None or entry[0].shape[0] < batch or entry[0].shape[1] < cap:
            grow_b = batch if entry is None else max(batch, entry[0].shape[0])
            grow_c = cap if entry is None else max(cap, entry[0].shape[1])
            entry = (
                np.empty((grow_b, grow_c, 16), dtype=np.uint8),
                np.empty((grow_b, grow_c, 16), dtype=np.uint8),
                np.empty((grow_b, grow_c), dtype=np.uint8),
                np.empty((grow_b, grow_c), dtype=np.uint8),
            )
            self._pairs[name] = entry
        s0, s1, t0, t1 = entry
        return (
            (s0[:batch, :cap], s1[:batch, :cap]),
            (t0[:batch, :cap], t1[:batch, :cap]),
        )

    def stage(self, name: str, rows: int) -> np.ndarray:
        """A contiguous ``(rows, 16)`` uint8 staging buffer."""
        buf = self._stages.get(name)
        if buf is None or buf.shape[0] < rows:
            grow = rows if buf is None else max(rows, buf.shape[0])
            buf = np.empty((grow, 16), dtype=np.uint8)
            self._stages[name] = buf
        return buf[:rows]
