"""Kernel plans and statistics exchanged between strategies and the simulator.

A strategy describes the GPU work it would launch as a
:class:`KernelPlan` — an ordered list of :class:`KernelPhase` entries,
each carrying total PRF work, the instantaneous parallel width, global
memory traffic, and per-block resource demands.  The simulator
(:mod:`repro.gpu.sim`) prices a plan on a :class:`~repro.gpu.device
.DeviceSpec` and returns :class:`KernelStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelPhase:
    """One dependency-ordered slice of GPU work.

    Attributes:
        label: Human-readable phase name for breakdowns.
        prf_blocks: Total PRF block evaluations in the phase.
        parallel_width: Number of work items that could run
            concurrently (threads' worth of exposed parallelism).
        bytes_read: Global-memory bytes read.
        bytes_written: Global-memory bytes written.
        mac_ops: Integer multiply-accumulates (table dot products).
        launches: Kernel launches attributable to the phase.
        syncs: Device-wide barriers attributable to the phase.
        threads_per_block: Block shape used for occupancy.
        shared_mem_per_block: Shared-memory bytes per block.
    """

    label: str
    prf_blocks: int = 0
    parallel_width: int = 1
    bytes_read: int = 0
    bytes_written: int = 0
    mac_ops: int = 0
    launches: int = 1
    syncs: int = 0
    threads_per_block: int = 256
    shared_mem_per_block: int = 0


@dataclass(frozen=True)
class KernelPlan:
    """A strategy's complete execution recipe for one batch.

    Attributes:
        strategy: Strategy registry name.
        batch_size: Queries evaluated by the plan.
        table_entries: Table size L.
        entry_bytes: Bytes per table entry.
        fused: Whether DPF expansion and the table dot product are fused.
        phases: Ordered phases.
        peak_mem_bytes: Device-memory high-water mark (excludes the
            table itself, which is resident across batches).
        host_bytes_in: Host->device transfer (keys); zero for a
            resident-keys plan, whose arena was uploaded out of band.
        host_bytes_out: Device->host transfer (answer shares).
        resident_bytes: Device memory pinned for the plan's lifetime
            beyond the table — the uploaded key arena in resident-keys
            mode.  Counted against capacity like the table, not against
            the per-batch working set.
        prf_name: Registry name of the PRF the plan's work assumes.
        prf_cost: Relative per-block PRF cost (AES-128 = 1.0); the
            simulator divides the device's calibrated AES rate by this.
    """

    strategy: str
    batch_size: int
    table_entries: int
    entry_bytes: int
    fused: bool
    phases: list[KernelPhase] = field(default_factory=list)
    peak_mem_bytes: int = 0
    host_bytes_in: int = 0
    host_bytes_out: int = 0
    resident_bytes: int = 0
    prf_name: str = "aes128"
    prf_cost: float = 1.0

    @property
    def total_prf_blocks(self) -> int:
        return sum(p.prf_blocks for p in self.phases)

    @property
    def resident_keys(self) -> bool:
        """Whether the plan serves from an already-uploaded key arena."""
        return self.resident_bytes > 0

    def fits(self, free_mem_bytes: int) -> bool:
        """Whether the plan's working set fits in the given free memory."""
        return self.peak_mem_bytes <= free_mem_bytes


@dataclass(frozen=True)
class KernelStats:
    """Simulator output for one plan on one device.

    Attributes:
        latency_s: End-to-end batch latency (host transfers included).
        throughput_qps: Queries per second (batch_size / latency).
        utilization: Compute-time-weighted fraction of thread contexts
            active during PRF phases — the quantity on the y-axis of
            the paper's Figures 8b and 9.
        peak_mem_bytes: Device-memory high-water mark of the plan.
        prf_blocks: Total PRF evaluations executed.
        compute_time_s: Time attributed to PRF/MAC compute.
        memory_time_s: Time attributed to global-memory traffic.
        overhead_time_s: Launch/sync/per-query fixed costs.
        feasible: False when the plan cannot run (e.g. OOM or an
            unlaunchable block shape); other fields are then upper
            bounds rather than predictions.
    """

    latency_s: float
    throughput_qps: float
    utilization: float
    peak_mem_bytes: int
    prf_blocks: int
    compute_time_s: float
    memory_time_s: float
    overhead_time_s: float
    feasible: bool = True
