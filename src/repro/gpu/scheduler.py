"""Batch- and table-size-aware strategy selection (paper Section 3.2.5).

No single parallelization strategy wins everywhere: branch-parallel's
recomputation is cheap insurance on small trees where per-level
launches dominate, the breadth-first strategies go out of memory as
``batch * table`` grows, and the fused memory-bounded traversal wins
the paper's large-table regime.  :func:`select_strategy` reproduces the
paper's decision procedure by *simulating* every registered strategy's
kernel plan on the target device and picking the feasible plan with the
highest throughput.  :class:`Scheduler` adds memoization for serving
loops that make the same decision per (batch, table, PRF) shape.

This module is selection policy only — it is not a batch entry point.
Request-oriented execution (ingest keys, select, evaluate) lives in
:mod:`repro.exec`, whose backends call :meth:`Scheduler.select` behind
:class:`~repro.exec.EvalRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, V100
from repro.gpu.kernel import KernelPlan, KernelStats
from repro.gpu.sim import GpuSimulator
from repro.gpu.strategies import Strategy, available_strategies, get_strategy


def default_strategies() -> list[Strategy]:
    """One instance of every registered strategy, default parameters."""
    return [get_strategy(name) for name in available_strategies()]


@dataclass(frozen=True)
class Selection:
    """Outcome of one scheduling decision.

    Attributes:
        strategy: Name of the winning strategy.
        plan: The winner's kernel plan.
        stats: The winner's simulated statistics.
        rankings: Every candidate's ``(name, stats)``, feasible plans
            first in descending throughput, infeasible plans last.
    """

    strategy: str
    plan: KernelPlan
    stats: KernelStats
    rankings: tuple[tuple[str, KernelStats], ...]


def select_strategy(
    batch_size: int,
    table_entries: int,
    prf_name: str = "aes128",
    device: DeviceSpec = V100,
    entry_bytes: int = 8,
    strategies: list[Strategy] | None = None,
    resident_keys: bool = False,
) -> Selection:
    """Pick the fastest feasible strategy for a workload shape.

    Args:
        batch_size: Concurrent queries per kernel invocation.
        table_entries: Table size L.
        prf_name: Registered PRF the DPF keys use.
        device: Target device model.
        entry_bytes: Bytes per table entry.
        strategies: Candidate pool (default: every registered strategy
            with default parameters).
        resident_keys: Price the batch as served from an
            already-uploaded :class:`~repro.gpu.arena.KeyArena`
            (``host_bytes_in`` amortized to zero, arena charged against
            device capacity).

    Raises:
        ValueError: If ``batch_size``/``table_entries`` are not
            positive, or no candidate plan fits the device.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if table_entries <= 0:
        raise ValueError(f"table_entries must be positive, got {table_entries}")
    candidates = strategies if strategies is not None else default_strategies()
    if not candidates:
        raise ValueError("strategies pool is empty; nothing to select from")
    simulator = GpuSimulator(device)

    priced: list[tuple[str, KernelPlan, KernelStats]] = []
    for strategy in candidates:
        plan = strategy.plan(
            batch_size, table_entries, entry_bytes, prf_name, resident_keys
        )
        priced.append((strategy.name, plan, simulator.simulate(plan)))

    priced.sort(key=lambda item: (not item[2].feasible, -item[2].throughput_qps))
    rankings = tuple((name, stats) for name, _, stats in priced)
    best_name, best_plan, best_stats = priced[0]
    if not best_stats.feasible:
        raise ValueError(
            f"no feasible strategy for batch={batch_size}, "
            f"table={table_entries} on {device.name}"
        )
    return Selection(
        strategy=best_name, plan=best_plan, stats=best_stats, rankings=rankings
    )


class Scheduler:
    """Memoizing wrapper around :func:`select_strategy` for one device.

    Args:
        device: Target device model.
        entry_bytes: Bytes per table entry.
        strategies: Candidate pool shared across decisions (default:
            every registered strategy with default parameters).
    """

    def __init__(
        self,
        device: DeviceSpec = V100,
        entry_bytes: int = 8,
        strategies: list[Strategy] | None = None,
    ):
        self.device = device
        self.entry_bytes = entry_bytes
        self.strategies = strategies if strategies is not None else default_strategies()
        self._cache: dict[tuple[int, int, str, bool, int], Selection] = {}

    def select(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> Selection:
        """Cached :func:`select_strategy` for this scheduler's device.

        The memo key carries every input that shapes the decision:
        batch, table, PRF, residency, *and* ``entry_bytes``.  Residency
        changes ``host_bytes_in`` and device-capacity pressure, and
        ``entry_bytes`` changes the output-transfer and memory phases —
        two shapes differing in either must never share a cached
        selection (``entry_bytes`` is an instance attribute, but keying
        on it keeps the cache correct even if a caller mutates it
        between decisions).
        """
        key = (batch_size, table_entries, prf_name, resident_keys, self.entry_bytes)
        if key not in self._cache:
            self._cache[key] = select_strategy(
                batch_size,
                table_entries,
                prf_name=prf_name,
                device=self.device,
                entry_bytes=self.entry_bytes,
                strategies=self.strategies,
                resident_keys=resident_keys,
            )
        return self._cache[key]

    def throughput_qps(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> float:
        """Simulated best-strategy throughput for a workload shape."""
        return self.select(
            batch_size, table_entries, prf_name, resident_keys
        ).stats.throughput_qps

    def latency_s(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> float:
        """Simulated best-strategy batch latency for a workload shape.

        The direct cost probe next to :meth:`throughput_qps`: the same
        number a backend's :meth:`~repro.exec.ExecutionBackend.plan`
        reports as :attr:`~repro.exec.ExecutionPlan.latency_s` (which
        is what :class:`~repro.serve.FleetScheduler` ranks routing
        candidates by), exposed here for callers that want to price a
        shape without building an :class:`~repro.exec.EvalRequest`.
        Memoized per shape like every ``select`` result.
        """
        return self.select(
            batch_size, table_entries, prf_name, resident_keys
        ).stats.latency_s
