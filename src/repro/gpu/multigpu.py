"""Multi-GPU batch sharding (the paper's scale-out discussion, Fig. 15).

Two-server PIR parallelizes trivially across devices: the table is
replicated on every GPU and a batch of B queries is split into
per-device shards that run independently — there is no cross-device
communication, so batch latency is the *slowest* shard and throughput
adds up.  :class:`MultiGpuExecutor` models exactly that: it sizes
shards proportionally to each device's simulated best-strategy
throughput (so heterogeneous fleets stay balanced), runs the
:mod:`repro.gpu.scheduler` decision per shard, and can also execute the
sharded evaluation *functionally* against real DPF keys for end-to-end
testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.prf import Prf
from repro.gpu.arena import ExpansionWorkspace, KeyArena, KeySource
from repro.gpu.device import DeviceSpec
from repro.gpu.scheduler import Scheduler, Selection
from repro.gpu.strategies import get_strategy


@dataclass(frozen=True)
class ShardReport:
    """One device's slice of a multi-GPU batch."""

    device_name: str
    batch_size: int
    selection: Selection


@dataclass(frozen=True)
class MultiGpuStats:
    """Aggregate outcome of one sharded batch.

    Attributes:
        batch_size: Total queries across all shards.
        table_entries: Table size L (replicated per device).
        prf_name: PRF the plans assume.
        latency_s: Max shard latency (shards run concurrently).
        throughput_qps: ``batch_size / latency_s``.
        shards: Per-device reports for the non-empty shards.
    """

    batch_size: int
    table_entries: int
    prf_name: str
    latency_s: float
    throughput_qps: float
    shards: tuple[ShardReport, ...]

    @property
    def total_prf_blocks(self) -> int:
        return sum(s.selection.stats.prf_blocks for s in self.shards)


def _largest_remainder(total: int, weights: list[float]) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``."""
    weight_sum = sum(weights)
    if weight_sum <= 0:
        weights = [1.0] * len(weights)
        weight_sum = float(len(weights))
    exact = [total * w / weight_sum for w in weights]
    shares = [int(x) for x in exact]
    shortfall = total - sum(shares)
    by_remainder = sorted(
        range(len(weights)), key=lambda i: exact[i] - shares[i], reverse=True
    )
    for i in by_remainder[:shortfall]:
        shares[i] += 1
    return shares


class MultiGpuExecutor:
    """Shards query batches across a fleet of (possibly mixed) devices.

    Args:
        devices: One :class:`DeviceSpec` per GPU; pass the same spec N
            times for a homogeneous N-GPU node.
        entry_bytes: Bytes per table entry.
    """

    def __init__(self, devices: list[DeviceSpec] | DeviceSpec, entry_bytes: int = 8):
        if isinstance(devices, DeviceSpec):
            devices = [devices]
        if not devices:
            raise ValueError("need at least one device")
        self.devices = list(devices)
        self.schedulers = [Scheduler(d, entry_bytes=entry_bytes) for d in self.devices]
        # One persistent scratch workspace per device: repeated
        # eval_batch calls reuse the ping-pong frontier buffers instead
        # of reallocating them per shard per batch.
        self.workspaces = [ExpansionWorkspace() for _ in self.devices]

    def _shard_sizes(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str,
        resident_keys: bool = False,
    ) -> list[int]:
        """Throughput-proportional shard sizes (largest-remainder)."""
        probe = max(1, batch_size // len(self.devices))
        weights = [
            sched.throughput_qps(probe, table_entries, prf_name, resident_keys)
            for sched in self.schedulers
        ]
        return _largest_remainder(batch_size, weights)

    def execute(
        self,
        batch_size: int,
        table_entries: int,
        prf_name: str = "aes128",
        resident_keys: bool = False,
    ) -> MultiGpuStats:
        """Simulate one sharded batch; see :class:`MultiGpuStats`.

        With ``resident_keys=True`` every shard is priced as serving
        from an arena already uploaded to its device (no per-batch PCIe
        key transfer).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        shares = self._shard_sizes(batch_size, table_entries, prf_name, resident_keys)
        shards = []
        for device, scheduler, share in zip(self.devices, self.schedulers, shares):
            if share == 0:
                continue
            selection = scheduler.select(share, table_entries, prf_name, resident_keys)
            shards.append(
                ShardReport(device_name=device.name, batch_size=share, selection=selection)
            )
        latency = max(s.selection.stats.latency_s for s in shards)
        return MultiGpuStats(
            batch_size=batch_size,
            table_entries=table_entries,
            prf_name=prf_name,
            latency_s=latency,
            throughput_qps=batch_size / latency if latency > 0 else 0.0,
            shards=tuple(shards),
        )

    def eval_batch(
        self, keys: KeySource, prf: Prf, resident_keys: bool = False
    ) -> np.ndarray:
        """Functionally evaluate a key batch with the per-shard winners.

        Shards the keys exactly as :meth:`execute` would shard the
        batch, runs each shard through its scheduler-selected strategy,
        and concatenates the ``(B, L)`` share matrix in input order.

        ``keys`` is anything :meth:`KeyArena.ingest` accepts (arena,
        key objects, or wire bytes); each device's shard is a zero-copy
        slice of the resulting arena, and each device reuses its
        persistent :class:`ExpansionWorkspace`, so no key material is
        restacked per shard.  ``resident_keys`` only affects the
        simulated shard selection; the functional result is
        bit-identical either way.
        """
        arena = KeyArena.ingest(keys, prf_name=prf.name)
        table_entries = arena.domain_size
        shares = self._shard_sizes(len(arena), table_entries, prf.name, resident_keys)
        outputs = []
        start = 0
        for scheduler, workspace, share in zip(
            self.schedulers, self.workspaces, shares
        ):
            if share == 0:
                continue
            shard = arena[start : start + share]
            start += share
            selection = scheduler.select(share, table_entries, prf.name, resident_keys)
            strategy = get_strategy(selection.strategy)
            outputs.append(strategy.eval_batch(shard, prf, workspace=workspace))
        return np.concatenate(outputs, axis=0)
