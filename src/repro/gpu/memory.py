"""Live-memory metering for the functional kernels.

Figure 6 of the paper compares the *peak memory usage* of the DPF
parallelization strategies.  The functional kernels in
:mod:`repro.gpu.strategies` report every buffer they hold through a
:class:`MemoryMeter`, so tests can assert the analytic bounds
(O(BL) for level-by-level vs O(BK log L) for memory-bounded traversal)
against actual allocations rather than trusting the formulas.
"""

from __future__ import annotations

import numpy as np


class MemoryMeter:
    """Tracks current and peak live bytes across explicit alloc/free calls."""

    def __init__(self):
        self.current = 0
        self.peak = 0

    def alloc(self, nbytes: int) -> int:
        """Record an allocation; returns ``nbytes`` for chaining."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        self.current += nbytes
        self.peak = max(self.peak, self.current)
        return nbytes

    def free(self, nbytes: int) -> None:
        """Record a release.

        Raises:
            ValueError: If more bytes are freed than are live — that is
                always a kernel accounting bug worth failing loudly on.
        """
        if nbytes > self.current:
            raise ValueError(
                f"freeing {nbytes} bytes but only {self.current} live"
            )
        self.current -= nbytes

    def alloc_array(self, arr: np.ndarray) -> np.ndarray:
        """Record an array's storage and pass the array through."""
        self.alloc(arr.nbytes)
        return arr

    def free_array(self, arr: np.ndarray) -> None:
        """Record release of an array's storage."""
        self.free(arr.nbytes)

    def alloc_arrays(self, *arrays: np.ndarray) -> None:
        """Record several arrays' storage as one allocation event."""
        self.alloc(sum(arr.nbytes for arr in arrays))

    def free_arrays(self, *arrays: np.ndarray) -> None:
        """Record release of several arrays' storage at once."""
        self.free(sum(arr.nbytes for arr in arrays))

    def reset(self) -> None:
        self.current = 0
        self.peak = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryMeter(current={self.current}, peak={self.peak})"
