"""GPU-accelerated DPF-PIR reproduction.

Layers, bottom to top:

* :mod:`repro.crypto` — numpy-vectorized PRFs (AES-128, SHA-256,
  ChaCha20, SipHash, HighwayHash) behind one interface, with the
  paper's Table 5 cost metadata.
* :mod:`repro.dpf` — the Boyle--Gilboa--Ishai distributed point
  function: key generation, full-domain evaluation, serialization.
* :mod:`repro.gpu` — the paper's acceleration story: parallelization
  strategies, a calibrated V100 performance model, batch/table-aware
  strategy scheduling, and multi-GPU sharding.
* :mod:`repro.exec` — the unified execution layer: one request-oriented
  :class:`~repro.exec.ExecutionBackend` protocol over the substrate
  (single-GPU, multi-GPU, simulated oracle).
* :mod:`repro.pir` — the end-to-end two-server PIR pipeline: client
  query generation, wire framing, and table serving through any
  execution backend.
* :mod:`repro.serve` — the SLO-aware async serving layer: batch
  aggregation under latency deadlines, bounded-queue admission
  control, and model-priced fleet routing.
* :mod:`repro.bench` — the wall-clock benchmark harness behind
  ``BENCH_dpf.json`` (QPS, ns per PRF block, peak metered bytes,
  PIR round-trip and serving-session latency).

See ``docs/architecture.md`` for the layer diagram and a PIR
quickstart.
"""

from repro import bench, crypto, dpf, exec, gpu, pir, serve

__version__ = "1.0.0"

__all__ = [
    "bench",
    "crypto",
    "dpf",
    "exec",
    "gpu",
    "pir",
    "serve",
]
