"""Legacy setup shim so `pip install -e .` works on older setuptools."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6"],
        # The bench harness (repro.bench + scripts/bench.py) needs only
        # numpy; the extra exists so deployments can declare the intent
        # explicitly and future bench-only deps have a home.
        "bench": [],
    },
)
