"""Legacy setup shim so `pip install -e .` works on older setuptools."""

from setuptools import setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    # Declared explicitly (rather than find_packages) so a subpackage
    # missing from a wheel is a loud diff here, and so the import smoke
    # test (tests/test_imports.py) and this list stay in lockstep.
    packages=[
        "repro",
        "repro.baselines",
        "repro.bench",
        "repro.crypto",
        "repro.dpf",
        "repro.exec",
        "repro.gpu",
        "repro.obs",
        "repro.pir",
        "repro.serve",
    ],
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6"],
        # The bench harness (repro.bench + scripts/bench.py) needs only
        # numpy; the extra exists so deployments can declare the intent
        # explicitly and future bench-only deps have a home.
        "bench": [],
    },
)
