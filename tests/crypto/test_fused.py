"""The fused PRG fast path and T-table AES against the seed reference.

Three layers of pinning, per the perf-PR contract ("every output
bit-identical to the current reference"):

* ``expand_pair`` for *every* PRF equals two unfused ``expand`` calls
  (which themselves are pinned by known-answer vectors elsewhere).
* T-table AES equals the retained byte-pipeline reference on random
  batches, beyond the FIPS-197 known answers.
* Every GPU strategy stays bit-identical to ``repro.dpf.dpf.eval_full``
  for every PRF under the fused path (property-based, reusing the
  shared ``tests/strategies`` profiles).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import CountingPrf, available_prfs, get_prf
from repro.crypto.aes import (
    aes128_encrypt_blocks,
    aes128_encrypt_blocks_reference,
    expand_key,
)
from repro.crypto.prf import Prf
from repro.dpf import eval_full
from repro.dpf.ggm import apply_correction, expand_level, prg_expand
from repro.gpu import available_strategies, get_strategy

from tests.strategies import STANDARD_SETTINGS, dpf_cases, prf_names, rng_seeds

ALL_PRFS = available_prfs()
ALL_STRATEGIES = available_strategies()


class TestFusedExpandPair:
    @pytest.mark.parametrize("name", ALL_PRFS)
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 64])
    def test_matches_unfused_reference(self, name, n):
        prf = get_prf(name)
        rng = np.random.default_rng(123 + n)
        seeds = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
        left, right = prf.expand_pair(seeds)
        assert np.array_equal(left, prf.expand(seeds, 0))
        assert np.array_equal(right, prf.expand(seeds, 1))

    @pytest.mark.parametrize("name", ALL_PRFS)
    def test_returns_fresh_writable_arrays(self, name):
        # expand_level mutates the halves in place; aliasing the input
        # seeds (or returning read-only views) would corrupt the tree.
        prf = get_prf(name)
        seeds = np.zeros((4, 16), dtype=np.uint8)
        left, right = prf.expand_pair(seeds)
        left[:] ^= 0xFF
        right[:] ^= 0xFF
        assert np.array_equal(seeds, np.zeros((4, 16), dtype=np.uint8))

    @pytest.mark.parametrize("name", ALL_PRFS)
    def test_does_not_mutate_seeds(self, name):
        prf = get_prf(name)
        rng = np.random.default_rng(5)
        seeds = rng.integers(0, 256, size=(8, 16), dtype=np.uint8)
        before = seeds.copy()
        prf.expand_pair(seeds)
        assert np.array_equal(seeds, before)

    @given(name=prf_names, seed=rng_seeds, n=st.integers(1, 32))
    @STANDARD_SETTINGS
    def test_property_fused_equals_unfused(self, name, seed, n):
        prf = get_prf(name)
        rng = np.random.default_rng(seed)
        seeds = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
        left, right = prf.expand_pair(seeds)
        assert np.array_equal(left, prf.expand(seeds, 0))
        assert np.array_equal(right, prf.expand(seeds, 1))


class TestTTableAes:
    def test_matches_reference_pipeline_on_random_batches(self):
        rng = np.random.default_rng(0)
        rks = expand_key(bytes(range(16)))
        for n in (1, 2, 5, 333, 4096):
            blocks = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
            assert np.array_equal(
                aes128_encrypt_blocks(rks, blocks),
                aes128_encrypt_blocks_reference(rks, blocks),
            )

    def test_empty_batch(self):
        rks = expand_key(bytes(16))
        out = aes128_encrypt_blocks(rks, np.empty((0, 16), dtype=np.uint8))
        assert out.shape == (0, 16) and out.dtype == np.uint8

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(1)
        rks = expand_key(bytes(range(16)))
        blocks = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
        before = blocks.copy()
        aes128_encrypt_blocks(rks, blocks)
        assert np.array_equal(blocks, before)

    @given(
        key=st.binary(min_size=16, max_size=16),
        data=st.binary(min_size=16, max_size=16),
    )
    @STANDARD_SETTINGS
    def test_property_ttable_equals_reference(self, key, data):
        rks = expand_key(key)
        block = np.frombuffer(data, dtype=np.uint8).reshape(1, 16)
        assert np.array_equal(
            aes128_encrypt_blocks(rks, block),
            aes128_encrypt_blocks_reference(rks, block),
        )


class TestExpandPairStacked:
    @pytest.mark.parametrize("name", ALL_PRFS)
    def test_stacked_matches_unfused(self, name):
        prf = get_prf(name)
        rng = np.random.default_rng(11)
        seeds = rng.integers(0, 256, size=(7, 16), dtype=np.uint8)
        stacked = prf.expand_pair_stacked(seeds)
        assert stacked.shape == (14, 16) and stacked.dtype == np.uint8
        assert np.array_equal(stacked[:7], prf.expand(seeds, 0))
        assert np.array_equal(stacked[7:], prf.expand(seeds, 1))

    @pytest.mark.parametrize("name", ALL_PRFS)
    def test_expand_pair_halves_are_adjacent_views(self, name):
        # The concat-layout eval_full relies on expand_pair being a
        # zero-copy split of the stacked buffer: the halves must sit
        # back to back in one allocation, not in two.
        prf = get_prf(name)
        rng = np.random.default_rng(12)
        seeds = rng.integers(0, 256, size=(5, 16), dtype=np.uint8)
        left, right = prf.expand_pair(seeds)
        assert left.base is not None and left.base is right.base
        assert right.ctypes.data - left.ctypes.data == 5 * 16
        assert left.flags["C_CONTIGUOUS"] and right.flags["C_CONTIGUOUS"]

    def test_base_class_fallback_stacks_unfused_halves(self):
        class SplitPrf(Prf):
            name = "split"

            def expand(self, seeds, tweak):
                return np.full_like(seeds, tweak + 1)

        prf = SplitPrf()
        seeds = np.zeros((3, 16), dtype=np.uint8)
        stacked = prf.expand_pair_stacked(seeds)
        assert np.all(stacked[:3] == 1) and np.all(stacked[3:] == 2)
        left, right = prf.expand_pair(seeds)
        assert np.all(left == 1) and np.all(right == 2)


class TestExpandLevel:
    """ggm.expand_level's fused rewrite and out= buffers vs first principles."""

    def _reference(self, prf, seeds, ts, cw_seed, cw_tl, cw_tr):
        # The seed semantics, spelled out with the unfused primitives.
        s_left, t_left, s_right, t_right = prg_expand(prf, seeds, ts)
        s_left, t_left = apply_correction(s_left, t_left, ts, cw_seed, cw_tl)
        s_right, t_right = apply_correction(s_right, t_right, ts, cw_seed, cw_tr)
        n = seeds.shape[0]
        out_seeds = np.empty((2 * n, 16), dtype=np.uint8)
        out_ts = np.empty(2 * n, dtype=np.uint8)
        out_seeds[0::2], out_seeds[1::2] = s_left, s_right
        out_ts[0::2], out_ts[1::2] = t_left, t_right
        return out_seeds, out_ts

    @pytest.mark.parametrize("name", ALL_PRFS)
    @pytest.mark.parametrize("use_out", [False, True])
    def test_matches_unfused_reference(self, name, use_out):
        prf = get_prf(name)
        rng = np.random.default_rng(17)
        n = 9
        seeds = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
        ts = rng.integers(0, 2, size=n, dtype=np.uint8)
        cw_seed = rng.integers(0, 256, size=16, dtype=np.uint8)
        want = self._reference(prf, seeds, ts, cw_seed, 1, 0)
        out = None
        if use_out:
            out = (np.empty((2 * n, 16), dtype=np.uint8), np.empty(2 * n, dtype=np.uint8))
        got = expand_level(prf, seeds, ts, cw_seed, 1, 0, out=out)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])
        if use_out:
            assert got[0] is out[0] and got[1] is out[1]


class TestCountingPrfFusedPath:
    def test_expand_pair_counts_blocks_not_invocations(self):
        counting = CountingPrf(get_prf("chacha20"))
        seeds = np.zeros((5, 16), dtype=np.uint8)
        counting.expand_pair(seeds)
        # One cipher invocation, but 2N PRF blocks — the Figure 6
        # analytic counts are in blocks and must not halve.
        assert counting.calls == 1
        assert counting.blocks == 10

    def test_expand_pair_is_transparent(self):
        inner = get_prf("siphash")
        counting = CountingPrf(inner)
        rng = np.random.default_rng(2)
        seeds = rng.integers(0, 256, size=(6, 16), dtype=np.uint8)
        got = counting.expand_pair(seeds)
        want = inner.expand_pair(seeds)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


class TestStrategiesStayBitIdentical:
    """Fused fast path vs the reference, across the full PRF matrix."""

    @given(case=dpf_cases(max_domain=64), name=st.sampled_from(ALL_STRATEGIES))
    @STANDARD_SETTINGS
    def test_property_all_prfs_all_strategies(self, case, name):
        (k0, k1), prf = case.keys()
        strategy = get_strategy(name)
        for key in (k0, k1):
            assert np.array_equal(strategy.eval_full(key, prf), eval_full(key, prf))
