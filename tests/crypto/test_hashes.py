"""SHA-256, ChaCha20, SipHash, HighwayHash known-answer and property tests."""

import hashlib

import numpy as np
import pytest

from repro.crypto.chacha20 import ChaCha20Prf, chacha20_keystream, quarter_round
from repro.crypto.highwayhash import HighwayHashPrf
from repro.crypto.sha256 import Sha256Prf, sha256
from repro.crypto.siphash import SipHashPrf, siphash24


class TestSha256:
    def test_abc_vector(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_empty_vector(self):
        assert sha256(b"") == hashlib.sha256(b"").digest()

    @pytest.mark.parametrize("length", [0, 1, 55, 56, 63, 64, 65, 200])
    def test_matches_hashlib_across_padding_boundaries(self, length):
        msg = bytes(range(256))[:length] * 1
        assert sha256(msg) == hashlib.sha256(msg).digest()

    def test_prf_matches_digest_construction(self):
        prf = Sha256Prf()
        seed = np.arange(16, dtype=np.uint8).reshape(1, 16)
        out = prf.expand(seed, 7)
        expected = hashlib.sha256(
            seed.tobytes() + (7).to_bytes(4, "big")
        ).digest()[:16]
        assert out.tobytes() == expected


class TestChaCha20:
    def test_rfc8439_quarter_round(self):
        state = np.zeros((1, 16), dtype=np.uint32)
        state[0, 0] = 0x11111111
        state[0, 1] = 0x01020304
        state[0, 2] = 0x9B8D6F43
        state[0, 3] = 0x01234567
        quarter_round(state, 0, 1, 2, 3)
        assert state[0, 0] == 0xEA2A92F4
        assert state[0, 1] == 0xCB1CF8CE
        assert state[0, 2] == 0x4581472E
        assert state[0, 3] == 0x5881C4BB

    def test_rfc8439_block_function(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        stream = chacha20_keystream(key, 1, nonce, 64)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert stream == expected

    def test_keystream_is_deterministic_and_extending(self):
        key = bytes(32)
        nonce = bytes(12)
        short = chacha20_keystream(key, 0, nonce, 32)
        long = chacha20_keystream(key, 0, nonce, 96)
        assert long[:32] == short

    def test_prf_shape(self):
        prf = ChaCha20Prf()
        out = prf.expand(np.zeros((5, 16), dtype=np.uint8), 3)
        assert out.shape == (5, 16)


class TestSipHash:
    def test_reference_vector_empty_message(self):
        # From the SipHash reference implementation vectors
        # (key = 00..0f, empty message).
        key = bytes(range(16))
        assert siphash24(key, b"") == 0x726FDB47DD0E0E31

    def test_reference_vector_one_byte(self):
        key = bytes(range(16))
        assert siphash24(key, b"\x00") == 0x74F839C593DC67FD

    def test_reference_vector_eight_bytes(self):
        key = bytes(range(16))
        assert siphash24(key, bytes(range(8))) == 0x93F5F5799A932462

    def test_batch_matches_scalar(self):
        prf = SipHashPrf()
        rng = np.random.default_rng(3)
        seeds = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        out = prf.expand(seeds, 5)
        for i in range(16):
            lo = siphash24(seeds[i].tobytes(), (10).to_bytes(8, "little"))
            hi = siphash24(seeds[i].tobytes(), (11).to_bytes(8, "little"))
            expected = lo.to_bytes(8, "little") + hi.to_bytes(8, "little")
            assert out[i].tobytes() == expected


class TestHighwayHash:
    def test_deterministic(self):
        prf = HighwayHashPrf()
        seeds = np.arange(32, dtype=np.uint8).reshape(2, 16)
        assert np.array_equal(prf.expand(seeds, 0), prf.expand(seeds, 0))

    def test_tweak_separation(self):
        prf = HighwayHashPrf()
        seeds = np.zeros((4, 16), dtype=np.uint8)
        assert not np.array_equal(prf.expand(seeds, 0), prf.expand(seeds, 1))

    def test_distinct_seeds_distinct_outputs(self):
        prf = HighwayHashPrf()
        rng = np.random.default_rng(4)
        seeds = rng.integers(0, 256, size=(512, 16), dtype=np.uint8)
        seeds = np.unique(seeds, axis=0)
        out = prf.expand(seeds, 0)
        assert np.unique(out, axis=0).shape[0] == seeds.shape[0]
