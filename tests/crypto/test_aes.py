"""AES-128 known-answer and structural tests."""

import numpy as np
import pytest

from repro.crypto.aes import (
    SBOX,
    SHIFT_ROWS_PERM,
    Aes128,
    aes128_encrypt_blocks,
    expand_key,
)


def _encrypt_one(key_hex: str, pt_hex: str) -> str:
    round_keys = expand_key(bytes.fromhex(key_hex))
    block = np.frombuffer(bytes.fromhex(pt_hex), dtype=np.uint8).reshape(1, 16)
    return aes128_encrypt_blocks(round_keys, block).tobytes().hex()


class TestKnownAnswers:
    def test_fips197_appendix_c(self):
        # FIPS-197 Appendix C.1 example vector.
        assert (
            _encrypt_one(
                "000102030405060708090a0b0c0d0e0f",
                "00112233445566778899aabbccddeeff",
            )
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_fips197_appendix_b(self):
        # FIPS-197 Appendix B worked example.
        assert (
            _encrypt_one(
                "2b7e151628aed2a6abf7158809cf4f3c",
                "3243f6a8885a308d313198a2e0370734",
            )
            == "3925841d02dc09fbdc118597196a0b32"
        )


class TestSboxProperties:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX.tolist()) == list(range(256))

    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_has_no_fixed_points(self):
        assert not np.any(SBOX == np.arange(256, dtype=np.uint8))

    def test_shift_rows_is_a_permutation(self):
        assert sorted(SHIFT_ROWS_PERM.tolist()) == list(range(16))


class TestKeySchedule:
    def test_shape(self):
        rks = expand_key(bytes(16))
        assert rks.shape == (11, 16)
        assert rks.dtype == np.uint8

    def test_first_round_key_is_the_cipher_key(self):
        key = bytes(range(16))
        rks = expand_key(key)
        assert rks[0].tobytes() == key

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            expand_key(bytes(15))


class TestBatchConsistency:
    def test_batch_matches_singles(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
        rks = expand_key(bytes(range(16)))
        batch = aes128_encrypt_blocks(rks, blocks)
        for i in range(blocks.shape[0]):
            single = aes128_encrypt_blocks(rks, blocks[i : i + 1])
            assert np.array_equal(batch[i], single[0])

    def test_encryption_is_injective_on_sample(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 256, size=(256, 16), dtype=np.uint8)
        blocks = np.unique(blocks, axis=0)
        rks = expand_key(bytes(range(16)))
        out = aes128_encrypt_blocks(rks, blocks)
        assert np.unique(out, axis=0).shape[0] == blocks.shape[0]


class TestAesPrf:
    def test_expand_shape_and_dtype(self):
        prf = Aes128()
        seeds = np.zeros((8, 16), dtype=np.uint8)
        out = prf.expand(seeds, 0)
        assert out.shape == (8, 16)
        assert out.dtype == np.uint8

    def test_tweaks_are_domain_separated(self):
        prf = Aes128()
        seeds = np.zeros((4, 16), dtype=np.uint8)
        assert not np.array_equal(prf.expand(seeds, 0), prf.expand(seeds, 1))

    def test_expand_does_not_mutate_seeds(self):
        prf = Aes128()
        seeds = np.arange(32, dtype=np.uint8).reshape(2, 16)
        before = seeds.copy()
        prf.expand(seeds, 1)
        assert np.array_equal(seeds, before)

    def test_rejects_bad_shape(self):
        prf = Aes128()
        with pytest.raises(ValueError):
            prf.expand(np.zeros((4, 8), dtype=np.uint8), 0)


class TestThreadSafety:
    def test_concurrent_encryption_is_bit_exact(self):
        # The grow-on-demand scratch workspace is thread-local:
        # overlapped serving runs each party's dispatch on its own
        # executor thread, so two expansions encrypt concurrently in
        # one process.  A shared workspace let those scribble over each
        # other's round state (every answer of a two-party overlapped
        # burst came back wrong); per-thread buffers must keep every
        # concurrent call bit-exact.
        import threading

        rng = np.random.default_rng(0)
        rks = expand_key(bytes(range(16)))
        inputs = [
            rng.integers(0, 256, size=(batch, 16), dtype=np.uint8)
            for batch in (1, 7, 64, 256)
        ]
        expected = [aes128_encrypt_blocks(rks, blocks) for blocks in inputs]

        failures = []
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()  # maximize real overlap between threads
            for _ in range(50):
                got = aes128_encrypt_blocks(rks, inputs[index])
                if not np.array_equal(got, expected[index]):
                    failures.append(index)
                    return

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, f"threads {failures} saw corrupted ciphertext"
