"""Registry, metadata, and statistical sanity tests across all PRFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import CountingPrf, available_prfs, get_prf

ALL_PRFS = ["aes128", "sha256", "chacha20", "siphash", "highwayhash"]


class TestRegistry:
    def test_all_five_paper_prfs_registered(self):
        assert set(ALL_PRFS) <= set(available_prfs())

    def test_unknown_prf_raises(self):
        with pytest.raises(KeyError):
            get_prf("des")

    def test_cost_metadata_reflects_table5_ordering(self):
        # Table 5 (GPU, 1M entries): SipHash > ChaCha20 > HighwayHash >
        # AES-128 ~ SHA-256.  Lower cost = faster.
        costs = {name: get_prf(name).gpu_cost for name in ALL_PRFS}
        assert costs["siphash"] < costs["chacha20"] < costs["highwayhash"]
        assert costs["highwayhash"] < costs["aes128"] <= costs["sha256"]

    def test_standardized_flags(self):
        assert get_prf("aes128").standardized
        assert get_prf("chacha20").standardized
        assert get_prf("sha256").standardized
        assert not get_prf("siphash").standardized
        assert not get_prf("highwayhash").standardized


@pytest.mark.parametrize("name", ALL_PRFS)
class TestCommonContract:
    def test_shape_and_dtype(self, name):
        prf = get_prf(name)
        seeds = np.zeros((10, 16), dtype=np.uint8)
        out = prf.expand(seeds, 0)
        assert out.shape == (10, 16)
        assert out.dtype == np.uint8

    def test_deterministic(self, name):
        prf = get_prf(name)
        rng = np.random.default_rng(7)
        seeds = rng.integers(0, 256, size=(6, 16), dtype=np.uint8)
        assert np.array_equal(prf.expand(seeds, 2), prf.expand(seeds, 2))

    def test_batch_equals_elementwise(self, name):
        prf = get_prf(name)
        rng = np.random.default_rng(8)
        seeds = rng.integers(0, 256, size=(9, 16), dtype=np.uint8)
        batch = prf.expand(seeds, 1)
        for i in range(9):
            assert np.array_equal(batch[i], prf.expand(seeds[i : i + 1], 1)[0])

    def test_output_bits_are_balanced(self, name):
        # A cheap avalanche sanity check: over random seeds, each output
        # bit should be ~50% ones.  Catches gross implementation bugs
        # (stuck lanes, endianness truncation) without being a real
        # randomness test.
        prf = get_prf(name)
        rng = np.random.default_rng(9)
        seeds = rng.integers(0, 256, size=(2048, 16), dtype=np.uint8)
        out = prf.expand(seeds, 0)
        ones = np.unpackbits(out, axis=1).mean()
        assert 0.47 < ones < 0.53

    def test_expand_pair_halves_differ(self, name):
        prf = get_prf(name)
        seeds = np.zeros((3, 16), dtype=np.uint8)
        left, right = prf.expand_pair(seeds)
        assert not np.array_equal(left, right)


class TestCountingPrf:
    def test_counts_calls_and_blocks(self):
        prf = CountingPrf(get_prf("chacha20"))
        seeds = np.zeros((5, 16), dtype=np.uint8)
        prf.expand(seeds, 0)
        prf.expand(seeds, 1)
        assert prf.calls == 2
        assert prf.blocks == 10
        prf.reset()
        assert prf.calls == 0
        assert prf.blocks == 0

    def test_transparent_output(self):
        inner = get_prf("aes128")
        wrapped = CountingPrf(inner)
        seeds = np.arange(16, dtype=np.uint8).reshape(1, 16)
        assert np.array_equal(wrapped.expand(seeds, 0), inner.expand(seeds, 0))


@given(
    data=st.binary(min_size=16, max_size=16),
    tweak=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=25, deadline=None)
def test_property_aes_expand_is_seed_dependent(data, tweak):
    prf = get_prf("aes128")
    seed = np.frombuffer(data, dtype=np.uint8).reshape(1, 16)
    flipped = seed.copy()
    flipped[0, 0] ^= 1
    assert not np.array_equal(prf.expand(seed, tweak), prf.expand(flipped, tweak))
