"""Package-surface smoke test.

Regression test for the bug this layer originally shipped with: the
``repro.gpu`` docstring advertised modules that did not exist, so
``import repro.gpu`` raised ``ModuleNotFoundError``.  Every public name
each package exports must import and resolve.
"""

import importlib

import pytest

PACKAGES = ["repro", "repro.crypto", "repro.dpf", "repro.gpu", "repro.bench"]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_every_exported_name_resolves(package):
    module = importlib.import_module(package)
    assert module.__all__, f"{package} exports nothing"
    assert len(set(module.__all__)) == len(module.__all__)
    for name in module.__all__:
        assert getattr(module, name) is not None
