"""Package-surface smoke test.

Regression test for the bug this layer originally shipped with: the
``repro.gpu`` docstring advertised modules that did not exist, so
``import repro.gpu`` raised ``ModuleNotFoundError``.  Every public name
each package exports must import and resolve.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.crypto",
    "repro.dpf",
    "repro.gpu",
    "repro.exec",
    "repro.pir",
    "repro.serve",
    "repro.obs",
    "repro.bench",
    "repro.baselines",
]


def test_setup_py_declares_every_package():
    """setup.py's explicit package list must cover this smoke list."""
    import ast
    import pathlib

    setup_py = pathlib.Path(__file__).resolve().parent.parent / "setup.py"
    tree = ast.parse(setup_py.read_text())
    declared = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.keyword) and node.arg == "packages":
            declared = set(ast.literal_eval(node.value))
    assert declared, "setup.py must declare packages explicitly"
    assert set(PACKAGES) <= declared


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_every_exported_name_resolves(package):
    module = importlib.import_module(package)
    assert module.__all__, f"{package} exports nothing"
    assert len(set(module.__all__)) == len(module.__all__)
    for name in module.__all__:
        assert getattr(module, name) is not None
