"""Wire-format arithmetic, malformed-input handling, and batch framing.

Three claims: ``DpfKey.size_bytes`` is pure arithmetic that always
matches the serializer; ``from_bytes`` rejects every malformed buffer
with a ``ValueError`` (never an exception from deep inside numpy or a
dataclass validator); and the batched ``pack_keys`` / ``split_wire`` /
``unpack_keys`` framing round-trips exactly.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import available_prfs, get_prf
from repro.dpf import (
    DpfKey,
    gen,
    key_size_bytes,
    pack_keys,
    split_wire,
    unpack_keys,
    wire_size,
)

from tests.strategies import STANDARD_SETTINGS, dpf_cases

DOMAINS = [1, 2, 3, 5, 37, 256, 1000, 1 << 13]


def _key(domain, prf_name="chacha20", seed=0, party=0):
    prf = get_prf(prf_name)
    rng = np.random.default_rng(seed)
    pair = gen(domain // 2, domain, prf, rng)
    return pair[party], prf


class TestSizeBytes:
    @pytest.mark.parametrize("prf_name", available_prfs())
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_size_bytes_matches_serialization(self, prf_name, domain):
        """The satellite claim: arithmetic size == serialized length."""
        key, _ = _key(domain, prf_name)
        assert key.size_bytes == len(key.to_bytes())

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_key_size_bytes_agrees(self, domain):
        key, prf = _key(domain)
        assert key_size_bytes(domain, prf.name) == key.size_bytes

    def test_wire_size_rejects_negative_depth(self):
        with pytest.raises(ValueError, match="non-negative"):
            wire_size(-1)


class TestFromBytesValidation:
    def test_every_truncation_raises_value_error(self):
        key, _ = _key(100)
        data = key.to_bytes()
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                DpfKey.from_bytes(data[:cut])

    def test_trailing_bytes_raise_value_error(self):
        key, _ = _key(64)
        with pytest.raises(ValueError, match="bytes"):
            DpfKey.from_bytes(key.to_bytes() + b"\x00")

    def test_bad_magic_raises_value_error(self):
        key, _ = _key(64)
        data = bytearray(key.to_bytes())
        data[:4] = b"NOPE"
        with pytest.raises(ValueError, match="magic"):
            DpfKey.from_bytes(bytes(data))

    def test_inconsistent_domain_rejected_at_parse(self):
        """A corrupted domain_size header must fail at the parse
        boundary, not as an IndexError inside evaluation."""
        key, _ = _key(64)
        data = bytearray(key.to_bytes())
        data[6 + 2] ^= 0x10  # bump domain_size far beyond 2**log_domain
        with pytest.raises(ValueError, match="inconsistent"):
            DpfKey.from_bytes(bytes(data))

    def test_zero_domain_rejected_at_parse(self):
        key, _ = _key(1)
        data = bytearray(key.to_bytes())
        data[6:10] = (0).to_bytes(4, "little")
        with pytest.raises(ValueError, match="inconsistent"):
            DpfKey.from_bytes(bytes(data))

    def test_truncation_message_is_clear(self):
        """Mid-correction-word truncation fails at the length check, not
        inside np.frombuffer or CorrectionWord.__post_init__."""
        key, _ = _key(1000)
        data = key.to_bytes()
        with pytest.raises(ValueError, match="must be exactly"):
            DpfKey.from_bytes(data[: len(data) - 9])

    @given(case=dpf_cases(max_domain=64), cut=st.integers(0, 10_000))
    @STANDARD_SETTINGS
    def test_fuzz_truncations(self, case, cut):
        (key, _), _ = case.keys()
        data = key.to_bytes()
        cut %= len(data)
        with pytest.raises(ValueError):
            DpfKey.from_bytes(data[:cut])

    @given(case=dpf_cases(max_domain=64), bit=st.integers(0, 1 << 20))
    @STANDARD_SETTINGS
    def test_fuzz_bit_flips_never_escape_value_error(self, case, bit):
        """A flipped bit either still parses (e.g. inside a seed) or
        raises ValueError — never an unrelated exception type."""
        (key, _), _ = case.keys()
        data = bytearray(key.to_bytes())
        bit %= len(data) * 8
        data[bit // 8] ^= 1 << (bit % 8)
        try:
            parsed = DpfKey.from_bytes(bytes(data))
        except ValueError:
            return
        # Anything that parses (a flip in a seed, say) must yield a
        # well-formed key whose own serialization round-trips; unused
        # high bits of a control-bit byte are dropped by design.
        assert DpfKey.from_bytes(parsed.to_bytes()).to_bytes() == parsed.to_bytes()

    @given(case=dpf_cases(max_domain=64), magic=st.binary(min_size=4, max_size=4))
    @STANDARD_SETTINGS
    def test_fuzz_bad_magic(self, case, magic):
        (key, _), _ = case.keys()
        data = key.to_bytes()
        if magic == data[:4]:
            return
        with pytest.raises(ValueError, match="magic"):
            DpfKey.from_bytes(magic + data[4:])


class TestBatchFraming:
    def test_pack_unpack_round_trip(self):
        prf = get_prf("siphash")
        rng = np.random.default_rng(3)
        keys = []
        for i in range(7):
            k0, k1 = gen(i % 100, 100, prf, rng, beta=i + 1)
            keys.append(k0 if i % 2 else k1)
        restored = unpack_keys(pack_keys(keys))
        assert [k.to_bytes() for k in restored] == [k.to_bytes() for k in keys]

    def test_split_wire_framing(self):
        key, _ = _key(64)
        wire = pack_keys([key, key, key])
        records = split_wire(wire)
        assert len(records) == 3
        assert all(r == key.to_bytes() for r in records)

    def test_split_wire_handles_heterogeneous_records(self):
        a, _ = _key(64, "chacha20")
        b, _ = _key(1000, "siphash")
        records = split_wire(a.to_bytes() + b.to_bytes())
        assert [len(r) for r in records] == [a.size_bytes, b.size_bytes]

    def test_split_wire_rejects_truncation(self):
        key, _ = _key(64)
        wire = pack_keys([key, key])
        with pytest.raises(ValueError, match="mid-record|mid-header"):
            split_wire(wire[:-5])

    def test_split_wire_rejects_bad_magic(self):
        key, _ = _key(64)
        with pytest.raises(ValueError, match="magic"):
            split_wire(b"JUNK" + key.to_bytes()[4:])

    def test_pack_keys_rejects_empty_and_mixed(self):
        with pytest.raises(ValueError, match="at least one"):
            pack_keys([])
        a, _ = _key(64)
        b, _ = _key(128)
        with pytest.raises(ValueError, match="same domain"):
            pack_keys([a, b])


class TestTrailingGarbage:
    """`split_wire`/`unpack_keys` must reject trailing garbage after the
    last well-formed record — including garbage that leads with the key
    magic, which used to frame as an extra "record" and only fail (or
    not) one layer down."""

    def test_magic_prefixed_garbage_rejected(self):
        key, _ = _key(64)
        wire = pack_keys([key, key])
        # b"DPF1" + zeros parses as a header with domain_size 0; the
        # old framing accepted it as a 36-byte record.
        garbage = b"DPF1" + bytes(32)
        with pytest.raises(ValueError, match="inconsistent"):
            split_wire(wire + garbage)
        with pytest.raises(ValueError, match="inconsistent"):
            unpack_keys(wire + garbage)

    def test_bad_party_byte_rejected_at_framing(self):
        key, _ = _key(64)
        record = bytearray(key.to_bytes())
        record[4] = 2  # party must be 0 or 1
        with pytest.raises(ValueError, match="party"):
            split_wire(key.to_bytes() + bytes(record))

    def test_short_trailing_garbage_rejected(self):
        key, _ = _key(64)
        with pytest.raises(ValueError, match="mid-header"):
            split_wire(pack_keys([key]) + b"\x01")

    @given(
        case=dpf_cases(max_domain=64),
        n_keys=st.integers(1, 3),
        garbage=st.binary(min_size=1, max_size=64),
    )
    @STANDARD_SETTINGS
    def test_fuzz_trailing_garbage_never_frames(self, case, n_keys, garbage):
        """Any non-empty garbage suffix — arbitrary bytes, a magic-
        prefixed pseudo-header, or a truncated real record — must raise
        ValueError from both framing entry points."""
        (key, _), _ = case.keys()
        wire = pack_keys([key] * n_keys)
        # A garbage suffix that is itself a well-formed record would be
        # a legitimate record, not garbage; everything else must raise.
        try:
            DpfKey.from_bytes(garbage)
        except ValueError:
            pass
        else:  # pragma: no cover - ~2^-40 per example
            return
        for parse in (split_wire, unpack_keys):
            with pytest.raises(ValueError):
                parse(wire + garbage)

    @given(case=dpf_cases(max_domain=64), cut=st.integers(1, 10_000))
    @STANDARD_SETTINGS
    def test_fuzz_truncated_extra_record_rejected(self, case, cut):
        """A valid batch followed by a *prefix* of another valid record
        is the realistic torn-stream shape; it must never frame."""
        (key, _), _ = case.keys()
        record = key.to_bytes()
        cut = cut % (len(record) - 1) + 1  # 1..len-1: a strict prefix
        with pytest.raises(ValueError):
            split_wire(pack_keys([key, key]) + record[:cut])
