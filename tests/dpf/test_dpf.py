"""Correctness, secrecy-sanity, and serialization tests for the DPF core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import get_prf
from repro.dpf import DpfKey, eval_full, eval_points, gen, key_size_bytes

PRF = get_prf("chacha20")  # fastest standardized PRF; keeps tests quick


def _reconstruct(alpha, domain, beta=1, prf=PRF, seed=0):
    rng = np.random.default_rng(seed)
    k0, k1 = gen(alpha, domain, prf, rng, beta=beta)
    return eval_full(k0, prf) + eval_full(k1, prf)


class TestCorrectness:
    @pytest.mark.parametrize("domain", [1, 2, 3, 4, 7, 8, 16, 100, 256, 1000])
    def test_reconstructs_one_hot(self, domain):
        alpha = domain // 2
        total = _reconstruct(alpha, domain)
        expected = np.zeros(domain, dtype=np.uint64)
        expected[alpha] = 1
        assert np.array_equal(total, expected)

    @pytest.mark.parametrize("alpha", [0, 1, 254, 255])
    def test_boundary_indices(self, alpha):
        total = _reconstruct(alpha, 256)
        assert total[alpha] == 1
        assert total.sum() == 1

    def test_beta_scaling(self):
        beta = 123456789
        total = _reconstruct(37, 64, beta=beta)
        assert total[37] == beta
        assert np.count_nonzero(total) == 1

    def test_beta_wraps_mod_2_64(self):
        beta = (1 << 64) - 1  # == -1 mod 2^64
        total = _reconstruct(5, 16, beta=beta)
        assert int(total[5]) == beta

    @pytest.mark.parametrize("prf_name", ["aes128", "sha256", "chacha20", "siphash", "highwayhash"])
    def test_all_prfs_reconstruct(self, prf_name):
        prf = get_prf(prf_name)
        total = _reconstruct(11, 32, prf=prf)
        expected = np.zeros(32, dtype=np.uint64)
        expected[11] = 1
        assert np.array_equal(total, expected)

    def test_domain_of_one(self):
        total = _reconstruct(0, 1)
        assert total.shape == (1,)
        assert total[0] == 1

    def test_eval_points_matches_full(self):
        rng = np.random.default_rng(3)
        k0, k1 = gen(200, 500, PRF, rng)
        indices = np.array([0, 1, 199, 200, 201, 499])
        full0 = eval_full(k0, PRF)
        full1 = eval_full(k1, PRF)
        assert np.array_equal(eval_points(k0, PRF, indices), full0[indices])
        assert np.array_equal(eval_points(k1, PRF, indices), full1[indices])

    def test_eval_points_rejects_out_of_domain(self):
        rng = np.random.default_rng(4)
        k0, _ = gen(0, 8, PRF, rng)
        with pytest.raises(ValueError):
            eval_points(k0, PRF, np.array([8]))


class TestValidation:
    def test_alpha_out_of_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gen(16, 16, PRF, rng)
        with pytest.raises(ValueError):
            gen(-1, 16, PRF, rng)

    def test_empty_domain(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gen(0, 0, PRF, rng)

    def test_prf_mismatch_detected(self):
        rng = np.random.default_rng(0)
        k0, _ = gen(3, 16, PRF, rng)
        with pytest.raises(ValueError, match="PRF"):
            eval_full(k0, get_prf("aes128"))


class TestSecrecySanity:
    """Cheap statistical checks that one key alone looks index-independent.

    These are sanity checks on the implementation (e.g. that we did not
    leak alpha into a single key's share values), not a cryptographic
    proof.
    """

    def test_single_share_is_not_one_hot(self):
        rng = np.random.default_rng(5)
        k0, _ = gen(9, 64, PRF, rng)
        share = eval_full(k0, PRF)
        # The share at alpha should be indistinguishable in magnitude
        # from other positions; in particular the share alone must not
        # reveal alpha as an outlier of zeros.
        assert np.count_nonzero(share) > 32

    def test_share_values_look_uniform(self):
        rng = np.random.default_rng(6)
        k0, _ = gen(100, 4096, PRF, rng)
        share = eval_full(k0, PRF)
        # Mean of uniform uint64 ~ 2^63 with std 2^64/sqrt(12*N).
        mean = float(share.mean(dtype=np.float64))
        assert abs(mean - 2**63) < 6 * (2**64) / np.sqrt(12 * 4096)

    def test_keys_differ_between_invocations(self):
        rng = np.random.default_rng(7)
        k0_first, _ = gen(5, 32, PRF, rng)
        k0_second, _ = gen(5, 32, PRF, rng)
        assert not np.array_equal(k0_first.root_seed, k0_second.root_seed)


class TestSerialization:
    def test_roundtrip(self):
        rng = np.random.default_rng(8)
        k0, k1 = gen(77, 1000, PRF, rng)
        for key in (k0, k1):
            parsed = DpfKey.from_bytes(key.to_bytes())
            assert parsed.party == key.party
            assert parsed.domain_size == key.domain_size
            assert parsed.log_domain == key.log_domain
            assert parsed.output_cw == key.output_cw
            assert parsed.prf_name == key.prf_name
            assert np.array_equal(parsed.root_seed, key.root_seed)
            assert np.array_equal(eval_full(parsed, PRF), eval_full(key, PRF))

    def test_key_size_formula_matches_actual(self):
        rng = np.random.default_rng(9)
        for domain in (1, 2, 16, 1000, 1 << 14):
            k0, _ = gen(domain - 1, domain, PRF, rng)
            assert k0.size_bytes == key_size_bytes(domain, PRF.name)

    def test_key_size_grows_logarithmically(self):
        small = key_size_bytes(1 << 10)
        large = key_size_bytes(1 << 20)
        assert large - small == 10 * 17  # 17 bytes per extra level

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            DpfKey.from_bytes(b"XXXX" + bytes(64))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            DpfKey.from_bytes(b"\x01")


@given(
    domain=st.integers(min_value=1, max_value=512),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_property_dpf_reconstruction(domain, data):
    alpha = data.draw(st.integers(min_value=0, max_value=domain - 1))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    total = _reconstruct(alpha, domain, seed=seed)
    expected = np.zeros(domain, dtype=np.uint64)
    expected[alpha] = 1
    assert np.array_equal(total, expected)
