"""Property-based round-trip tests for the DPF core.

Complements the example-based suite in ``test_dpf.py`` with the
invariants that must hold for *every* (alpha, beta, domain, PRF)
combination: reconstruction is exactly the scaled one-hot vector,
point evaluation agrees with full expansion, and key generation is a
deterministic function of the RNG state.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dpf import DpfKey, eval_full, eval_points

from tests.strategies import (
    DETERMINISM_SETTINGS,
    STANDARD_SETTINGS,
    dpf_cases,
    fast_prf_names,
)

_U64 = (1 << 64) - 1


@given(case=dpf_cases())
@STANDARD_SETTINGS
def test_reconstruction_is_scaled_one_hot(case):
    (k0, k1), prf = case.keys()
    total = eval_full(k0, prf) + eval_full(k1, prf)
    expected = np.zeros(case.domain_size, dtype=np.uint64)
    expected[case.alpha] = case.beta & _U64
    assert np.array_equal(total, expected)


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_agrees_with_eval_full(case, data):
    (k0, k1), prf = case.keys()
    indices = np.array(
        data.draw(
            st.lists(
                st.integers(0, case.domain_size - 1), min_size=1, max_size=16
            ),
            label="indices",
        ),
        dtype=np.int64,
    )
    for key in (k0, k1):
        full = eval_full(key, prf)
        assert np.array_equal(eval_points(key, prf, indices), full[indices])


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_arbitrary_index_sets(case, data):
    """`eval_points(k, prf, idx) == eval_full(k, prf)[idx]` for *any*
    index set — empty, duplicated, unsorted, or the whole (reversed)
    domain — not just the small unique draws of the basic property."""
    (k0, k1), prf = case.keys()
    full_domain = np.arange(case.domain_size, dtype=np.int64)
    candidates = [
        np.array([], dtype=np.int64),
        full_domain[::-1].copy(),
        np.array(
            data.draw(
                st.lists(
                    st.integers(0, case.domain_size - 1),
                    min_size=0,
                    max_size=2 * case.domain_size,
                ),
                label="with_duplicates",
            ),
            dtype=np.int64,
        ),
    ]
    for key in (k0, k1):
        full = eval_full(key, prf)
        for indices in candidates:
            got = eval_points(key, prf, indices)
            assert got.shape == indices.shape
            assert np.array_equal(got, full[indices])


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_rejects_out_of_domain(case, data):
    (k0, _), prf = case.keys()
    bad = data.draw(
        st.sampled_from([-1, case.domain_size, case.domain_size + 7]), label="bad"
    )
    with pytest.raises(ValueError, match="out of domain"):
        eval_points(k0, prf, np.array([0, bad], dtype=np.int64))


@given(case=dpf_cases(prfs=fast_prf_names))
@DETERMINISM_SETTINGS
def test_keygen_is_deterministic_in_rng(case):
    (a0, a1), _ = case.keys()
    (b0, b1), _ = case.keys()  # same seed -> identical generator stream
    assert a0.to_bytes() == b0.to_bytes()
    assert a1.to_bytes() == b1.to_bytes()


@given(case=dpf_cases(prfs=fast_prf_names))
@DETERMINISM_SETTINGS
def test_serialization_round_trips(case):
    (k0, k1), prf = case.keys()
    for key in (k0, k1):
        restored = DpfKey.from_bytes(key.to_bytes())
        assert restored.to_bytes() == key.to_bytes()
        assert np.array_equal(eval_full(restored, prf), eval_full(key, prf))
