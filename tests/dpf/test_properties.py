"""Property-based round-trip tests for the DPF core.

Complements the example-based suite in ``test_dpf.py`` with the
invariants that must hold for *every* (alpha, beta, domain, PRF)
combination: reconstruction is exactly the scaled one-hot vector,
point evaluation agrees with full expansion, and key generation is a
deterministic function of the RNG state.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dpf import DpfKey, eval_full, eval_points, eval_range

from tests.strategies import (
    DETERMINISM_SETTINGS,
    STANDARD_SETTINGS,
    dpf_cases,
    fast_prf_names,
)

_U64 = (1 << 64) - 1


@given(case=dpf_cases())
@STANDARD_SETTINGS
def test_reconstruction_is_scaled_one_hot(case):
    (k0, k1), prf = case.keys()
    total = eval_full(k0, prf) + eval_full(k1, prf)
    expected = np.zeros(case.domain_size, dtype=np.uint64)
    expected[case.alpha] = case.beta & _U64
    assert np.array_equal(total, expected)


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_agrees_with_eval_full(case, data):
    (k0, k1), prf = case.keys()
    indices = np.array(
        data.draw(
            st.lists(
                st.integers(0, case.domain_size - 1), min_size=1, max_size=16
            ),
            label="indices",
        ),
        dtype=np.int64,
    )
    for key in (k0, k1):
        full = eval_full(key, prf)
        assert np.array_equal(eval_points(key, prf, indices), full[indices])


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_arbitrary_index_sets(case, data):
    """`eval_points(k, prf, idx) == eval_full(k, prf)[idx]` for *any*
    index set — empty, duplicated, unsorted, or the whole (reversed)
    domain — not just the small unique draws of the basic property."""
    (k0, k1), prf = case.keys()
    full_domain = np.arange(case.domain_size, dtype=np.int64)
    candidates = [
        np.array([], dtype=np.int64),
        full_domain[::-1].copy(),
        np.array(
            data.draw(
                st.lists(
                    st.integers(0, case.domain_size - 1),
                    min_size=0,
                    max_size=2 * case.domain_size,
                ),
                label="with_duplicates",
            ),
            dtype=np.int64,
        ),
    ]
    for key in (k0, k1):
        full = eval_full(key, prf)
        for indices in candidates:
            got = eval_points(key, prf, indices)
            assert got.shape == indices.shape
            assert np.array_equal(got, full[indices])


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_points_rejects_out_of_domain(case, data):
    (k0, _), prf = case.keys()
    bad = data.draw(
        st.sampled_from([-1, case.domain_size, case.domain_size + 7]), label="bad"
    )
    with pytest.raises(ValueError, match="out of domain"):
        eval_points(k0, prf, np.array([0, bad], dtype=np.int64))


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_range_agrees_with_eval_full(case, data):
    """`eval_range(k, prf, lo, hi) == eval_full(k, prf)[lo:hi]` for any
    non-empty sub-range — the identity sharded serving rests on."""
    (k0, k1), prf = case.keys()
    lo = data.draw(st.integers(0, case.domain_size - 1), label="lo")
    hi = data.draw(st.integers(lo + 1, case.domain_size), label="hi")
    for key in (k0, k1):
        got = eval_range(key, prf, lo, hi)
        assert got.shape == (hi - lo,)
        assert np.array_equal(got, eval_full(key, prf)[lo:hi])


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_range_partition_concatenates_to_full(case, data):
    """Concatenating eval_range over any partition of the domain
    reproduces eval_full exactly — why shard partials recombine to the
    unsharded answer."""
    (k0, _), prf = case.keys()
    cuts = sorted(
        data.draw(
            st.sets(st.integers(1, max(1, case.domain_size - 1)), max_size=4),
            label="cuts",
        )
    )
    bounds = [0] + cuts + [case.domain_size]
    ranges = [
        (a, b) for a, b in zip(bounds, bounds[1:]) if a < b
    ]
    pieces = [eval_range(k0, prf, lo, hi) for lo, hi in ranges]
    assert np.array_equal(np.concatenate(pieces), eval_full(k0, prf))


@given(case=dpf_cases(prfs=fast_prf_names), data=st.data())
@STANDARD_SETTINGS
def test_eval_range_rejects_invalid_bounds(case, data):
    (k0, _), prf = case.keys()
    lo, hi = data.draw(
        st.sampled_from(
            [
                (0, 0),
                (-1, 1),
                (0, case.domain_size + 1),
                (case.domain_size, case.domain_size),
            ]
        ),
        label="bounds",
    )
    with pytest.raises(ValueError, match="sub-range"):
        eval_range(k0, prf, lo, hi)


@given(case=dpf_cases(prfs=fast_prf_names))
@DETERMINISM_SETTINGS
def test_keygen_is_deterministic_in_rng(case):
    (a0, a1), _ = case.keys()
    (b0, b1), _ = case.keys()  # same seed -> identical generator stream
    assert a0.to_bytes() == b0.to_bytes()
    assert a1.to_bytes() == b1.to_bytes()


@given(case=dpf_cases(prfs=fast_prf_names))
@DETERMINISM_SETTINGS
def test_serialization_round_trips(case):
    (k0, k1), prf = case.keys()
    for key in (k0, k1):
        restored = DpfKey.from_bytes(key.to_bytes())
        assert restored.to_bytes() == key.to_bytes()
        assert np.array_equal(eval_full(restored, prf), eval_full(key, prf))
