"""PIR frame format: round trips and malformed-frame rejection.

Every malformed frame — wrong magic, unknown version, wrong kind,
truncation, declared-length mismatch, trailing garbage, short payload —
must fail with a ``ValueError`` at the frame boundary, mirroring the
strictness of the DPF key wire layer underneath.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pir import (
    FRAME_HEADER_BYTES,
    KIND_QUERY,
    KIND_REPLY,
    PirQuery,
    PirReply,
    WIRE_VERSION,
)

from tests.strategies import STANDARD_SETTINGS


def _query(request_id=7, count=3, payload=b"\x01\x02\x03\x04"):
    return PirQuery(request_id=request_id, count=count, key_bytes=payload)


def _reply(request_id=7, answers=(1, 2, (1 << 64) - 1)):
    return PirReply(request_id=request_id, answers=np.array(answers, dtype=np.uint64))


class TestRoundTrip:
    def test_query_round_trips(self):
        query = _query()
        parsed = PirQuery.from_bytes(query.to_bytes())
        assert parsed == query

    def test_reply_round_trips(self):
        reply = _reply()
        parsed = PirReply.from_bytes(reply.to_bytes())
        assert parsed.request_id == reply.request_id
        assert np.array_equal(parsed.answers, reply.answers)
        assert parsed.answers.dtype == np.uint64

    @given(
        request_id=st.integers(0, (1 << 64) - 1),
        payload=st.binary(min_size=1, max_size=200),
        count=st.integers(1, (1 << 32) - 1),
        epoch=st.integers(0, (1 << 32) - 1),
    )
    @STANDARD_SETTINGS
    def test_fuzz_query_round_trips(self, request_id, payload, count, epoch):
        query = PirQuery(
            request_id=request_id, count=count, key_bytes=payload, epoch=epoch
        )
        assert PirQuery.from_bytes(query.to_bytes()) == query

    @given(
        request_id=st.integers(0, (1 << 64) - 1),
        answers=st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=20),
        epoch=st.integers(0, (1 << 32) - 1),
    )
    @STANDARD_SETTINGS
    def test_fuzz_reply_round_trips(self, request_id, answers, epoch):
        reply = PirReply(
            request_id=request_id,
            answers=np.array(answers, dtype=np.uint64),
            epoch=epoch,
        )
        parsed = PirReply.from_bytes(reply.to_bytes())
        assert parsed.request_id == request_id
        assert parsed.epoch == epoch
        assert np.array_equal(parsed.answers, np.array(answers, dtype=np.uint64))

    def test_epoch_round_trips_and_defaults_to_zero(self):
        assert PirQuery.from_bytes(_query().to_bytes()).epoch == 0
        query = PirQuery(request_id=1, count=1, key_bytes=b"x", epoch=41)
        assert PirQuery.from_bytes(query.to_bytes()).epoch == 41
        reply = PirReply(
            request_id=1, answers=np.array([9], dtype=np.uint64), epoch=41
        )
        assert PirReply.from_bytes(reply.to_bytes()).epoch == 41

    def test_epoch_out_of_u32_range_rejected_on_encode(self):
        for epoch in (-1, 1 << 32):
            with pytest.raises(ValueError, match="epoch"):
                PirQuery(
                    request_id=1, count=1, key_bytes=b"x", epoch=epoch
                ).to_bytes()


class TestMalformedFrames:
    def test_every_truncation_raises_value_error(self):
        data = _query().to_bytes()
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                PirQuery.from_bytes(data[:cut])

    def test_trailing_garbage_rejected(self):
        for frame, parser in (
            (_query().to_bytes(), PirQuery.from_bytes),
            (_reply().to_bytes(), PirReply.from_bytes),
        ):
            with pytest.raises(ValueError, match="length mismatch"):
                parser(frame + b"\x00")

    @given(garbage=st.binary(min_size=1, max_size=64))
    @STANDARD_SETTINGS
    def test_fuzz_trailing_garbage_rejected(self, garbage):
        with pytest.raises(ValueError):
            PirQuery.from_bytes(_query().to_bytes() + garbage)

    def test_bad_magic_rejected(self):
        data = bytearray(_query().to_bytes())
        data[:4] = b"NOPE"
        with pytest.raises(ValueError, match="magic"):
            PirQuery.from_bytes(bytes(data))

    def test_unknown_version_rejected(self):
        data = bytearray(_query().to_bytes())
        data[4] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            PirQuery.from_bytes(bytes(data))

    def test_kind_confusion_rejected_both_ways(self):
        with pytest.raises(ValueError, match="expected a PIR reply"):
            PirReply.from_bytes(_query().to_bytes())
        with pytest.raises(ValueError, match="expected a PIR query"):
            PirQuery.from_bytes(_reply().to_bytes())
        assert KIND_QUERY != KIND_REPLY

    def test_reply_payload_must_match_count(self):
        data = bytearray(_reply(answers=(1, 2)).to_bytes())
        # Bump the declared count without growing the payload.
        data[18:22] = (3).to_bytes(4, "little")
        with pytest.raises(ValueError, match="declares 3 answers"):
            PirReply.from_bytes(bytes(data))

    def test_empty_query_payload_rejected(self):
        frame = PirQuery(request_id=1, count=1, key_bytes=b"x").to_bytes()
        # Strip the single payload byte and fix the declared length.
        header = bytearray(frame[:-1])
        header[22:30] = (0).to_bytes(8, "little")
        with pytest.raises(ValueError, match="no key bytes"):
            PirQuery.from_bytes(bytes(header))

    def test_zero_count_rejected_on_encode_and_decode(self):
        with pytest.raises(ValueError, match="count"):
            _query(count=0).to_bytes()
        data = bytearray(_query(count=1).to_bytes())
        data[18:22] = (0).to_bytes(4, "little")
        with pytest.raises(ValueError, match="at least one"):
            PirQuery.from_bytes(bytes(data))

    def test_header_size_is_stable(self):
        """The wire constant other layers size buffers with."""
        assert FRAME_HEADER_BYTES == 30
        assert len(_query(payload=b"z").to_bytes()) == FRAME_HEADER_BYTES + 1

    def test_v1_frames_rejected(self):
        """An epoch-less v1 frame is ambiguous once table versions
        coexist; the v2 parser must refuse it rather than guess."""
        data = bytearray(_query().to_bytes())
        data[4] = 1
        with pytest.raises(ValueError, match="version"):
            PirQuery.from_bytes(bytes(data))
