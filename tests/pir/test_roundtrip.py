"""The end-to-end two-server PIR round trip is bit-exact.

The tentpole property: for random tables and random index sets,
``client -> wire -> two servers -> reconstruction`` returns *exactly*
the table entries — under both object ingestion and wire ingestion, in
streaming and resident-keys modes, on the single-GPU, multi-GPU, and
simulated backends.  Each (backend, ingest) pair runs the full
Hypothesis property with residency and shapes drawn per example, so the
whole {object, wire} x {streaming, resident} x {SingleGpu, MultiGpu,
Simulated} cube is exercised.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pir import PirClient, PirServer

from tests.strategies import BACKEND_FACTORIES, domain_sizes, fast_prf_names

ROUNDTRIP_SETTINGS = settings(max_examples=10, deadline=None)
"""Fewer examples than STANDARD_SETTINGS: each example runs two full
server evaluations per mode, and the test is parametrized over the
backend x ingest grid."""


@st.composite
def pir_cases(draw):
    domain = draw(domain_sizes(max_size=128))
    indices = draw(
        st.lists(st.integers(0, domain - 1), min_size=1, max_size=4)
    )
    return {
        "domain": domain,
        "indices": indices,
        "prf": draw(fast_prf_names),
        "table_seed": draw(st.integers(0, 2**32 - 1)),
        "key_seed": draw(st.integers(0, 2**32 - 1)),
        "resident": draw(st.booleans()),
    }


def _setup(case, backend_name):
    rng = np.random.default_rng(case["table_seed"])
    table = rng.integers(0, 1 << 64, size=case["domain"], dtype=np.uint64)
    servers = [
        PirServer(
            table,
            backend=BACKEND_FACTORIES[backend_name](),
            prf_name=case["prf"],
            resident=case["resident"],
        )
        for _ in range(2)
    ]
    client = PirClient(
        case["domain"], case["prf"], rng=np.random.default_rng(case["key_seed"])
    )
    return table, servers, client


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
class TestRoundTripIsBitExact:
    @given(case=pir_cases())
    @ROUNDTRIP_SETTINGS
    def test_wire_ingest(self, backend_name, case):
        """Framed protocol: query frames in, reply frames out."""
        table, servers, client = _setup(case, backend_name)
        batch = client.query(case["indices"])
        got = client.reconstruct(
            batch,
            servers[0].handle(batch.requests[0]),
            servers[1].handle(batch.requests[1]),
        )
        assert np.array_equal(got, table[np.array(case["indices"])])

    @given(case=pir_cases())
    @ROUNDTRIP_SETTINGS
    def test_object_ingest(self, backend_name, case):
        """Unframed path: key objects straight into answer_shares."""
        table, servers, client = _setup(case, backend_name)
        keys_0, keys_1 = client.generate_keys(case["indices"])
        got = (servers[0].answer_shares(keys_0) + servers[1].answer_shares(keys_1)).astype(
            np.uint64
        )
        assert np.array_equal(got, table[np.array(case["indices"])])


class TestRoundTripExamples:
    """Deterministic pins beyond the property's small random shapes."""

    def test_larger_batch_and_table(self):
        domain, indices = 1000, [0, 999, 512, 31, 31, 700, 3, 255]
        rng = np.random.default_rng(42)
        table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
        servers = [
            PirServer(table, prf_name="chacha20", resident=True) for _ in range(2)
        ]
        client = PirClient(domain, "chacha20", rng=np.random.default_rng(43))
        batch = client.query(indices)
        got = client.reconstruct(
            batch,
            servers[0].handle(batch.requests[0]),
            servers[1].handle(batch.requests[1]),
        )
        assert np.array_equal(got, table[np.array(indices)])

    def test_single_index_scalar_query(self):
        table = np.arange(37, dtype=np.uint64) * np.uint64(3)
        servers = [PirServer(table, prf_name="siphash") for _ in range(2)]
        client = PirClient(37, "siphash", rng=np.random.default_rng(9))
        batch = client.query(17)
        got = client.reconstruct(
            batch,
            servers[0].handle(batch.requests[0]),
            servers[1].handle(batch.requests[1]),
        )
        assert got.shape == (1,)
        assert got[0] == table[17]

    def test_request_ids_increment_and_correlate(self):
        table = np.ones(8, dtype=np.uint64)
        servers = [PirServer(table, prf_name="siphash") for _ in range(2)]
        client = PirClient(8, "siphash", rng=np.random.default_rng(1))
        first = client.query([1])
        second = client.query([2])
        assert second.request_id == first.request_id + 1
        reply_for_second = servers[0].handle(second.requests[0])
        with pytest.raises(ValueError, match="correlates"):
            client.reconstruct(
                first, reply_for_second, servers[1].handle(first.requests[1])
            )


class TestQueryMany:
    """The load generator's convenience: N requests in one call."""

    def test_one_request_per_index_by_default(self):
        client = PirClient(64, "siphash", rng=np.random.default_rng(3))
        batches = client.query_many([1, 5, 9])
        assert [b.indices for b in batches] == [(1,), (5,), (9,)]
        assert len({b.request_id for b in batches}) == 3

    def test_grouping_keeps_order_and_remainder(self):
        client = PirClient(64, "siphash", rng=np.random.default_rng(3))
        batches = client.query_many([1, 5, 9, 2, 7], queries_per_request=2)
        assert [b.indices for b in batches] == [(1, 5), (9, 2), (7,)]

    def test_each_request_round_trips_independently(self):
        table = np.arange(40, dtype=np.uint64) * np.uint64(11)
        servers = [PirServer(table, prf_name="siphash") for _ in range(2)]
        client = PirClient(40, "siphash", rng=np.random.default_rng(4))
        for batch in client.query_many([0, 39, 17]):
            got = client.reconstruct(
                batch,
                servers[0].handle(batch.requests[0]),
                servers[1].handle(batch.requests[1]),
            )
            assert np.array_equal(got, table[np.array(batch.indices)])

    def test_rejects_empty_and_bad_grouping(self):
        client = PirClient(8, "siphash")
        with pytest.raises(ValueError, match="at least one"):
            client.query_many([])
        with pytest.raises(ValueError, match="queries_per_request"):
            client.query_many([1], queries_per_request=0)


class TestServerValidation:
    def test_domain_table_mismatch_rejected(self):
        table = np.zeros(64, dtype=np.uint64)
        server = PirServer(table, prf_name="siphash")
        client = PirClient(128, "siphash", rng=np.random.default_rng(2))
        batch = client.query([5])
        with pytest.raises(ValueError, match="table has 64"):
            server.handle(batch.requests[0])

    def test_prf_mismatch_rejected(self):
        table = np.zeros(16, dtype=np.uint64)
        server = PirServer(table, prf_name="aes128")
        client = PirClient(16, "siphash", rng=np.random.default_rng(2))
        batch = client.query([5])
        with pytest.raises(ValueError, match="would not reconstruct"):
            server.handle(batch.requests[0])

    def test_count_mismatch_rejected_before_evaluation(self):
        from repro.exec import ExecutionBackend
        from repro.pir import PirQuery

        class MustNotRun(ExecutionBackend):
            name = "must_not_run"

            def plan(self, request):  # pragma: no cover - never reached
                raise AssertionError("planned a lying frame")

            def run(self, request):
                raise AssertionError("evaluated a lying frame")

        table = np.zeros(16, dtype=np.uint64)
        server = PirServer(table, backend=MustNotRun(), prf_name="siphash")
        client = PirClient(16, "siphash", rng=np.random.default_rng(2))
        batch = client.query([5, 6])
        query = PirQuery.from_bytes(batch.requests[0])
        lying = PirQuery(
            request_id=query.request_id, count=1, key_bytes=query.key_bytes
        )
        # The count check must fire on ingestion metadata alone — the
        # O(B*L) evaluation never starts for a lying frame.
        with pytest.raises(ValueError, match="declares 1 keys"):
            server.handle(lying.to_bytes())

    def test_malformed_tables_rejected(self):
        with pytest.raises(ValueError, match="non-empty 1-D"):
            PirServer(np.zeros((2, 2), dtype=np.uint64))
        with pytest.raises(ValueError, match="non-empty 1-D"):
            PirServer(np.zeros(0, dtype=np.uint64))

    def test_empty_index_batch_rejected_client_side(self):
        client = PirClient(16, "siphash")
        with pytest.raises(ValueError, match="at least one"):
            client.query([])
