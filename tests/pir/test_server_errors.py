"""`PirServer.handle` error paths, each pinned to its raised type.

The serving loop admits queries through exactly this validation, so
every rejection class — malformed frame version, oversized batch,
empty batches in either direction — must fail loudly with `ValueError`
before any O(B*L) evaluation starts.
"""

import numpy as np
import pytest

from repro.pir import PirClient, PirQuery, PirReply, PirServer, WIRE_VERSION


def _fixture(domain=16, prf="siphash", max_batch=None):
    table = np.arange(domain, dtype=np.uint64)
    server = PirServer(table, prf_name=prf, max_batch=max_batch)
    client = PirClient(domain, prf, rng=np.random.default_rng(1))
    return server, client


class TestMalformedFrameVersion:
    def test_future_version_rejected_with_value_error(self):
        server, client = _fixture()
        frame = bytearray(client.query([3]).requests[0])
        frame[4] = WIRE_VERSION + 1  # version byte follows the magic
        with pytest.raises(ValueError, match="unsupported PIR wire version"):
            server.handle(bytes(frame))

    def test_zero_version_rejected_with_value_error(self):
        server, client = _fixture()
        frame = bytearray(client.query([3]).requests[0])
        frame[4] = 0
        with pytest.raises(ValueError, match="unsupported PIR wire version"):
            server.handle(bytes(frame))


class TestOversizedBatch:
    def test_batch_over_max_batch_rejected_with_value_error(self):
        server, client = _fixture(max_batch=2)
        oversized = client.query([1, 2, 3]).requests[0]
        with pytest.raises(ValueError, match="exceeds this server's max_batch"):
            server.handle(oversized)

    def test_batch_at_max_batch_served(self):
        server, client = _fixture(max_batch=2)
        batch = client.query([1, 2])
        reply = PirReply.from_bytes(server.handle(batch.requests[0]))
        assert reply.answers.shape == (2,)

    def test_oversized_batch_rejected_before_evaluation(self):
        from repro.exec import ExecutionBackend

        class MustNotRun(ExecutionBackend):
            name = "must_not_run"

            def plan(self, request):  # pragma: no cover - never reached
                raise AssertionError("planned an oversized batch")

            def run(self, request):
                raise AssertionError("evaluated an oversized batch")

        table = np.zeros(16, dtype=np.uint64)
        server = PirServer(table, backend=MustNotRun(), prf_name="siphash", max_batch=1)
        client = PirClient(16, "siphash", rng=np.random.default_rng(2))
        with pytest.raises(ValueError, match="max_batch"):
            server.handle(client.query([1, 2]).requests[0])

    def test_nonsense_max_batch_rejected_at_construction(self):
        with pytest.raises(ValueError, match="max_batch"):
            PirServer(np.zeros(4, dtype=np.uint64), max_batch=0)


class TestEmptyBatches:
    def test_empty_reply_rejected_on_encode_with_value_error(self):
        reply = PirReply(request_id=1, answers=np.zeros(0, dtype=np.uint64))
        with pytest.raises(ValueError, match="non-empty"):
            reply.to_bytes()

    def test_zero_count_reply_frame_rejected_with_value_error(self):
        data = bytearray(
            PirReply(request_id=1, answers=np.ones(1, dtype=np.uint64)).to_bytes()
        )
        data[18:22] = (0).to_bytes(4, "little")  # count field
        with pytest.raises(ValueError, match="at least one record"):
            PirReply.from_bytes(bytes(data))

    def test_zero_count_query_frame_rejected_by_handle(self):
        server, client = _fixture()
        data = bytearray(client.query([3]).requests[0])
        data[18:22] = (0).to_bytes(4, "little")
        with pytest.raises(ValueError, match="at least one record"):
            server.handle(bytes(data))

    def test_empty_key_payload_rejected_by_handle(self):
        server, _ = _fixture()
        frame = PirQuery(request_id=1, count=1, key_bytes=b"x").to_bytes()
        stripped = bytearray(frame[:-1])
        stripped[22:30] = (0).to_bytes(8, "little")  # declared payload length
        with pytest.raises(ValueError, match="no key bytes"):
            server.handle(bytes(stripped))
