"""Hypothesis strategies for DPF/PIR property-based tests.

Domain sizes deliberately skew toward small, awkward values
(non-powers-of-two, 1, primes) — that is where index arithmetic breaks —
while staying small enough that the pure-numpy PRFs keep examples fast.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np
from hypothesis import strategies as st

from repro.crypto import available_prfs, get_prf
from repro.dpf import gen

MAX_DOMAIN = 256

_U64 = (1 << 64) - 1


class DpfCase(NamedTuple):
    """One generated DPF instance: the secret point plus both keys."""

    domain_size: int
    alpha: int
    beta: int
    prf_name: str
    seed: int

    def keys(self):
        prf = get_prf(self.prf_name)
        rng = np.random.default_rng(self.seed)
        return gen(self.alpha, self.domain_size, prf, rng, beta=self.beta), prf


def domain_sizes(max_size: int = MAX_DOMAIN) -> st.SearchStrategy[int]:
    """Table sizes, biased toward boundary and non-power-of-two values."""
    return st.one_of(
        st.sampled_from([1, 2, 3, 5, 31, 100, 127, 128]),
        st.integers(min_value=1, max_value=max_size),
    )


def alphas_for_domain(domain_size: int) -> st.SearchStrategy[int]:
    """Valid secret indices for a given table size."""
    return st.integers(min_value=0, max_value=domain_size - 1)


prf_names = st.sampled_from(tuple(available_prfs()))

fast_prf_names = st.sampled_from(("chacha20", "siphash"))
"""The cheap PRFs, for properties that need many examples."""

batch_sizes = st.integers(min_value=1, max_value=6)

betas = st.one_of(st.sampled_from([0, 1, _U64]), st.integers(0, _U64))

rng_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def dpf_cases(
    draw,
    max_domain: int = MAX_DOMAIN,
    prfs: st.SearchStrategy[str] = prf_names,
) -> DpfCase:
    """A full DPF instance description (keys generated lazily)."""
    domain = draw(domain_sizes(max_domain))
    return DpfCase(
        domain_size=domain,
        alpha=draw(alphas_for_domain(domain)),
        beta=draw(betas),
        prf_name=draw(prfs),
        seed=draw(rng_seeds),
    )
