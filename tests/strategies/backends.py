"""The shared execution-backend pool for equivalence tests.

Every suite that asserts "bit-identical across backends" — the exec
layer, the PIR round trip, the serving loop — parametrizes over this
one mapping, so adding a backend extends every equivalence property at
once instead of silently missing a copy-pasted dict.
"""

from __future__ import annotations

from repro.baselines import CpuBackend
from repro.exec import (
    HybridBackend,
    MultiGpuBackend,
    SimulatedBackend,
    SingleGpuBackend,
)
from repro.gpu import V100

BACKEND_FACTORIES = {
    "single_gpu": lambda: SingleGpuBackend(),
    "multi_gpu": lambda: MultiGpuBackend([V100, V100]),
    "simulated": lambda: SimulatedBackend(),
    "cpu": lambda: CpuBackend(),
    "hybrid": lambda: HybridBackend([CpuBackend(), SingleGpuBackend(V100)]),
}
