"""Hypothesis strategies for property-based tests.

Re-exports commonly used strategies for convenience::

    from tests.strategies import dpf_cases, domain_sizes, STANDARD_SETTINGS
"""

from tests.strategies.backends import BACKEND_FACTORIES
from tests.strategies.dpf import (
    DpfCase,
    alphas_for_domain,
    batch_sizes,
    betas,
    domain_sizes,
    dpf_cases,
    fast_prf_names,
    prf_names,
    rng_seeds,
)
from tests.strategies.settings import DETERMINISM_SETTINGS, STANDARD_SETTINGS

__all__ = [
    "BACKEND_FACTORIES",
    "DETERMINISM_SETTINGS",
    "STANDARD_SETTINGS",
    "DpfCase",
    "alphas_for_domain",
    "batch_sizes",
    "betas",
    "domain_sizes",
    "dpf_cases",
    "fast_prf_names",
    "prf_names",
    "rng_seeds",
]
