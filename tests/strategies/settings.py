"""Shared Hypothesis settings profiles.

Two profiles cover the suite's needs:

* ``STANDARD_SETTINGS`` — the default for property tests.  ``deadline``
  is disabled because the pure-numpy PRFs have high per-example
  variance (a sha256 example is ~10x a siphash one), which would make
  deadline failures pure noise.
* ``DETERMINISM_SETTINGS`` — for tests asserting reproducibility
  (seeded key generation, serialization round-trips).  Derandomized so
  the examples themselves are stable across runs and machines, and
  detached from the example database so CI never replays a stale
  shrunk case against a determinism assertion.
"""

from hypothesis import HealthCheck, settings

STANDARD_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DETERMINISM_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)
