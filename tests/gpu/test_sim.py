"""The performance model against the paper's published V100 numbers.

The headline assertion is the Table 4 calibration point — ~1,358 QPS
for AES-128 over a 1M-entry table — plus the sanity properties any
roofline model must satisfy: monotonicity in bandwidth and compute
rate, OOM and unlaunchable block shapes reported infeasible,
utilization that grows with batch size (Figures 8b/9), batch- and
table-size-aware strategy selection (Section 3.2.5), and near-linear
multi-GPU scaling.
"""

import dataclasses

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import gen
from repro.gpu import (
    A100,
    GpuSimulator,
    MultiGpuExecutor,
    Scheduler,
    V100,
    get_strategy,
    select_strategy,
)

PAPER_QPS_AES_1M_V100 = 1358.0  # Table 4
MILLION = 1 << 20


class TestCalibration:
    def test_v100_aes128_1m_entries_matches_table4(self):
        selection = select_strategy(512, MILLION, prf_name="aes128", device=V100)
        assert selection.stats.feasible
        qps = selection.stats.throughput_qps
        assert abs(qps - PAPER_QPS_AES_1M_V100) / PAPER_QPS_AES_1M_V100 < 0.10
        # The paper's winning kernel at this shape is the fused
        # memory-bounded traversal.
        assert selection.strategy == "memory_bounded"
        assert selection.plan.fused

    def test_cheaper_prfs_are_faster_at_the_calibration_point(self):
        aes = select_strategy(512, MILLION, prf_name="aes128").stats.throughput_qps
        for name in ("chacha20", "siphash", "highwayhash"):
            assert select_strategy(512, MILLION, prf_name=name).stats.throughput_qps > aes
        # SHA-256 is the one PRF slower than AES on GPU (Table 5).
        assert select_strategy(512, MILLION, prf_name="sha256").stats.throughput_qps < aes


class TestRooflineSanity:
    @pytest.mark.parametrize("name", ["level_by_level", "memory_bounded"])
    def test_more_bandwidth_is_never_slower(self, name):
        plan = get_strategy(name).plan(512, MILLION)
        base = GpuSimulator(V100).simulate(plan)
        boosted = dataclasses.replace(V100, mem_bandwidth=4 * V100.mem_bandwidth)
        assert GpuSimulator(boosted).simulate(plan).latency_s <= base.latency_s

    def test_more_compute_is_never_slower(self):
        plan = get_strategy("memory_bounded").plan(512, MILLION)
        base = GpuSimulator(V100).simulate(plan)
        boosted = dataclasses.replace(V100, aes_rate=2 * V100.aes_rate)
        assert GpuSimulator(boosted).simulate(plan).latency_s < base.latency_s

    def test_oom_plans_are_infeasible(self):
        # 4096 queries x 1M-entry frontier needs ~100 GiB; a 16 GiB V100
        # must reject it but still report an (upper-bound) latency.
        plan = get_strategy("level_by_level").plan(4096, MILLION)
        stats = GpuSimulator(V100).simulate(plan)
        assert not stats.feasible
        assert plan.peak_mem_bytes > V100.global_mem_bytes
        assert stats.latency_s > 0
        # The scheduler routes around the OOM with a bounded-memory kernel.
        selection = select_strategy(4096, MILLION, device=V100)
        assert selection.stats.feasible
        assert selection.strategy in ("memory_bounded", "cooperative_groups")

    def test_unlaunchable_block_shape_is_infeasible(self):
        plan = get_strategy("memory_bounded").plan(64, 4096)
        bad_phase = dataclasses.replace(
            plan.phases[-1], threads_per_block=4 * V100.max_threads_per_block
        )
        bad_plan = dataclasses.replace(plan, phases=[bad_phase])
        assert not GpuSimulator(V100).simulate(bad_plan).feasible

    def test_utilization_grows_with_batch(self):
        """Figure 8b: small batches cannot fill the device."""
        strategy = get_strategy("memory_bounded")
        sim = GpuSimulator(V100)
        utils = [
            sim.simulate(strategy.plan(batch, MILLION)).utilization
            for batch in (8, 64, 512)
        ]
        assert utils[0] < utils[1] < utils[2]
        assert utils[2] > 0.95

    def test_best_throughput_is_monotone_in_batch(self):
        scheduler = Scheduler(V100)
        qps = [scheduler.throughput_qps(b, MILLION) for b in (32, 128, 512, 2048)]
        assert all(a <= b * 1.001 for a, b in zip(qps, qps[1:]))


class TestSchedulerSelection:
    def test_selection_is_table_size_aware(self):
        small = select_strategy(4, 256, device=V100)
        large = select_strategy(512, MILLION, device=V100)
        assert small.strategy != large.strategy
        # Tiny trees: a single fused launch wins because per-level
        # launch/sync overheads dominate the PRF work.
        assert small.strategy in ("branch_parallel", "cooperative_groups")
        assert large.strategy == "memory_bounded"

    def test_rankings_cover_all_candidates_feasible_first(self):
        selection = select_strategy(512, MILLION, device=V100)
        names = [name for name, _ in selection.rankings]
        assert sorted(names) == sorted(
            ["branch_parallel", "cooperative_groups", "level_by_level", "memory_bounded"]
        )
        feasibility = [stats.feasible for _, stats in selection.rankings]
        assert feasibility.index(True) == 0
        feasible_qps = [s.throughput_qps for _, s in selection.rankings if s.feasible]
        assert feasible_qps == sorted(feasible_qps, reverse=True)

    def test_scheduler_caches_decisions(self):
        scheduler = Scheduler(V100)
        first = scheduler.select(64, 1 << 16)
        assert scheduler.select(64, 1 << 16) is first

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            select_strategy(0, MILLION)
        with pytest.raises(ValueError):
            select_strategy(16, 0)

    def test_residency_never_shares_a_memoized_selection(self):
        # Regression: the memo key must carry residency — a resident
        # request served a streaming selection (or vice versa) would
        # misprice every batch at that shape for the session.
        scheduler = Scheduler(V100)
        for batch, table in ((64, 1 << 16), (512, MILLION)):
            streaming = scheduler.select(batch, table)
            resident = scheduler.select(batch, table, resident_keys=True)
            assert streaming is not resident
            assert streaming.plan.host_bytes_in > 0
            assert resident.plan.host_bytes_in == 0

    def test_entry_bytes_never_shares_a_memoized_selection(self):
        # Regression: entry_bytes is an instance attribute, but the
        # memo key carries it so a caller mutating it between decisions
        # can never be served a stale selection priced for the old
        # entry width.
        scheduler = Scheduler(V100, entry_bytes=8)
        narrow = scheduler.select(512, MILLION)
        scheduler.entry_bytes = 256
        wide = scheduler.select(512, MILLION)
        assert narrow is not wide
        assert wide.stats.latency_s > narrow.stats.latency_s


class TestHostParseOverlap:
    """The double-buffered ingest model: parse N+1 under kernel N."""

    def _plans(self):
        streaming = select_strategy(512, MILLION, device=V100).plan
        resident = select_strategy(
            512, MILLION, device=V100, resident_keys=True
        ).plan
        return streaming, resident

    def test_host_parse_time_scales_with_wire_bytes(self):
        sim = GpuSimulator(V100)
        streaming, resident = self._plans()
        assert sim.host_parse_s(streaming) == pytest.approx(
            streaming.host_bytes_in / 2.0e9
        )
        # Resident plans ship no key bytes per batch: nothing to parse.
        assert sim.host_parse_s(resident) == 0.0

    def test_pipelined_latency_is_max_not_sum(self):
        sim = GpuSimulator(V100)
        streaming, _ = self._plans()
        kernel = sim.simulate(streaming).latency_s
        parse = sim.host_parse_s(streaming)
        assert parse > 0.0
        assert sim.pipelined_latency_s(streaming, overlap=True) == pytest.approx(
            max(kernel, parse)
        )
        assert sim.pipelined_latency_s(streaming, overlap=False) == pytest.approx(
            kernel + parse
        )

    def test_overlap_never_slower(self):
        sim = GpuSimulator(V100)
        for batch in (32, 256, 2048):
            plan = select_strategy(batch, MILLION, device=V100).plan
            assert sim.pipelined_latency_s(plan, overlap=True) <= sim.pipelined_latency_s(
                plan, overlap=False
            )


class TestMultiGpu:
    def test_two_identical_gpus_double_throughput(self):
        single = select_strategy(512, MILLION, device=V100).stats.throughput_qps
        pair = MultiGpuExecutor([V100, V100]).execute(1024, MILLION)
        ratio = pair.throughput_qps / single
        assert 1.9 < ratio < 2.1
        assert len(pair.shards) == 2
        assert sum(s.batch_size for s in pair.shards) == 1024

    def test_heterogeneous_fleet_balances_by_throughput(self):
        stats = MultiGpuExecutor([V100, A100]).execute(1024, MILLION)
        shards = {s.device_name: s.batch_size for s in stats.shards}
        # The A100's calibrated rate is higher, so it takes the larger shard.
        assert shards[A100.name] > shards[V100.name]
        solo_v100 = select_strategy(1024, MILLION, device=V100).stats.throughput_qps
        assert stats.throughput_qps > solo_v100

    def test_small_batches_skip_idle_devices(self):
        stats = MultiGpuExecutor([V100] * 8).execute(3, 1 << 16)
        assert sum(s.batch_size for s in stats.shards) == 3
        assert all(s.batch_size > 0 for s in stats.shards)
        assert len(stats.shards) <= 3

    def test_functional_sharded_eval_matches_reference(self):
        prf = get_prf("chacha20")
        rng = np.random.default_rng(11)
        domain = 300
        keys = []
        for i in range(5):
            k0, k1 = gen((7 * i) % domain, domain, prf, rng)
            keys.append(k0 if i % 2 else k1)
        from repro.dpf import eval_full

        expected = np.stack([eval_full(k, prf) for k in keys])
        got = MultiGpuExecutor([V100, V100]).eval_batch(keys, prf)
        assert np.array_equal(got, expected)


class TestThroughputQps:
    """`Scheduler.throughput_qps` is exactly the winning plan's rate."""

    @pytest.mark.parametrize("resident", [False, True])
    def test_equals_the_selected_plans_throughput(self, resident):
        scheduler = Scheduler(V100)
        for batch, table in ((1, 256), (64, 1 << 16), (512, MILLION)):
            qps = scheduler.throughput_qps(
                batch, table, resident_keys=resident
            )
            selection = scheduler.select(batch, table, resident_keys=resident)
            assert qps == selection.stats.throughput_qps > 0

    def test_matches_uncached_select_strategy(self):
        """The memoized wrapper must not drift from the raw decision."""
        scheduler = Scheduler(V100)
        direct = select_strategy(128, 1 << 18, device=V100)
        assert scheduler.throughput_qps(128, 1 << 18) == direct.stats.throughput_qps

    def test_prf_axis_orders_like_table5(self):
        scheduler = Scheduler(V100)
        aes = scheduler.throughput_qps(512, MILLION, prf_name="aes128")
        assert scheduler.throughput_qps(512, MILLION, prf_name="chacha20") > aes
        assert scheduler.throughput_qps(512, MILLION, prf_name="sha256") < aes

    def test_resident_mode_is_never_slower(self):
        scheduler = Scheduler(V100)
        for batch, table in ((8, 1 << 12), (64, 1 << 16), (512, MILLION)):
            streaming = scheduler.throughput_qps(batch, table)
            resident = scheduler.throughput_qps(batch, table, resident_keys=True)
            assert resident >= streaming


class TestResidentKeys:
    """Serving from an already-uploaded key arena (host_bytes_in = 0)."""

    def test_resident_plans_amortize_host_transfer(self):
        from repro.dpf import key_size_bytes
        from repro.gpu import available_strategies

        batch, table = 512, MILLION
        for name in available_strategies():
            strategy = get_strategy(name)
            plan = strategy.plan(batch, table)
            resident = strategy.plan(batch, table, resident_keys=True)
            assert plan.host_bytes_in == batch * key_size_bytes(table)
            assert not plan.resident_keys and plan.resident_bytes == 0
            assert resident.host_bytes_in == 0
            assert resident.resident_keys
            assert resident.resident_bytes == batch * key_size_bytes(table)
            # Nothing else about the recipe changes.
            assert resident.phases == plan.phases
            assert resident.peak_mem_bytes == plan.peak_mem_bytes

    def test_resident_arena_counts_against_capacity(self):
        strategy = get_strategy("memory_bounded")
        plan = strategy.plan(512, MILLION)
        resident = strategy.plan(512, MILLION, resident_keys=True)
        sim = GpuSimulator(V100)
        assert (
            sim.free_mem_bytes(resident)
            == sim.free_mem_bytes(plan) - resident.resident_bytes
        )

    def test_resident_qps_strictly_higher_when_pcie_on_critical_path(self):
        """Every feasible shape with a nonzero key upload must simulate
        strictly faster once the upload is amortized away."""
        sim = GpuSimulator(V100)
        for name in ("memory_bounded", "level_by_level", "branch_parallel"):
            for batch, table in ((64, 1 << 14), (512, MILLION)):
                strategy = get_strategy(name)
                base = sim.simulate(strategy.plan(batch, table))
                resident = sim.simulate(
                    strategy.plan(batch, table, resident_keys=True)
                )
                assert resident.throughput_qps > base.throughput_qps, (name, batch)
                assert resident.latency_s < base.latency_s

    def test_scheduler_caches_resident_mode_separately(self):
        scheduler = Scheduler(V100)
        base = scheduler.select(512, MILLION)
        resident = scheduler.select(512, MILLION, resident_keys=True)
        assert base is not resident
        assert resident is scheduler.select(512, MILLION, resident_keys=True)
        assert resident.plan.host_bytes_in == 0
        assert resident.stats.throughput_qps > base.stats.throughput_qps

    def test_multigpu_resident_serving_is_faster(self):
        executor = MultiGpuExecutor([V100, V100])
        base = executor.execute(1024, MILLION)
        resident = executor.execute(1024, MILLION, resident_keys=True)
        assert resident.throughput_qps > base.throughput_qps
        assert all(
            s.selection.plan.host_bytes_in == 0 for s in resident.shards
        )
