"""The key arena against the per-key object path.

The arena is only an optimization, so every test here is an
equivalence: ``from_wire`` == ``from_keys`` field for field, arena
slicing == stacking the sliced key list, arena-fed ``eval_batch`` ==
list-fed ``eval_batch`` == per-key ``eval_full``, and a reused
:class:`ExpansionWorkspace` changes nothing but allocation counts.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import get_prf
from repro.crypto.prf import CountingPrf
from repro.dpf import eval_full, gen, pack_keys
from repro.gpu import (
    V100,
    ExpansionWorkspace,
    KeyArena,
    MemoryMeter,
    MultiGpuExecutor,
    available_strategies,
    get_strategy,
)

from tests.strategies import STANDARD_SETTINGS, batch_sizes, dpf_cases, fast_prf_names

PRF = get_prf("chacha20")

ALL_STRATEGIES = available_strategies()


def _make_keys(batch=6, domain=100, prf=PRF, seed=0):
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(batch):
        k0, k1 = gen(int(rng.integers(domain)), domain, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    return keys


ARENA_FIELDS = (
    "roots",
    "root_ts",
    "cw_seeds",
    "cw_t_left",
    "cw_t_right",
    "output_cws",
    "negate",
)


def _assert_arena_equal(a: KeyArena, b: KeyArena):
    assert (a.batch, a.depth, a.domain_size, a.prf_name) == (
        b.batch,
        b.depth,
        b.domain_size,
        b.prf_name,
    )
    for field in ARENA_FIELDS:
        got, want = getattr(a, field), getattr(b, field)
        assert got.dtype == want.dtype, field
        assert np.array_equal(got, want), field


class TestWireEquivalence:
    def test_from_wire_equals_from_keys(self):
        keys = _make_keys()
        _assert_arena_equal(KeyArena.from_wire(pack_keys(keys)), KeyArena.from_keys(keys))
        assert KeyArena.from_wire(pack_keys(keys)) == KeyArena.from_keys(keys)

    @given(case=dpf_cases(prfs=fast_prf_names), batch=batch_sizes)
    @STANDARD_SETTINGS
    def test_property_from_wire_equals_from_keys(self, case, batch):
        (k0, k1), _ = case.keys()
        keys = [k0 if i % 2 else k1 for i in range(batch)]
        _assert_arena_equal(
            KeyArena.from_wire(pack_keys(keys)), KeyArena.from_keys(keys)
        )

    def test_to_keys_round_trip(self):
        keys = _make_keys()
        restored = KeyArena.from_wire(pack_keys(keys)).to_keys()
        assert [k.to_bytes() for k in restored] == [k.to_bytes() for k in keys]

    def test_from_wire_rejects_malformed_batches(self):
        keys = _make_keys(batch=2)
        wire = pack_keys(keys)
        with pytest.raises(ValueError, match="truncated"):
            KeyArena.from_wire(b"")
        with pytest.raises(ValueError, match="magic"):
            KeyArena.from_wire(b"XXXX" + wire[4:])
        with pytest.raises(ValueError, match="whole number"):
            KeyArena.from_wire(wire[:-3])
        other = _make_keys(batch=1, domain=317, seed=5)[0]
        with pytest.raises(ValueError, match="same domain|whole number"):
            KeyArena.from_wire(wire + other.to_bytes())
        mutated = bytearray(wire)
        mutated[4] = 7  # party byte of the first record
        with pytest.raises(ValueError, match="party"):
            KeyArena.from_wire(bytes(mutated))
        corrupt = bytearray(wire)
        corrupt[8] ^= 0x01  # domain_size no longer matches the depth
        with pytest.raises(ValueError, match="inconsistent"):
            KeyArena.from_wire(bytes(corrupt))
        record = len(wire) // 2
        bad_len = bytearray(wire)
        bad_len[record + 18] ^= 0x02  # second record's prf_len byte
        with pytest.raises(ValueError, match="same PRF"):
            KeyArena.from_wire(bytes(bad_len))

    def test_from_wire_rejects_mixed_prfs(self):
        a = _make_keys(batch=1, prf=get_prf("chacha20"))[0]
        b = _make_keys(batch=1, prf=get_prf("highwayhash"))[0]
        # chacha20 and highwayhash have different name lengths, so the
        # stride check fires; equal-length names hit the PRF check.
        with pytest.raises(ValueError):
            KeyArena.from_wire(a.to_bytes() + b.to_bytes())
        c = _make_keys(batch=1, prf=get_prf("aes128"))[0]
        d = _make_keys(batch=1, prf=get_prf("sha256"))[0]
        with pytest.raises(ValueError, match="same PRF"):
            KeyArena.from_wire(c.to_bytes() + d.to_bytes())

    def test_from_keys_validates(self):
        keys = _make_keys()
        with pytest.raises(ValueError, match="at least one"):
            KeyArena.from_keys([])
        with pytest.raises(ValueError, match="reconstruct"):
            KeyArena.from_keys(keys, prf_name="siphash")
        with pytest.raises(ValueError, match="same domain"):
            KeyArena.from_keys(keys + _make_keys(batch=1, domain=64, seed=2))

    def test_to_wire_equals_pack_keys(self):
        keys = _make_keys()
        arena = KeyArena.from_keys(keys)
        assert arena.to_wire() == pack_keys(keys)
        _assert_arena_equal(KeyArena.from_wire(arena.to_wire()), arena)

    @given(case=dpf_cases(prfs=fast_prf_names), batch=batch_sizes)
    @STANDARD_SETTINGS
    def test_property_to_wire_round_trips(self, case, batch):
        (k0, k1), _ = case.keys()
        keys = [k0 if i % 2 else k1 for i in range(batch)]
        arena = KeyArena.from_keys(keys)
        assert arena.to_wire() == pack_keys(keys)
        assert KeyArena.from_wire(arena.to_wire()) == arena

    def test_to_wire_of_a_slice_carries_only_the_slice(self):
        keys = _make_keys()
        arena = KeyArena.from_keys(keys)
        assert arena[2:5].to_wire() == pack_keys(keys[2:5])


class TestPadding:
    def test_pad_to_repeats_the_last_row(self):
        keys = _make_keys(batch=5)
        arena = KeyArena.from_keys(keys)
        padded = arena.pad_to(8)
        assert padded.batch == 8
        _assert_arena_equal(padded[0:5], arena)
        for row in range(5, 8):
            _assert_arena_equal(padded[row : row + 1], arena[4:5])

    def test_pad_to_same_size_is_identity(self):
        arena = KeyArena.from_keys(_make_keys(batch=4))
        assert arena.pad_to(4) is arena

    def test_pad_to_rejects_shrinking(self):
        arena = KeyArena.from_keys(_make_keys(batch=4))
        with pytest.raises(ValueError, match="cannot pad"):
            arena.pad_to(3)

    def test_padded_rows_are_valid_keys(self):
        # Every padded row is a *copy of a real key*, so a padded arena
        # round-trips the wire format and evaluates like the repeated
        # key — the property the plan cache's pad-and-slice rests on.
        keys = _make_keys(batch=3)
        padded = KeyArena.from_keys(keys).pad_to(4)
        assert KeyArena.from_wire(padded.to_wire()) == padded
        expected = np.stack([eval_full(k, PRF) for k in keys + [keys[-1]]])
        strategy = get_strategy(ALL_STRATEGIES[0])
        got = strategy.eval_batch(padded, PRF)
        assert np.array_equal(got, expected)


class TestSlicing:
    def test_slices_are_views(self):
        arena = KeyArena.from_keys(_make_keys())
        shard = arena[2:5]
        assert len(shard) == 3
        for field in ARENA_FIELDS:
            assert np.shares_memory(getattr(shard, field), getattr(arena, field)), field

    def test_slice_equals_stacking_the_slice(self):
        keys = _make_keys()
        arena = KeyArena.from_keys(keys)
        _assert_arena_equal(arena[1:4], KeyArena.from_keys(keys[1:4]))

    def test_non_slice_indexing_rejected(self):
        arena = KeyArena.from_keys(_make_keys())
        with pytest.raises(TypeError):
            arena[0]

    def test_empty_slice_rejected_by_eval_entry_points(self):
        arena = KeyArena.from_keys(_make_keys())
        empty = arena[0:0]
        assert len(empty) == 0
        with pytest.raises(ValueError, match="at least one"):
            get_strategy("memory_bounded").eval_batch(empty, PRF)
        with pytest.raises(ValueError, match="at least one"):
            MultiGpuExecutor([V100]).eval_batch(empty, PRF)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_sliced_arena_evaluates_like_sliced_keys(self, name):
        keys = _make_keys()
        arena = KeyArena.from_wire(pack_keys(keys))
        strategy = get_strategy(name)
        got = strategy.eval_batch(arena[2:6], PRF)
        want = np.stack([eval_full(k, PRF) for k in keys[2:6]])
        assert np.array_equal(got, want)


class TestArenaEvaluation:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("domain", [1, 2, 13, 100, 257])
    def test_arena_eval_matches_list_eval(self, name, domain):
        keys = _make_keys(batch=4, domain=domain)
        strategy = get_strategy(name)
        got = strategy.eval_batch(KeyArena.from_wire(pack_keys(keys)), PRF)
        assert np.array_equal(got, strategy.eval_batch(keys, PRF))

    def test_arena_eval_rejects_wrong_prf(self):
        arena = KeyArena.from_keys(_make_keys())
        with pytest.raises(ValueError, match="reconstruct"):
            get_strategy("memory_bounded").eval_batch(arena, get_prf("siphash"))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_arena_eval_meters_and_counts_identically(self, name):
        """The arena changes *where* key material lives, not the
        kernel: PRF-block counts and metered peaks stay exact."""
        keys = _make_keys(batch=3, domain=257)
        strategy = get_strategy(name)
        counting = CountingPrf(PRF)
        meter = MemoryMeter()
        strategy.eval_batch(KeyArena.from_keys(keys), counting, meter)
        cost = strategy.cost(3, 257)
        assert counting.blocks == cost.prf_blocks
        assert meter.peak == cost.peak_mem_bytes
        assert meter.current == 0

    def test_multigpu_shards_arena_bit_identically(self):
        keys = _make_keys(batch=5, domain=300)
        arena = KeyArena.from_wire(pack_keys(keys))
        expected = np.stack([eval_full(k, PRF) for k in keys])
        executor = MultiGpuExecutor([V100, V100])
        assert np.array_equal(executor.eval_batch(arena, PRF), expected)
        assert np.array_equal(executor.eval_batch(keys, PRF), expected)
        # Repeated calls reuse the executor's per-device workspaces.
        assert np.array_equal(executor.eval_batch(arena, PRF), expected)


class TestWorkspaceReuse:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_workspace_reuse_is_bit_identical(self, name):
        strategy = get_strategy(name)
        workspace = ExpansionWorkspace()
        # Interleave shapes so reuse sees growth, shrinkage, and repeat
        # visits of the same shape — stale bytes must never leak.
        shapes = [(4, 100), (2, 257), (4, 100), (1, 13), (4, 100), (2, 64)]
        for seed, (batch, domain) in enumerate(shapes):
            keys = _make_keys(batch=batch, domain=domain, seed=seed)
            fresh = strategy.eval_batch(keys, PRF)
            reused = strategy.eval_batch(keys, PRF, workspace=workspace)
            assert np.array_equal(fresh, reused), (batch, domain)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_workspace_results_survive_the_next_call(self, name):
        """Returned share matrices must not alias workspace storage."""
        strategy = get_strategy(name)
        workspace = ExpansionWorkspace()
        keys = _make_keys(batch=2, domain=128)
        first = strategy.eval_batch(keys, PRF, workspace=workspace)
        snapshot = first.copy()
        strategy.eval_batch(_make_keys(batch=2, domain=128, seed=9), PRF, workspace=workspace)
        assert np.array_equal(first, snapshot)

    @given(
        case=dpf_cases(prfs=fast_prf_names),
        batch=batch_sizes,
        name=st.sampled_from(ALL_STRATEGIES),
    )
    @STANDARD_SETTINGS
    def test_property_workspace_reuse(self, case, batch, name):
        (k0, k1), prf = case.keys()
        keys = [k0 if i % 2 else k1 for i in range(batch)]
        strategy = get_strategy(name)
        workspace = ExpansionWorkspace()
        want = strategy.eval_batch(keys, prf)
        assert np.array_equal(
            strategy.eval_batch(keys, prf, workspace=workspace), want
        )
        assert np.array_equal(
            strategy.eval_batch(keys, prf, workspace=workspace), want
        )

    def test_workspace_grows_monotonically(self):
        workspace = ExpansionWorkspace()
        get_strategy("level_by_level").eval_batch(
            _make_keys(batch=2, domain=256), PRF, workspace=workspace
        )
        grown = workspace.nbytes
        assert grown > 0
        get_strategy("level_by_level").eval_batch(
            _make_keys(batch=1, domain=16), PRF, workspace=workspace
        )
        assert workspace.nbytes == grown  # smaller shapes reuse, not shrink
