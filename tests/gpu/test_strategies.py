"""The functional GPU kernels against the reference DPF evaluation.

Three claims, per the paper's Figure 6: every parallelization strategy
computes *exactly* the same output shares as the reference
``eval_full``; each strategy's PRF work matches its analytic count; and
the metered live memory matches the analytic model — in particular the
O(B L) level-by-level vs O(B K log L) memory-bounded separation.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import available_prfs, get_prf
from repro.crypto.prf import CountingPrf
from repro.dpf import eval_full, gen
from repro.gpu import MemoryMeter, available_strategies, get_strategy
from repro.gpu.strategies import NODE_BYTES

from tests.strategies import STANDARD_SETTINGS, batch_sizes, dpf_cases, fast_prf_names

PRF = get_prf("chacha20")

ALL_STRATEGIES = available_strategies()

# Constructor variants that exercise non-default tree splits.
VARIANTS = [
    ("branch_parallel", {}),
    ("level_by_level", {}),
    ("memory_bounded", {}),
    ("memory_bounded", {"log_subtrees": 0}),
    ("memory_bounded", {"log_subtrees": 3}),
    ("cooperative_groups", {}),
    ("cooperative_groups", {"log_tile": 0}),
    ("cooperative_groups", {"log_tile": 4}),
]


def _keys(domain, alpha=None, prf=PRF, seed=0, beta=1):
    rng = np.random.default_rng(seed)
    return gen(alpha if alpha is not None else domain // 2, domain, prf, rng, beta=beta)


class TestBitEquality:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("domain", [1, 2, 3, 13, 64, 100, 257, 1000])
    def test_matches_eval_full(self, name, domain):
        k0, k1 = _keys(domain)
        strategy = get_strategy(name)
        for key in (k0, k1):
            assert np.array_equal(strategy.eval_full(key, PRF), eval_full(key, PRF))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("prf_name", available_prfs())
    def test_matches_eval_full_all_prfs(self, name, prf_name):
        prf = get_prf(prf_name)
        k0, k1 = _keys(37, prf=prf)  # non-power-of-two on purpose
        strategy = get_strategy(name)
        for key in (k0, k1):
            assert np.array_equal(strategy.eval_full(key, prf), eval_full(key, prf))

    @pytest.mark.parametrize("name,params", VARIANTS)
    def test_split_parameters_do_not_change_output(self, name, params):
        k0, _ = _keys(441, seed=3)
        strategy = get_strategy(name, **params)
        assert np.array_equal(strategy.eval_full(k0, PRF), eval_full(k0, PRF))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_batch_matches_per_key_loop(self, name):
        keys = []
        for seed in range(3):
            k0, k1 = _keys(100, alpha=17 * seed % 100, seed=seed, beta=seed + 5)
            keys.extend([k0, k1])
        strategy = get_strategy(name)
        batch = strategy.eval_batch(keys, PRF)
        assert batch.shape == (len(keys), 100)
        for row, key in zip(batch, keys):
            assert np.array_equal(row, eval_full(key, PRF))

    @given(case=dpf_cases(prfs=fast_prf_names), name=st.sampled_from(ALL_STRATEGIES))
    @STANDARD_SETTINGS
    def test_property_matches_eval_full(self, case, name):
        (k0, k1), prf = case.keys()
        strategy = get_strategy(name)
        for key in (k0, k1):
            assert np.array_equal(strategy.eval_full(key, prf), eval_full(key, prf))

    def test_batch_rejects_mixed_domains(self):
        k0, _ = _keys(64)
        j0, _ = _keys(128)
        with pytest.raises(ValueError, match="same domain"):
            get_strategy("level_by_level").eval_batch([k0, j0], PRF)

    def test_rejects_wrong_prf(self):
        k0, _ = _keys(64)
        with pytest.raises(ValueError, match="reconstruct"):
            get_strategy("branch_parallel").eval_full(k0, get_prf("siphash"))


class TestAnalyticCosts:
    @pytest.mark.parametrize("name,params", VARIANTS)
    @pytest.mark.parametrize("domain", [1, 13, 257, 1000])
    def test_prf_blocks_and_peak_memory_are_exact(self, name, params, domain):
        batch = 3
        keys = []
        for seed in range(batch):
            k0, k1 = _keys(domain, alpha=seed % domain, seed=seed)
            keys.append(k0 if seed % 2 else k1)
        strategy = get_strategy(name, **params)
        counting = CountingPrf(PRF)
        meter = MemoryMeter()
        strategy.eval_batch(keys, counting, meter)
        cost = strategy.cost(batch, domain)
        assert counting.blocks == cost.prf_blocks
        assert meter.peak == cost.peak_mem_bytes
        assert meter.current == 0  # every device buffer released

    def test_figure6_memory_separation(self):
        """O(B L) level-by-level vs O(B K log L) memory-bounded."""
        batch, domain = 4, 1024
        log_subtrees = 4
        keys = [_keys(domain, seed=s)[s % 2] for s in range(batch)]

        lbl_meter, mbt_meter = MemoryMeter(), MemoryMeter()
        get_strategy("level_by_level").eval_batch(keys, PRF, lbl_meter)
        mbt = get_strategy("memory_bounded", log_subtrees=log_subtrees)
        mbt.eval_batch(keys, PRF, mbt_meter)

        # Level-by-level is Omega(B * L): the full leaf frontier lives at once.
        assert lbl_meter.peak >= 16 * batch * domain
        # Memory-bounded stays within the O(B * K * log L) analytic bound.
        subtrees = 2**log_subtrees
        depth = 10  # log2(1024)
        assert mbt_meter.peak <= 3 * NODE_BYTES * batch * subtrees * depth
        # And the separation is material, not a constant-factor accident.
        assert mbt_meter.peak * 4 < lbl_meter.peak

    def test_memory_bound_tightens_with_fewer_subtrees(self):
        batch, domain = 2, 4096
        peaks = []
        for log_subtrees in (6, 4, 2):
            meter = MemoryMeter()
            keys = [_keys(domain, seed=9)[0]] * batch
            get_strategy("memory_bounded", log_subtrees=log_subtrees).eval_batch(
                keys, PRF, meter
            )
            peaks.append(meter.peak)
        assert peaks[0] > peaks[1] > peaks[2]

    @given(batch=batch_sizes)
    @STANDARD_SETTINGS
    def test_peak_memory_scales_linearly_in_batch(self, batch):
        domain = 256
        for name in ALL_STRATEGIES:
            cost_1 = get_strategy(name).cost(1, domain)
            cost_b = get_strategy(name).cost(batch, domain)
            assert cost_b.peak_mem_bytes == batch * cost_1.peak_mem_bytes
            assert cost_b.prf_blocks == batch * cost_1.prf_blocks


class TestKernelPlans:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_plan_describes_the_workload(self, name):
        batch, table = 16, 4096
        plan = get_strategy(name).plan(batch, table, entry_bytes=8, prf_name="sha256")
        assert plan.strategy == name
        assert plan.batch_size == batch and plan.table_entries == table
        assert plan.prf_name == "sha256"
        assert plan.prf_cost == get_prf("sha256").gpu_cost
        assert plan.total_prf_blocks > 0
        assert plan.host_bytes_in > 0 and plan.host_bytes_out == batch * 8
        assert all(p.parallel_width >= 1 for p in plan.phases)

    def test_fused_strategies_avoid_materializing_shares(self):
        batch, table = 8, 1 << 16
        lbl = get_strategy("level_by_level").plan(batch, table)
        assert not lbl.fused
        assert lbl.peak_mem_bytes >= 16 * batch * table  # frontier in global mem
        for name in ("branch_parallel", "memory_bounded", "cooperative_groups"):
            plan = get_strategy(name).plan(batch, table)
            assert plan.fused
            assert plan.peak_mem_bytes < lbl.peak_mem_bytes

    def test_branch_parallel_trades_compute_for_memory(self):
        batch, table = 4, 1 << 14
        bp = get_strategy("branch_parallel").plan(batch, table)
        mbt = get_strategy("memory_bounded").plan(batch, table)
        assert bp.total_prf_blocks > mbt.total_prf_blocks  # O(L log L) vs O(L)
        assert bp.peak_mem_bytes < mbt.peak_mem_bytes
