"""The metrics registry: instruments, views, and the quantile bound.

The headline property is the histogram's: with fixed bucket bounds and
no sample retention, ``quantile(q)`` must come back within one bucket
width of the exact sample quantile — pinned here by a hypothesis
property over random samples, alongside deterministic bucket-boundary
cases (observations exactly on a bound, overflow, empty).
"""

import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)


class TestCounterAndGauge:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("served")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_sets_and_adds(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.snapshot() == 1.5


class TestHistogramBuckets:
    def test_default_buckets_double_from_a_microsecond(self):
        bounds = default_latency_buckets()
        assert bounds == DEFAULT_LATENCY_BUCKETS
        assert bounds[0] == 1e-6
        assert all(b2 == 2 * b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_boundary_observation_lands_in_its_own_bucket(self):
        # Bucket i counts bounds[i-1] < v <= bounds[i]: a value exactly
        # on a bound belongs to that bound's bucket, not the next one.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 1.5, 2.0, 2.5, 4.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 2, 0]

    def test_overflow_bucket_reports_the_exact_max(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        hist.observe(7.5)
        assert hist.counts == [0, 0, 2]
        # Any rank landing in the overflow bucket estimates as the
        # observed max — exact for the tail, conservative below it.
        assert hist.quantile(0.5) == 100.0
        assert hist.quantile(1.0) == 100.0

    def test_empty_histogram_quantile_is_zero(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.quantile(0.99) == 0.0
        assert hist.snapshot()["count"] == 0
        assert hist.snapshot()["min"] == 0.0

    def test_quantile_validates_q(self):
        hist = Histogram("h", buckets=(1.0,))
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                hist.quantile(bad)

    def test_bounds_must_strictly_increase_and_be_nonempty(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())

    def test_mean_and_minmax_are_exact(self):
        hist = Histogram("h", buckets=(1.0, 8.0))
        for value in (0.5, 2.0, 6.5):
            hist.observe(value)
        assert hist.mean == pytest.approx(3.0)
        assert hist.min == 0.5 and hist.max == 6.5

    def test_single_observation_every_quantile_is_that_value(self):
        hist = Histogram("h")  # default latency buckets
        hist.observe(3.2e-3)
        for q in (0.5, 0.99, 0.999, 1.0):
            assert hist.quantile(q) == pytest.approx(3.2e-3)

    def test_percentiles_keys(self):
        hist = Histogram("h")
        hist.observe(1e-3)
        assert set(hist.percentiles()) == {"p50", "p99", "p999"}


@settings(max_examples=200, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-7, max_value=16.0, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    q=st.sampled_from((0.5, 0.9, 0.99, 0.999)),
)
def test_quantile_estimate_within_one_bucket_width_of_exact(samples, q):
    """The acceptance property: p99 (and friends) without retaining
    samples, provably within one bucket width of the exact sample
    quantile.  Samples stay inside the bucketed range, so the overflow
    bucket's separate exact-max path is covered by the boundary tests
    above."""
    hist = Histogram("h")  # default buckets cover (0, ~16.8] seconds
    for value in samples:
        hist.observe(value)
    exact = sorted(samples)[max(1, math.ceil(q * len(samples))) - 1]
    estimate = hist.quantile(q)
    index = bisect_left(hist.bounds, exact)
    lower = hist.bounds[index - 1] if index > 0 else 0.0
    width = hist.bounds[index] - lower
    assert abs(estimate - exact) <= width + 1e-12
    assert hist.min <= estimate <= hist.max


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_name_collisions_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.register_view("x", dict)

    def test_unique_name_suffixes_on_collision(self):
        registry = MetricsRegistry()
        assert registry.unique_name("serving") == "serving"
        registry.register_view("serving", dict)
        assert registry.unique_name("serving") == "serving.2"
        registry.register_view("serving.2", dict)
        assert registry.unique_name("serving") == "serving.3"

    def test_histograms_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.histogram("stage.merge")
        registry.histogram("stage.plan")
        registry.histogram("other")
        assert set(registry.histograms("stage.")) == {
            "stage.merge",
            "stage.plan",
        }

    def test_views_are_sampled_lazily_at_snapshot_time(self):
        registry = MetricsRegistry()
        stats = {"hits": 0}
        registry.register_view("cache", lambda: dict(stats))
        stats["hits"] = 7  # mutated after registration
        assert registry.snapshot()["views"]["cache"] == {"hits": 7}

    def test_snapshot_carries_every_kind_and_optional_clock(self):
        ticks = iter((42.0, 43.0))
        registry = MetricsRegistry(clock=lambda: next(ticks))
        registry.counter("served").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat").observe(1e-3)
        snap = registry.snapshot()
        assert snap["counters"] == {"served": 3}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["t"] == 42.0

    def test_record_snapshot_appends(self):
        registry = MetricsRegistry()
        first = registry.record_snapshot()
        registry.counter("served").inc()
        second = registry.record_snapshot()
        assert registry.snapshots == [first, second]
        assert second["counters"]["served"] == 1
