"""Span-chain tracing: lifecycle, chain integrity, the null path.

Everything here runs against an injected fake clock, so span timings
are exact and every assertion is deterministic.  Three properties
carry the observability stack:

* spans/traces record exactly what the clock said, idempotently;
* ``chain_problems`` is a faithful machine-checkable definition of
  "complete, orphan-free span chain" (the acceptance criterion);
* the disabled-mode :data:`NULL_TRACER` honours the same surface
  while recording nothing and attaching nothing to requests.

The trace-threading contract on :class:`~repro.exec.EvalRequest`
(merge contributes only unambiguous single-slot contexts, unmerge
redistributes only on exact 1:1 alignment) is pinned here too —
misattributing a span to the wrong query would be worse than losing
it.
"""

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import gen
from repro.exec import EvalRequest
from repro.obs import (
    NULL_TRACER,
    REQUIRED_STAGES,
    RETRY_STAGES,
    STAGE_ADMIT,
    STAGE_DEMUX,
    STAGE_DISPATCH,
    STAGE_MERGE,
    STAGE_PLAN,
    STAGE_QUEUE,
    TRACE_OPS_PER_QUERY,
    MetricsRegistry,
    Tracer,
    annotate_request,
    chain_problems,
)


class FakeClock:
    """Monotonic fake: every read advances by ``step``."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        reading = self.now
        self.now += self.step
        return reading


def _keys(batch, domain=32, prf="siphash", seed=0, party=0):
    prf_obj = get_prf(prf)
    rng = np.random.default_rng(seed)
    return [
        gen(int(rng.integers(0, domain)), domain, prf_obj, rng, beta=i + 1)[party]
        for i in range(batch)
    ]


def _complete_chain(tracer, rounds=1):
    """A well-formed admit -> rounds*(queue/merge/plan/dispatch) ->
    demux chain, closed answered."""
    ctx = tracer.trace(request_id=7)
    ctx.end(ctx.begin(STAGE_ADMIT))
    for _ in range(rounds):
        for stage in RETRY_STAGES:
            ctx.end(ctx.begin(stage))
    ctx.end(ctx.begin(STAGE_DEMUX))
    ctx.close("answered")
    return ctx


class TestSpanLifecycle:
    def test_begin_and_end_read_the_injected_clock(self):
        tracer = Tracer(clock=FakeClock(start=10.0, step=1.0))
        ctx = tracer.trace()
        assert ctx.started_s == 10.0
        span = ctx.begin(STAGE_ADMIT)
        assert span.start_s == 11.0
        ctx.end(span, reason="deadline")
        assert span.end_s == 12.0
        assert span.duration_s == 1.0
        assert span.annotations == {"reason": "deadline"}

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        span = ctx.begin(STAGE_QUEUE)
        ctx.end(span, first=True)
        first_end = span.end_s
        ctx.end(span, second=True)  # must change nothing
        assert span.end_s == first_end
        assert span.annotations == {"first": True}

    def test_open_span_has_zero_duration_and_is_reported_open(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        span = ctx.begin(STAGE_MERGE)
        assert span.duration_s == 0.0
        assert ctx.open_spans() == [span]
        ctx.end(span)
        assert ctx.open_spans() == []

    def test_events_carry_their_own_timestamps(self):
        tracer = Tracer(clock=FakeClock(start=0.0))
        ctx = tracer.trace()
        ctx.event("retry", attempt=1)
        ctx.event("failover", shard=2)
        assert ctx.event_names() == ["retry", "failover"]
        assert ctx.events[0] == {"name": "retry", "t": 1.0, "attempt": 1}
        assert ctx.events[1]["shard"] == 2

    def test_close_is_idempotent_and_finishes_once(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.close("answered")
        ctx.close("failed")  # loses: only the first close counts
        assert ctx.status == "answered"
        assert tracer.finished == [ctx]
        assert ctx.duration_s > 0.0

    def test_drain_pops_finished_traces(self):
        tracer = Tracer(clock=FakeClock())
        first, second = tracer.trace(), tracer.trace()
        first.close("answered")
        second.close("shed")
        assert [t.trace_id for t in tracer.drain()] == [
            first.trace_id,
            second.trace_id,
        ]
        assert tracer.drain() == []

    def test_trace_ids_are_unique_and_monotonic(self):
        tracer = Tracer(clock=FakeClock())
        ids = [tracer.trace().trace_id for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_ended_spans_feed_the_stage_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(clock=FakeClock(step=0.5), metrics=registry)
        ctx = tracer.trace()
        ctx.end(ctx.begin(STAGE_DISPATCH))
        hist = registry.histogram("stage.dispatch")
        assert hist.count == 1
        assert hist.total == pytest.approx(0.5)

    def test_to_dict_round_trips_through_chain_problems(self):
        tracer = Tracer(clock=FakeClock())
        ctx = _complete_chain(tracer)
        assert chain_problems(ctx) == []
        assert chain_problems(ctx.to_dict()) == []


class TestChainProblems:
    def test_complete_single_round_chain_is_whole(self):
        assert chain_problems(_complete_chain(Tracer(clock=FakeClock()))) == []

    def test_retry_rounds_are_allowed_when_balanced(self):
        assert (
            chain_problems(_complete_chain(Tracer(clock=FakeClock()), rounds=3))
            == []
        )

    def test_never_closed_trace_is_flagged(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.end(ctx.begin(STAGE_ADMIT))
        problems = chain_problems(ctx)
        assert any("never closed" in p for p in problems)

    def test_orphaned_span_is_flagged(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.end(ctx.begin(STAGE_ADMIT))
        for stage in RETRY_STAGES:
            ctx.end(ctx.begin(stage))
        ctx.begin(STAGE_DEMUX)  # begun, never ended
        ctx.close("answered")
        problems = chain_problems(ctx)
        assert any("orphaned" in p and "demux" in p for p in problems)

    def test_missing_admit_and_demux_are_flagged(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        for stage in RETRY_STAGES:
            ctx.end(ctx.begin(stage))
        ctx.close("answered")
        problems = chain_problems(ctx)
        assert any("admit" in p for p in problems)
        assert any("demux" in p for p in problems)

    def test_admit_must_come_first(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.end(ctx.begin(STAGE_QUEUE))
        ctx.end(ctx.begin(STAGE_ADMIT))
        for stage in (STAGE_MERGE, STAGE_PLAN, STAGE_DISPATCH, STAGE_DEMUX):
            ctx.end(ctx.begin(stage))
        ctx.close("answered")
        assert any(
            "admit is not the first" in p for p in chain_problems(ctx)
        )

    def test_unbalanced_retry_group_is_flagged(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.end(ctx.begin(STAGE_ADMIT))
        for stage in RETRY_STAGES:
            ctx.end(ctx.begin(stage))
        # A second round that drops its plan span — the bug class.
        for stage in (STAGE_QUEUE, STAGE_MERGE, STAGE_DISPATCH):
            ctx.end(ctx.begin(stage))
        ctx.end(ctx.begin(STAGE_DEMUX))
        ctx.close("answered")
        assert any("unbalanced" in p for p in chain_problems(ctx))

    def test_span_outside_the_trace_window_is_flagged(self):
        trace = _complete_chain(Tracer(clock=FakeClock())).to_dict()
        trace["spans"][0]["start_s"] = trace["started_s"] - 5.0
        assert any(
            "outside the trace window" in p for p in chain_problems(trace)
        )

    def test_decreasing_start_times_are_flagged(self):
        trace = _complete_chain(Tracer(clock=FakeClock())).to_dict()
        trace["spans"][2]["start_s"] = trace["spans"][1]["start_s"] - 1.0
        trace["spans"][2]["end_s"] = trace["spans"][2]["start_s"]
        assert any("non-decreasing" in p for p in chain_problems(trace))


class TestNullTracer:
    def test_disabled_flag_and_shared_context(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.trace(request_id=1) is NULL_TRACER.trace()

    def test_every_operation_is_inert(self):
        ctx = NULL_TRACER.trace()
        span = ctx.begin(STAGE_ADMIT)
        ctx.end(span, annotation="dropped")
        ctx.event("retry", attempt=1)
        ctx.close("answered")
        assert ctx.open_spans() == []
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.finished == []

    def test_ops_budget_covers_the_serving_chain_with_retry_headroom(self):
        # One trace() + one close() + a begin/end pair per stage, plus
        # headroom for one retry round — the constant CI prices must
        # actually bound what the loop does.
        base = 2 + 2 * len(REQUIRED_STAGES)
        assert TRACE_OPS_PER_QUERY >= base


class TestAnnotateRequest:
    def test_annotates_every_carried_context_and_skips_none_slots(self):
        tracer = Tracer(clock=FakeClock())
        first, second = tracer.trace(), tracer.trace()
        request = EvalRequest(keys=_keys(2), prf_name="siphash")
        request.traces = (first, None, second)
        annotate_request(request, "failover", shard=1)
        assert first.event_names() == ["failover"]
        assert second.event_names() == ["failover"]
        assert first.events[0]["shard"] == 1

    def test_untraced_request_costs_nothing(self):
        request = EvalRequest(keys=_keys(1), prf_name="siphash")
        assert request.traces is None
        annotate_request(request, "failover")  # must not raise

    def test_object_without_traces_attribute_is_fine(self):
        annotate_request(object(), "retry")  # duck-typed: no-op


class TestRequestTraceThreading:
    """The EvalRequest plumbing that keeps spans attached to the right
    query through fusion, fan-out and retry."""

    def _traced(self, batch, seed, ctx):
        request = EvalRequest(keys=_keys(batch, seed=seed), prf_name="siphash")
        request.traces = (ctx,)
        return request

    def test_merge_collects_one_slot_per_constituent(self):
        tracer = Tracer(clock=FakeClock())
        first, second = tracer.trace(), tracer.trace()
        untraced = EvalRequest(keys=_keys(2, seed=2), prf_name="siphash")
        merged, sizes = EvalRequest.merge(
            [self._traced(1, 0, first), untraced, self._traced(3, 1, second)]
        )
        assert sizes == (1, 2, 3)
        assert merged.traces == (first, None, second)

    def test_merge_of_untraced_requests_stays_untraced(self):
        merged, _ = EvalRequest.merge(
            [EvalRequest(keys=_keys(b, seed=b), prf_name="siphash") for b in (1, 2)]
        )
        assert merged.traces is None

    def test_merge_never_misattributes_a_multi_slot_contribution(self):
        # A constituent already carrying several slots (itself a merge
        # product) is ambiguous — it must contribute None, not a guess.
        tracer = Tracer(clock=FakeClock())
        first, second = tracer.trace(), tracer.trace()
        multi = EvalRequest(keys=_keys(2, seed=0), prf_name="siphash")
        multi.traces = (first, second)
        merged, _ = EvalRequest.merge(
            [multi, self._traced(1, 1, tracer.trace())]
        )
        assert merged.traces[0] is None
        assert merged.traces[1] is not None

    def test_unmerge_redistributes_slots_one_to_one(self):
        tracer = Tracer(clock=FakeClock())
        contexts = [tracer.trace() for _ in range(3)]
        merged, sizes = EvalRequest.merge(
            [self._traced(b, b, ctx) for b, ctx in zip((1, 3, 2), contexts)]
        )
        pieces = EvalRequest.unmerge(merged, sizes)
        assert [p.traces for p in pieces] == [(ctx,) for ctx in contexts]

    def test_unmerge_with_misaligned_slots_drops_rather_than_guesses(self):
        tracer = Tracer(clock=FakeClock())
        merged, sizes = EvalRequest.merge(
            [self._traced(b, b, tracer.trace()) for b in (2, 2)]
        )
        # Re-split 4 keys three ways: no 1:1 alignment with the two
        # carried slots exists, so every piece must come back untraced.
        pieces = EvalRequest.unmerge(merged, (1, 2, 1))
        assert all(p.traces is None for p in pieces)

    def test_restrict_and_padded_share_the_trace_tuple(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        request = self._traced(2, 0, ctx)
        assert request.restrict(0, 16).traces == (ctx,)
        padded = request.padded(4)
        assert padded.traces == (ctx,)
