"""The report renderer: breakdowns and slowest-trace tables.

Driven entirely by fake-clock traces so every number in the rendered
output is pinned, and by the same dict forms `read_jsonl` returns so
the renderer provably works on reloaded exports.
"""

import pytest

from repro.obs import (
    RETRY_STAGES,
    STAGE_ADMIT,
    STAGE_DEMUX,
    STAGE_DISPATCH,
    Tracer,
    render_report,
    slowest_traces,
    stage_breakdown,
)

from tests.obs.test_trace import FakeClock, _complete_chain


def _session(trace_count=3):
    """Traces with strictly increasing durations (steps 1s, 2s, 3s...)."""
    traces = []
    for i in range(trace_count):
        tracer = Tracer(clock=FakeClock(step=float(i + 1)))
        traces.append(_complete_chain(tracer))
    return traces


class TestStageBreakdown:
    def test_pipeline_stages_come_first_in_order(self):
        tracer = Tracer(clock=FakeClock())
        ctx = _complete_chain(tracer)
        # An extra non-pipeline span name sorts after the pipeline.
        extra = tracer.trace()
        extra.end(extra.begin("zz_custom"))
        extra.end(extra.begin(STAGE_ADMIT))
        extra.close("answered")
        breakdown = stage_breakdown([ctx, extra])
        names = list(breakdown)
        assert names[0] == STAGE_ADMIT
        assert names[-1] == "zz_custom"
        assert set(RETRY_STAGES) < set(names)

    def test_shares_sum_to_one_and_stats_are_exact(self):
        breakdown = stage_breakdown(_session())
        assert sum(row["share"] for row in breakdown.values()) == pytest.approx(
            1.0
        )
        # Every span in a FakeClock(step=s) chain lasts exactly s.
        admit = breakdown[STAGE_ADMIT]
        assert admit["count"] == 3
        assert admit["total_s"] == pytest.approx(1.0 + 2.0 + 3.0)
        assert admit["max_s"] == pytest.approx(3.0)
        assert admit["mean_s"] == pytest.approx(2.0)

    def test_open_spans_are_excluded(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.begin(STAGE_DISPATCH)  # never ended
        assert stage_breakdown([ctx]) == {}

    def test_empty_input(self):
        assert stage_breakdown([]) == {}


class TestSlowestTraces:
    def test_sorted_slowest_first_and_truncated(self):
        traces = _session(trace_count=4)
        rows = slowest_traces(traces, top=2)
        assert len(rows) == 2
        assert rows[0]["duration_s"] > rows[1]["duration_s"]
        assert rows[0]["trace_id"] == traces[-1].trace_id

    def test_stage_durations_sum_across_retry_rounds(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        ctx = _complete_chain(tracer, rounds=2)
        (row,) = slowest_traces([ctx])
        # Two rounds of 1s-per-span queue spans: summed, not latest.
        assert row["stages_s"]["queue"] == pytest.approx(2.0)
        assert row["stages_s"][STAGE_ADMIT] == pytest.approx(1.0)

    def test_open_traces_are_excluded(self):
        tracer = Tracer(clock=FakeClock())
        open_trace = tracer.trace()
        assert slowest_traces([open_trace]) == []

    def test_events_are_listed_by_name(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.trace()
        ctx.event("retry", attempt=1)
        ctx.close("failed")
        (row,) = slowest_traces([ctx])
        assert row["events"] == ["retry"]
        assert row["status"] == "failed"


class TestRenderReport:
    def test_healthy_session_renders_every_section(self):
        traces = _session()
        snapshot = {
            "histograms": {
                "stage.dispatch": {
                    "count": 3,
                    "p50": 2e-3,
                    "p99": 3e-3,
                    "p999": 3e-3,
                }
            }
        }
        report = render_report(traces, snapshots=[snapshot], top=2)
        assert "traces: 3 (3 answered)" in report
        assert "chain integrity: OK" in report
        assert "per-stage latency breakdown:" in report
        assert "top 2 slowest traces:" in report
        assert "final snapshot histograms:" in report
        assert "stage.dispatch" in report

    def test_broken_chain_is_called_out(self):
        tracer = Tracer(clock=FakeClock())
        broken = tracer.trace()
        broken.end(broken.begin(STAGE_ADMIT))
        broken.begin(STAGE_DEMUX)  # orphan
        broken.close("answered")
        report = render_report([broken])
        assert "1 BROKEN" in report

    def test_renders_reloaded_dict_forms(self):
        traces = [t.to_dict() for t in _session()]
        report = render_report(traces)
        assert "chain integrity: OK" in report

    def test_empty_session(self):
        assert "traces: 0 (none)" in render_report([])
