"""JSONL export/import: the round trip is lossless and fails loudly.

An export is the session's evidence — `scripts/obs_report.py` and the
CI chain checks both read it back, so a trace must survive write/read
byte-identically (as its dict form) and a truncated or corrupted file
must raise, never silently drop the tail.
"""

import io

import pytest

from repro.obs import (
    STAGE_ADMIT,
    STAGE_DEMUX,
    MetricsRegistry,
    Tracer,
    chain_problems,
    read_jsonl,
    write_jsonl,
)

from tests.obs.test_trace import FakeClock, _complete_chain


class TestRoundTrip:
    def test_traces_and_snapshots_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        finished = [_complete_chain(tracer) for _ in range(3)]
        path = tmp_path / "session.jsonl"
        count = write_jsonl(
            path, traces=tracer.drain(), snapshots=[{"counters": {"served": 3}}]
        )
        assert count == 4
        traces, snapshots = read_jsonl(path)
        assert [t["trace_id"] for t in traces] == [c.trace_id for c in finished]
        assert traces == [c.to_dict() for c in finished]
        assert snapshots == [{"counters": {"served": 3}}]

    def test_chain_checker_runs_on_reloaded_dicts(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        whole = _complete_chain(tracer)
        broken = tracer.trace()
        broken.end(broken.begin(STAGE_ADMIT))
        broken.begin(STAGE_DEMUX)  # orphan
        broken.close("answered")
        path = tmp_path / "session.jsonl"
        write_jsonl(path, traces=tracer.drain())
        traces, _ = read_jsonl(path)
        assert chain_problems(traces[0]) == []
        assert whole.trace_id == traces[0]["trace_id"]
        assert chain_problems(traces[1])  # the orphan survives the trip

    def test_registry_appends_recorded_then_final_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("served").inc(1)
        registry.record_snapshot()
        registry.counter("served").inc(1)
        path = tmp_path / "session.jsonl"
        count = write_jsonl(path, registry=registry)
        assert count == 2  # one recorded + one final live snapshot
        _, snapshots = read_jsonl(path)
        assert [s["counters"]["served"] for s in snapshots] == [1, 2]

    def test_write_and_read_accept_open_handles(self):
        tracer = Tracer(clock=FakeClock())
        _complete_chain(tracer)
        buffer = io.StringIO()
        write_jsonl(buffer, traces=tracer.drain())
        buffer.seek(0)
        traces, snapshots = read_jsonl(buffer)
        assert len(traces) == 1 and snapshots == []

    def test_trace_dicts_pass_through_unchanged(self, tmp_path):
        trace = _complete_chain(Tracer(clock=FakeClock())).to_dict()
        path = tmp_path / "session.jsonl"
        write_jsonl(path, traces=[trace])
        traces, _ = read_jsonl(path)
        assert traces == [trace]


class TestFailureModes:
    def test_malformed_line_raises_with_its_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace", "trace_id": 0}\n{truncated')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)

    def test_unknown_kinds_are_skipped_for_forward_compat(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"kind": "profile", "data": 1}\n'
            '{"kind": "metrics", "snapshot": {"counters": {}}}\n'
        )
        traces, snapshots = read_jsonl(path)
        assert traces == []
        assert snapshots == [{"counters": {}}]

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"kind": "metrics", "snapshot": {}}\n\n')
        _, snapshots = read_jsonl(path)
        assert snapshots == [{}]
