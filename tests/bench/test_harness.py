"""The benchmark harness: smoke grid, verification, and JSON schema."""

import json

import numpy as np
import pytest

from repro.bench import (
    BenchCase,
    default_grid,
    results_payload,
    run_case,
    run_grid,
    smoke_grid,
    write_results,
)
from repro.bench.harness import (
    BACKEND_SELECT,
    BACKEND_SELECT_BACKENDS,
    INGEST,
    INGEST_MODES,
    PIR_ROUNDTRIP,
    REFERENCE,
    SCHEMA_VERSION,
    SERVING,
    _reference_blocks,
)
from repro.gpu import available_strategies


class TestGrids:
    def test_smoke_grid_covers_every_strategy(self):
        strategies = {case.strategy for case in smoke_grid()}
        assert set(available_strategies()) <= strategies
        assert REFERENCE in strategies

    def test_smoke_grid_is_small(self):
        for case in smoke_grid():
            assert case.log_domain <= 8
            assert case.repeats == 1 and case.warmup == 0

    def test_default_grid_prunes_branch_parallel_blowup(self):
        for case in default_grid(log_domains=(10, 16)):
            if case.strategy == "branch_parallel":
                assert case.log_domain <= 12

    def test_default_grid_includes_headline_case(self):
        cases = default_grid()
        assert any(
            c.prf == "aes128" and c.strategy == REFERENCE and c.log_domain == 16
            for c in cases
        )

    def test_default_grid_covers_every_ingest_mode(self):
        cases = default_grid()
        modes = {c.ingest for c in cases}
        assert set(INGEST_MODES) <= modes
        # Ingestion micro-cases exist at batch >= 64 in both paths.
        assert any(
            c.strategy == INGEST and c.batch >= 64 and c.ingest == "wire"
            for c in cases
        )
        assert any(
            c.strategy == INGEST and c.batch >= 64 and c.ingest == "objects"
            for c in cases
        )
        # Every arena case has a same-shape objects twin to compare to.
        # (Serving sessions are exempt: the aggregation loop speaks the
        # framed wire protocol only, so no objects twin exists.)
        base = {
            (c.prf, c.strategy, c.batch, c.log_domain)
            for c in cases
            if c.ingest == "objects"
        }
        for case in cases:
            if case.ingest != "objects" and case.strategy != SERVING:
                assert (case.prf, case.strategy, case.batch, case.log_domain) in base

    def test_default_grid_honors_axis_restrictions(self):
        cases = default_grid(prfs=["chacha20"], strategies=["memory_bounded"])
        assert cases
        assert all(c.prf == "chacha20" for c in cases)
        assert all(c.strategy == "memory_bounded" for c in cases)
        ingest_only = default_grid(prfs=["aes128"], strategies=[INGEST])
        assert ingest_only
        assert all(c.strategy == INGEST for c in ingest_only)
        # An explicit ingest request without aes128 runs on the
        # requested PRF rather than silently producing no cases.
        chacha_ingest = default_grid(prfs=["chacha20"], strategies=[INGEST])
        assert chacha_ingest
        assert all(c.prf == "chacha20" for c in chacha_ingest)

    def test_smoke_grid_covers_ingest_modes(self):
        cases = smoke_grid()
        assert any(c.ingest == "wire" and c.strategy != INGEST for c in cases)
        assert any(c.ingest == "arena" for c in cases)
        assert any(c.strategy == INGEST for c in cases)


class TestPirRoundtripFamily:
    def test_smoke_grid_covers_every_pir_serving_path(self):
        modes = {c.ingest for c in smoke_grid() if c.strategy == PIR_ROUNDTRIP}
        assert modes == set(INGEST_MODES)

    def test_default_grid_includes_the_family(self):
        cases = [c for c in default_grid() if c.strategy == PIR_ROUNDTRIP]
        assert {c.ingest for c in cases} == set(INGEST_MODES)
        # Both the small and the large table size are covered.
        assert len({c.log_domain for c in cases}) == 2

    def test_family_honors_strategy_restriction(self):
        assert not any(
            c.strategy == PIR_ROUNDTRIP
            for c in default_grid(strategies=["memory_bounded"])
        )
        only_pir = default_grid(prfs=["chacha20"], strategies=[PIR_ROUNDTRIP])
        assert only_pir
        assert all(c.strategy == PIR_ROUNDTRIP for c in only_pir)
        assert all(c.prf == "chacha20" for c in only_pir)

    @pytest.mark.parametrize("mode", INGEST_MODES)
    def test_pir_case_measures_and_verifies(self, mode):
        case = BenchCase(
            "siphash", PIR_ROUNDTRIP, 2, 5, ingest=mode, repeats=1, warmup=0
        )
        result = run_case(case)
        assert result.strategy == PIR_ROUNDTRIP
        assert result.qps > 0 and result.seconds > 0
        assert result.verified
        assert result.prf_blocks == 0 and result.peak_mem_bytes == 0

    def test_pir_case_unknown_ingest_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest mode"):
            run_case(
                BenchCase("siphash", PIR_ROUNDTRIP, 1, 4, ingest="bogus", repeats=1)
            )


class TestServingFamily:
    def test_smoke_grid_includes_a_serving_session(self):
        serving = [c for c in smoke_grid() if c.strategy == SERVING]
        assert serving
        assert all(c.slo_ms > 0 for c in serving)

    def test_default_grid_sweeps_load_and_slo(self):
        serving = [c for c in default_grid() if c.strategy == SERVING]
        assert {(c.offered_qps, c.slo_ms) for c in serving} == {
            (0.0, 1.0),
            (0.0, 8.0),
            (512.0, 1.0),
            (512.0, 8.0),
        }

    def test_family_honors_strategy_restriction(self):
        assert not any(
            c.strategy == SERVING for c in default_grid(strategies=["memory_bounded"])
        )
        only_serving = default_grid(prfs=["chacha20"], strategies=[SERVING])
        assert only_serving
        assert all(c.strategy == SERVING for c in only_serving)

    def test_serving_case_measures_verifies_and_reports_percentiles(self):
        case = BenchCase(
            "siphash", SERVING, 6, 5, ingest="wire", repeats=1, warmup=0, slo_ms=2.0
        )
        result = run_case(case)
        assert result.verified
        assert result.qps > 0 and result.seconds > 0
        assert result.p99_ms >= result.p50_ms > 0
        assert result.slo_ms == 2.0 and result.offered_qps == 0.0
        assert result.prf_blocks == 0 and result.peak_mem_bytes == 0

    def test_serving_case_requires_a_deadline(self):
        with pytest.raises(ValueError, match="slo_ms"):
            run_case(BenchCase("siphash", SERVING, 2, 4, repeats=1))

    def test_describe_carries_load_and_slo(self):
        burst = BenchCase("aes128", SERVING, 8, 10, slo_ms=1.0)
        paced = BenchCase("aes128", SERVING, 8, 10, offered_qps=512.0, slo_ms=8.0)
        assert "load=burst" in burst.describe() and "slo=1ms" in burst.describe()
        assert "load=512" in paced.describe() and "slo=8ms" in paced.describe()


class TestSchema8Axes:
    """The plan_cache / procs serving axes added by schema 8."""

    def test_describe_carries_cache_and_procs(self):
        warm = BenchCase(
            "aes128", SERVING, 8, 10, slo_ms=8.0, shards=2, plan_cache=True, procs=2
        )
        assert "cache=on" in warm.describe()
        assert "procs=2" in warm.describe()
        cold = BenchCase("aes128", SERVING, 8, 10, slo_ms=8.0)
        assert "cache=on" not in cold.describe()
        assert "procs" not in cold.describe()

    def test_default_grid_interleaves_plan_cache_twins(self):
        import dataclasses

        serving = [c for c in default_grid() if c.strategy == SERVING]
        warm = [c for c in serving if c.plan_cache]
        assert warm, "default grid lost its warm plan-cache rows"
        for index, case in enumerate(serving):
            if case.plan_cache:
                # Each warm row sits right after its identical cold twin
                # so the pair runs back to back in the same session.
                assert dataclasses.replace(serving[index - 1], plan_cache=True) == case

    def test_default_grid_backs_a_sharded_row_with_worker_pools(self):
        serving = [c for c in default_grid() if c.strategy == SERVING]
        pooled = [c for c in serving if c.procs]
        assert pooled
        assert all(c.shards > 0 for c in pooled)

    def test_smoke_grid_covers_both_new_axes(self):
        serving = [c for c in smoke_grid() if c.strategy == SERVING]
        assert any(c.plan_cache for c in serving)
        assert any(c.procs for c in serving)

    def test_procs_without_shards_rejected(self):
        case = BenchCase(
            "siphash", SERVING, 4, 4, slo_ms=2.0, procs=2, repeats=1, warmup=0
        )
        with pytest.raises(ValueError, match="shard"):
            run_case(case)

    def test_negative_procs_rejected(self):
        case = BenchCase(
            "siphash", SERVING, 4, 4, slo_ms=2.0, shards=2, procs=-1, repeats=1,
            warmup=0,
        )
        with pytest.raises(ValueError, match="procs"):
            run_case(case)

    def test_plan_cache_serving_case_reports_live_counters(self):
        warm = run_case(
            BenchCase(
                "siphash", SERVING, 6, 5, ingest="wire", repeats=1, warmup=0,
                slo_ms=2.0, plan_cache=True,
            )
        )
        assert warm.verified
        assert warm.plan_cache
        assert warm.plan_cache_hits + warm.plan_cache_misses > 0
        cold = run_case(
            BenchCase(
                "siphash", SERVING, 6, 5, ingest="wire", repeats=1, warmup=0,
                slo_ms=2.0,
            )
        )
        assert not cold.plan_cache
        assert cold.plan_cache_hits == 0
        assert cold.plan_cache_misses == 0
        assert cold.overlap_flushes == 0


class TestBackendSelectFamily:
    """The schema-9 Figure 10 family: modeled pricing, verified answers."""

    def test_smoke_grid_runs_every_backend(self):
        rows = [c for c in smoke_grid() if c.strategy == BACKEND_SELECT]
        assert {c.backend for c in rows} == set(BACKEND_SELECT_BACKENDS)
        # Two batch sizes, so routing sees both sides of the axis.
        assert len({c.batch for c in rows}) == 2

    def test_default_grid_interleaves_backend_triples(self):
        rows = [c for c in default_grid() if c.strategy == BACKEND_SELECT]
        assert rows, "default grid lost the backend_select family"
        assert {c.prf for c in rows} == {"aes128", "chacha20"}
        assert {c.batch for c in rows} == {1, 16, 256}
        # cpu / gpu / hybrid run back to back at every shape, so
        # host-load drift across the grid cannot skew the comparison.
        for i in range(0, len(rows), 3):
            triple = rows[i : i + 3]
            assert [c.backend for c in triple] == list(BACKEND_SELECT_BACKENDS)
            assert len({(c.prf, c.batch, c.log_domain) for c in triple}) == 1

    def test_family_honors_strategy_restriction(self):
        assert not any(
            c.strategy == BACKEND_SELECT
            for c in default_grid(strategies=["memory_bounded"])
        )
        only = default_grid(prfs=["siphash"], strategies=[BACKEND_SELECT])
        assert only
        assert all(c.strategy == BACKEND_SELECT for c in only)
        assert all(c.prf == "siphash" for c in only)

    @pytest.mark.parametrize("backend", BACKEND_SELECT_BACKENDS)
    def test_case_verifies_then_prices(self, backend):
        case = BenchCase(
            "aes128", BACKEND_SELECT, 4, 6, backend=backend, repeats=1, warmup=0
        )
        result = run_case(case)
        assert result.backend == backend
        assert result.verified
        assert result.qps > 0 and result.seconds > 0
        assert result.prf_blocks > 0 and result.peak_mem_bytes > 0

    def test_hybrid_row_matches_the_better_twin(self):
        """The acceptance criterion at one shape: hybrid QPS is the max
        of its cpu/gpu twins (it routes to whichever model is cheaper)."""
        by_backend = {}
        for backend in BACKEND_SELECT_BACKENDS:
            case = BenchCase(
                "aes128", BACKEND_SELECT, 2, 8, backend=backend, repeats=1, warmup=0
            )
            by_backend[backend] = run_case(case).qps
        assert by_backend["hybrid"] == pytest.approx(
            max(by_backend["cpu"], by_backend["gpu"])
        )

    def test_unknown_backend_rejected(self):
        case = BenchCase(
            "aes128", BACKEND_SELECT, 2, 6, backend="tpu", repeats=1, warmup=0
        )
        with pytest.raises(ValueError, match="unknown backend"):
            run_case(case)

    def test_describe_carries_the_backend_axis(self):
        case = BenchCase("aes128", BACKEND_SELECT, 2, 8, backend="hybrid")
        assert "backend=hybrid" in case.describe()

    def test_result_echoes_the_backend_axis(self):
        eval_row = run_case(
            BenchCase("siphash", "memory_bounded", 1, 4, repeats=1, warmup=0)
        )
        assert eval_row.backend == ""


class TestDescribe:
    def test_describe_carries_every_axis(self):
        case = BenchCase("aes128", PIR_ROUNDTRIP, 4, 10, ingest="wire")
        text = case.describe()
        for token in ("aes128", "pir_roundtrip", "wire", "B=4", "L=2^10"):
            assert token in text

    def test_run_grid_progress_uses_describe(self):
        lines = []
        run_grid(
            [BenchCase("siphash", REFERENCE, 1, 3, repeats=1, warmup=0)],
            progress=lines.append,
        )
        assert lines == [BenchCase("siphash", REFERENCE, 1, 3, repeats=1, warmup=0).describe()]


class TestRunCase:
    def test_strategy_case_measures_and_verifies(self):
        case = BenchCase("chacha20", "memory_bounded", 2, 6, repeats=1, warmup=0)
        result = run_case(case)
        assert result.qps > 0
        assert result.seconds > 0
        assert result.verified
        assert result.peak_mem_bytes > 0
        assert result.domain_size == 64
        assert result.prf_blocks > 0
        assert result.ns_per_prf_block == pytest.approx(
            result.seconds * 1e9 / result.prf_blocks
        )

    @pytest.mark.parametrize("mode", ("wire", "arena"))
    def test_ingest_mode_eval_cases_measure_and_verify(self, mode):
        case = BenchCase(
            "chacha20", "memory_bounded", 2, 6, ingest=mode, repeats=1, warmup=0
        )
        result = run_case(case)
        assert result.ingest == mode
        assert result.qps > 0 and result.verified
        # The peak is metered on the actual ingest path, not a proxy.
        objects = run_case(
            BenchCase("chacha20", "memory_bounded", 2, 6, repeats=1, warmup=0)
        )
        assert result.peak_mem_bytes == objects.peak_mem_bytes > 0

    def test_ingest_micro_case(self):
        case = BenchCase("siphash", INGEST, 8, 6, ingest="wire", repeats=1, warmup=0)
        result = run_case(case)
        assert result.strategy == INGEST
        assert result.prf_blocks == 0 and result.ns_per_prf_block == 0.0
        assert result.qps > 0 and result.verified
        objects = run_case(
            BenchCase("siphash", INGEST, 8, 6, ingest="objects", repeats=1, warmup=0)
        )
        assert objects.qps > 0

    def test_ingest_micro_rejects_arena_mode(self):
        with pytest.raises(ValueError, match="'wire' or 'objects'"):
            run_case(BenchCase("siphash", INGEST, 2, 4, ingest="arena", repeats=1))

    def test_reference_rejects_arena_modes(self):
        with pytest.raises(ValueError, match="no arena ingestion"):
            run_case(BenchCase("siphash", REFERENCE, 1, 4, ingest="wire", repeats=1))

    def test_unknown_ingest_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest mode"):
            run_case(
                BenchCase("siphash", "memory_bounded", 1, 4, ingest="bogus", repeats=1)
            )

    def test_reference_case(self):
        case = BenchCase("siphash", REFERENCE, 1, 5, repeats=1, warmup=0)
        result = run_case(case)
        assert result.prf_blocks == _reference_blocks(1, 5) == 2 * (2**5 - 1)
        assert not result.verified  # nothing to verify against itself

    def test_verification_catches_divergence(self, monkeypatch):
        from repro.gpu.strategies import LevelByLevel

        def broken_eval(self, kb, prf, meter, workspace=None):
            good = LevelByLevel._eval_orig(self, kb, prf, meter, workspace)
            return good + np.uint64(1)

        monkeypatch.setattr(
            LevelByLevel, "_eval_orig", LevelByLevel._eval, raising=False
        )
        monkeypatch.setattr(LevelByLevel, "_eval", broken_eval)
        case = BenchCase("siphash", "level_by_level", 1, 4, repeats=1, warmup=0)
        with pytest.raises(ValueError, match="diverged"):
            run_case(case)


class TestJsonOutput:
    def test_payload_schema_and_roundtrip(self, tmp_path):
        results = run_grid(
            [BenchCase("siphash", "memory_bounded", 1, 4, repeats=1, warmup=0)]
        )
        payload = results_payload(results)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["host"]["numpy"]
        path = tmp_path / "bench.json"
        write_results(results, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["results"][0]["strategy"] == "memory_bounded"
        assert loaded["results"][0]["qps"] > 0

    def test_progress_callback_fires(self):
        lines = []
        run_grid(
            [BenchCase("siphash", REFERENCE, 1, 3, repeats=1, warmup=0)],
            progress=lines.append,
        )
        assert len(lines) == 1 and "siphash" in lines[0]
