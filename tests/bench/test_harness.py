"""The benchmark harness: smoke grid, verification, and JSON schema."""

import json

import numpy as np
import pytest

from repro.bench import (
    BenchCase,
    default_grid,
    results_payload,
    run_case,
    run_grid,
    smoke_grid,
    write_results,
)
from repro.bench.harness import REFERENCE, SCHEMA_VERSION, _reference_blocks
from repro.gpu import available_strategies


class TestGrids:
    def test_smoke_grid_covers_every_strategy(self):
        strategies = {case.strategy for case in smoke_grid()}
        assert set(available_strategies()) <= strategies
        assert REFERENCE in strategies

    def test_smoke_grid_is_small(self):
        for case in smoke_grid():
            assert case.log_domain <= 8
            assert case.repeats == 1 and case.warmup == 0

    def test_default_grid_prunes_branch_parallel_blowup(self):
        for case in default_grid(log_domains=(10, 16)):
            if case.strategy == "branch_parallel":
                assert case.log_domain <= 12

    def test_default_grid_includes_headline_case(self):
        cases = default_grid()
        assert any(
            c.prf == "aes128" and c.strategy == REFERENCE and c.log_domain == 16
            for c in cases
        )


class TestRunCase:
    def test_strategy_case_measures_and_verifies(self):
        case = BenchCase("chacha20", "memory_bounded", 2, 6, repeats=1, warmup=0)
        result = run_case(case)
        assert result.qps > 0
        assert result.seconds > 0
        assert result.verified
        assert result.peak_mem_bytes > 0
        assert result.domain_size == 64
        assert result.prf_blocks > 0
        assert result.ns_per_prf_block == pytest.approx(
            result.seconds * 1e9 / result.prf_blocks
        )

    def test_reference_case(self):
        case = BenchCase("siphash", REFERENCE, 1, 5, repeats=1, warmup=0)
        result = run_case(case)
        assert result.prf_blocks == _reference_blocks(1, 5) == 2 * (2**5 - 1)
        assert not result.verified  # nothing to verify against itself

    def test_verification_catches_divergence(self, monkeypatch):
        from repro.gpu.strategies import LevelByLevel

        def broken_eval(self, kb, prf, meter):
            good = LevelByLevel._eval_orig(self, kb, prf, meter)
            return good + np.uint64(1)

        monkeypatch.setattr(
            LevelByLevel, "_eval_orig", LevelByLevel._eval, raising=False
        )
        monkeypatch.setattr(LevelByLevel, "_eval", broken_eval)
        case = BenchCase("siphash", "level_by_level", 1, 4, repeats=1, warmup=0)
        with pytest.raises(ValueError, match="diverged"):
            run_case(case)


class TestJsonOutput:
    def test_payload_schema_and_roundtrip(self, tmp_path):
        results = run_grid(
            [BenchCase("siphash", "memory_bounded", 1, 4, repeats=1, warmup=0)]
        )
        payload = results_payload(results)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["host"]["numpy"]
        path = tmp_path / "bench.json"
        write_results(results, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["results"][0]["strategy"] == "memory_bounded"
        assert loaded["results"][0]["qps"] > 0

    def test_progress_callback_fires(self):
        lines = []
        run_grid(
            [BenchCase("siphash", REFERENCE, 1, 3, repeats=1, warmup=0)],
            progress=lines.append,
        )
        assert len(lines) == 1 and "siphash" in lines[0]
