"""The bench CLI front end: --filter subsetting and --list mode."""

import importlib.util
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "bench.py"


@pytest.fixture(scope="module")
def bench_cli():
    spec = importlib.util.spec_from_file_location("bench_cli", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_cli"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("bench_cli", None)


class TestFilter:
    def test_filter_subsets_by_substring(self, bench_cli):
        args = bench_cli._parse_args(["--filter", "pir_roundtrip"])
        cases = bench_cli.select_cases(args)
        assert cases
        assert all(c.strategy == "pir_roundtrip" for c in cases)
        everything = bench_cli.select_cases(bench_cli._parse_args([]))
        assert len(cases) < len(everything)

    def test_filter_is_case_insensitive_and_repeatable(self, bench_cli):
        args = bench_cli._parse_args(
            ["--filter", "PIR_ROUNDTRIP", "--filter", "reference"]
        )
        strategies = {c.strategy for c in bench_cli.select_cases(args)}
        assert strategies == {"pir_roundtrip", "reference"}

    def test_filter_matches_any_axis_token(self, bench_cli):
        args = bench_cli._parse_args(["--smoke", "--filter", "L=2^6"])
        cases = bench_cli.select_cases(args)
        assert cases
        assert all(c.log_domain == 6 for c in cases)

    def test_no_match_exits_2_and_writes_nothing(self, bench_cli, tmp_path, capsys):
        """A typo'd filter must be a loud usage error (exit 2), never a
        silently-written empty run."""
        out = tmp_path / "must_not_exist.json"
        assert (
            bench_cli.main(
                ["--filter", "no-such-case-anywhere", "--out", str(out)]
            )
            == 2
        )
        assert "no cases match" in capsys.readouterr().err
        assert not out.exists()


class TestList:
    def test_list_prints_cases_and_runs_nothing(self, bench_cli, tmp_path, capsys):
        out = tmp_path / "should_not_exist.json"
        assert bench_cli.main(["--list", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "pir_roundtrip" in printed
        assert "cases selected" in printed
        assert not out.exists()

    def test_filter_selects_the_serving_family(self, bench_cli):
        cases = bench_cli.select_cases(bench_cli._parse_args(["--filter", "serving"]))
        assert cases
        assert all(c.strategy == "serving" for c in cases)
        assert {c.offered_qps for c in cases} == {0.0, 512.0}
        assert {c.slo_ms for c in cases} == {1.0, 8.0}

    def test_filter_selects_the_backend_select_family(self, bench_cli):
        cases = bench_cli.select_cases(
            bench_cli._parse_args(["--filter", "backend_select"])
        )
        assert cases
        assert all(c.strategy == "backend_select" for c in cases)
        assert {c.backend for c in cases} == {"cpu", "gpu", "hybrid"}

    def test_strategy_axis_accepts_backend_select(self, bench_cli):
        args = bench_cli._parse_args(["--strategies", "backend_select"])
        cases = bench_cli.select_cases(args)
        assert cases
        assert all(c.strategy == "backend_select" for c in cases)

    def test_list_composes_with_filter(self, bench_cli, capsys):
        assert bench_cli.main(["--list", "--filter", "ingest"]) == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line and not line.endswith("cases selected")
        ]
        assert lines
        assert all("ingest" in line for line in lines)
