"""The fig_sweeps CLI: figure/table CSV emission from a bench artifact.

Claims: eval-family rows become one CSV line each (grouped, batch-
ordered) with measured, modeled, and modeled-pipelined QPS columns;
non-eval families are skipped; resident-keys (``arena``) rows model no
parse stage so their pipeline speedup is exactly 1; the ``table``
sweep re-pivots the same points ordered by table size (Fig 13/14); the
``prf`` sweep reduces to one best-measured row per (prf, shape) with
the CPU-baseline comparison columns (Table 5); and every emitted
header is its frozen ``*CSV_COLUMNS`` schema CI checks against.
"""

import csv
import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "fig_sweeps.py"


@pytest.fixture(scope="module")
def fig_sweeps():
    spec = importlib.util.spec_from_file_location("fig_sweeps_cli", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["fig_sweeps_cli"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("fig_sweeps_cli", None)


def _row(strategy, batch, ingest="wire", prf="aes128", log_domain=8, qps=100.0):
    return {
        "strategy": strategy,
        "prf": prf,
        "log_domain": log_domain,
        "domain_size": 1 << log_domain,
        "ingest": ingest,
        "batch": batch,
        "qps": qps,
    }


def _artifact(tmp_path, results):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": 8, "results": results}))
    return str(path)


class TestSweepRows:
    def test_non_eval_families_are_skipped(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [
                _row("level_by_level", 4),
                _row("reference", 4),
                _row("ingest", 4),
                _row("pir_roundtrip", 4),
                _row("serving", 4),
            ]
        )
        assert [r["strategy"] for r in rows] == ["level_by_level"]

    def test_groups_are_batch_ordered(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [
                _row("level_by_level", 16),
                _row("branch_parallel", 4),
                _row("level_by_level", 2),
            ]
        )
        assert [(r["strategy"], r["batch"]) for r in rows] == [
            ("branch_parallel", 4),
            ("level_by_level", 2),
            ("level_by_level", 16),
        ]

    def test_pipelining_never_slows_the_model(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [_row("memory_bounded", 64, log_domain=14), _row("level_by_level", 8)]
        )
        for row in rows:
            assert row["modeled_pipelined_qps"] >= row["modeled_qps"]
            assert row["pipeline_speedup"] >= 1.0

    def test_resident_keys_have_no_parse_stage_to_hide(self, fig_sweeps):
        (row,) = fig_sweeps.sweep_rows([_row("memory_bounded", 8, ingest="arena")])
        assert row["pipeline_speedup"] == 1.0
        assert row["modeled_pipelined_qps"] == row["modeled_qps"]

    def test_wire_ingest_models_a_real_parse_stage(self, fig_sweeps):
        # A big batch on a small domain is parse-heavy enough that the
        # sequential model is strictly slower than the pipelined one.
        (row,) = fig_sweeps.sweep_rows(
            [_row("memory_bounded", 256, ingest="wire", log_domain=6)]
        )
        assert row["modeled_pipelined_qps"] > row["modeled_qps"]


class TestTableSweep:
    def test_groups_are_table_size_ordered(self, fig_sweeps):
        rows = fig_sweeps.table_sweep_rows(
            [
                _row("level_by_level", 4, log_domain=12),
                _row("level_by_level", 4, log_domain=8),
                _row("branch_parallel", 4, log_domain=10),
                _row("serving", 4),
            ]
        )
        assert [(r["strategy"], r["log_domain"]) for r in rows] == [
            ("branch_parallel", 10),
            ("level_by_level", 8),
            ("level_by_level", 12),
        ]

    def test_same_pricing_as_the_batch_sweep(self, fig_sweeps):
        """The table pivot reorders the batch sweep's rows; it must
        never reprice them."""
        results = [
            _row("memory_bounded", 8, log_domain=8),
            _row("memory_bounded", 8, log_domain=12),
        ]
        by_batch = {
            (r["log_domain"], r["batch"]): r["modeled_qps"]
            for r in fig_sweeps.sweep_rows(results)
        }
        for row in fig_sweeps.table_sweep_rows(results):
            assert row["modeled_qps"] == by_batch[(row["log_domain"], row["batch"])]
            assert set(row) == set(fig_sweeps.TABLE_CSV_COLUMNS)


class TestPrfSweep:
    def test_reduces_to_the_best_measured_strategy_per_shape(self, fig_sweeps):
        rows = fig_sweeps.prf_sweep_rows(
            [
                _row("level_by_level", 4, qps=50.0),
                _row("memory_bounded", 4, qps=90.0),
                _row("reference", 4, qps=999.0),
            ]
        )
        assert [(r["prf"], r["strategy"], r["measured_qps"]) for r in rows] == [
            ("aes128", "memory_bounded", 90.0)
        ]

    def test_cpu_column_prices_the_aesni_baseline(self, fig_sweeps):
        """chacha20 (no AES-NI assist) must show a larger modeled
        GPU-over-CPU win than aes128 at the same shape — the per-PRF
        acceleration story Table 5 exists to tell."""
        rows = fig_sweeps.prf_sweep_rows(
            [
                _row("memory_bounded", 256, log_domain=14, prf="aes128"),
                _row("memory_bounded", 256, log_domain=14, prf="chacha20"),
            ]
        )
        by_prf = {r["prf"]: r for r in rows}
        for row in rows:
            assert row["cpu_modeled_qps"] > 0
            assert row["gpu_vs_cpu"] == pytest.approx(
                row["modeled_qps"] / row["cpu_modeled_qps"], rel=0.01
            )
        assert by_prf["chacha20"]["gpu_vs_cpu"] > by_prf["aes128"]["gpu_vs_cpu"]

    def test_cpu_wins_small_batches_and_loses_large(self, fig_sweeps):
        small, large = fig_sweeps.prf_sweep_rows(
            [
                _row("memory_bounded", 1, log_domain=10),
                _row("memory_bounded", 256, log_domain=10),
            ]
        )
        assert small["gpu_vs_cpu"] < 1.0 < large["gpu_vs_cpu"]


class TestCli:
    def test_writes_the_frozen_csv_schema(self, fig_sweeps, tmp_path, capsys):
        artifact = _artifact(
            tmp_path, [_row("level_by_level", 4), _row("reference", 4)]
        )
        out = tmp_path / "sweeps.csv"
        assert fig_sweeps.main([artifact, "--out", str(out)]) == 0
        with open(out, newline="") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == list(fig_sweeps.CSV_COLUMNS)
        assert len(parsed) == 2  # header + the one eval row
        assert "wrote 1 sweep rows" in capsys.readouterr().out

    def test_stdout_is_the_default_sink(self, fig_sweeps, tmp_path, capsys):
        artifact = _artifact(tmp_path, [_row("branch_parallel", 2)])
        assert fig_sweeps.main([artifact]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == ",".join(fig_sweeps.CSV_COLUMNS)
        assert lines[1].startswith("aes128,branch_parallel,8,wire,2,")

    def test_device_axis_changes_the_model_not_the_measurement(
        self, fig_sweeps, tmp_path, capsys
    ):
        artifact = _artifact(tmp_path, [_row("level_by_level", 8)])
        assert fig_sweeps.main([artifact, "--device", "V100"]) == 0
        v100 = capsys.readouterr().out.strip().splitlines()[1].split(",")
        assert fig_sweeps.main([artifact, "--device", "A100"]) == 0
        a100 = capsys.readouterr().out.strip().splitlines()[1].split(",")
        columns = list(fig_sweeps.CSV_COLUMNS)
        assert v100[columns.index("measured_qps")] == a100[columns.index("measured_qps")]
        assert v100[columns.index("modeled_qps")] != a100[columns.index("modeled_qps")]

    def test_sweep_axis_selects_the_frozen_schema(
        self, fig_sweeps, tmp_path, capsys
    ):
        artifact = _artifact(
            tmp_path,
            [
                _row("memory_bounded", 4, log_domain=8),
                _row("memory_bounded", 4, log_domain=12),
            ],
        )
        assert fig_sweeps.main([artifact, "--sweep", "table"]) == 0
        table_lines = capsys.readouterr().out.strip().splitlines()
        assert table_lines[0] == ",".join(fig_sweeps.TABLE_CSV_COLUMNS)
        assert len(table_lines) == 3
        assert fig_sweeps.main([artifact, "--sweep", "prf"]) == 0
        prf_lines = capsys.readouterr().out.strip().splitlines()
        assert prf_lines[0] == ",".join(fig_sweeps.PRF_CSV_COLUMNS)
        assert len(prf_lines) == 3

    def test_non_artifact_json_is_a_loud_usage_error(
        self, fig_sweeps, tmp_path, capsys
    ):
        path = tmp_path / "not_bench.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert fig_sweeps.main([str(path)]) == 2
        assert "no 'results'" in capsys.readouterr().err

    def test_artifact_without_eval_rows_is_a_usage_error(
        self, fig_sweeps, tmp_path, capsys
    ):
        artifact = _artifact(tmp_path, [_row("serving", 8), _row("reference", 1)])
        assert fig_sweeps.main([artifact]) == 2
        assert "no eval-family rows" in capsys.readouterr().err
