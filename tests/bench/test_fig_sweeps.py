"""The fig_sweeps CLI: Figure 8/9 CSV emission from a bench artifact.

Claims: eval-family rows become one CSV line each (grouped, batch-
ordered) with measured, modeled, and modeled-pipelined QPS columns;
non-eval families are skipped; resident-keys (``arena``) rows model no
parse stage so their pipeline speedup is exactly 1; and the emitted
header is the frozen ``CSV_COLUMNS`` schema CI checks against.
"""

import csv
import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "fig_sweeps.py"


@pytest.fixture(scope="module")
def fig_sweeps():
    spec = importlib.util.spec_from_file_location("fig_sweeps_cli", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["fig_sweeps_cli"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("fig_sweeps_cli", None)


def _row(strategy, batch, ingest="wire", prf="aes128", log_domain=8, qps=100.0):
    return {
        "strategy": strategy,
        "prf": prf,
        "log_domain": log_domain,
        "domain_size": 1 << log_domain,
        "ingest": ingest,
        "batch": batch,
        "qps": qps,
    }


def _artifact(tmp_path, results):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": 8, "results": results}))
    return str(path)


class TestSweepRows:
    def test_non_eval_families_are_skipped(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [
                _row("level_by_level", 4),
                _row("reference", 4),
                _row("ingest", 4),
                _row("pir_roundtrip", 4),
                _row("serving", 4),
            ]
        )
        assert [r["strategy"] for r in rows] == ["level_by_level"]

    def test_groups_are_batch_ordered(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [
                _row("level_by_level", 16),
                _row("branch_parallel", 4),
                _row("level_by_level", 2),
            ]
        )
        assert [(r["strategy"], r["batch"]) for r in rows] == [
            ("branch_parallel", 4),
            ("level_by_level", 2),
            ("level_by_level", 16),
        ]

    def test_pipelining_never_slows_the_model(self, fig_sweeps):
        rows = fig_sweeps.sweep_rows(
            [_row("memory_bounded", 64, log_domain=14), _row("level_by_level", 8)]
        )
        for row in rows:
            assert row["modeled_pipelined_qps"] >= row["modeled_qps"]
            assert row["pipeline_speedup"] >= 1.0

    def test_resident_keys_have_no_parse_stage_to_hide(self, fig_sweeps):
        (row,) = fig_sweeps.sweep_rows([_row("memory_bounded", 8, ingest="arena")])
        assert row["pipeline_speedup"] == 1.0
        assert row["modeled_pipelined_qps"] == row["modeled_qps"]

    def test_wire_ingest_models_a_real_parse_stage(self, fig_sweeps):
        # A big batch on a small domain is parse-heavy enough that the
        # sequential model is strictly slower than the pipelined one.
        (row,) = fig_sweeps.sweep_rows(
            [_row("memory_bounded", 256, ingest="wire", log_domain=6)]
        )
        assert row["modeled_pipelined_qps"] > row["modeled_qps"]


class TestCli:
    def test_writes_the_frozen_csv_schema(self, fig_sweeps, tmp_path, capsys):
        artifact = _artifact(
            tmp_path, [_row("level_by_level", 4), _row("reference", 4)]
        )
        out = tmp_path / "sweeps.csv"
        assert fig_sweeps.main([artifact, "--out", str(out)]) == 0
        with open(out, newline="") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == list(fig_sweeps.CSV_COLUMNS)
        assert len(parsed) == 2  # header + the one eval row
        assert "wrote 1 sweep rows" in capsys.readouterr().out

    def test_stdout_is_the_default_sink(self, fig_sweeps, tmp_path, capsys):
        artifact = _artifact(tmp_path, [_row("branch_parallel", 2)])
        assert fig_sweeps.main([artifact]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == ",".join(fig_sweeps.CSV_COLUMNS)
        assert lines[1].startswith("aes128,branch_parallel,8,wire,2,")

    def test_device_axis_changes_the_model_not_the_measurement(
        self, fig_sweeps, tmp_path, capsys
    ):
        artifact = _artifact(tmp_path, [_row("level_by_level", 8)])
        assert fig_sweeps.main([artifact, "--device", "V100"]) == 0
        v100 = capsys.readouterr().out.strip().splitlines()[1].split(",")
        assert fig_sweeps.main([artifact, "--device", "A100"]) == 0
        a100 = capsys.readouterr().out.strip().splitlines()[1].split(",")
        columns = list(fig_sweeps.CSV_COLUMNS)
        assert v100[columns.index("measured_qps")] == a100[columns.index("measured_qps")]
        assert v100[columns.index("modeled_qps")] != a100[columns.index("modeled_qps")]

    def test_non_artifact_json_is_a_loud_usage_error(
        self, fig_sweeps, tmp_path, capsys
    ):
        path = tmp_path / "not_bench.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert fig_sweeps.main([str(path)]) == 2
        assert "no 'results'" in capsys.readouterr().err

    def test_artifact_without_eval_rows_is_a_usage_error(
        self, fig_sweeps, tmp_path, capsys
    ):
        artifact = _artifact(tmp_path, [_row("serving", 8), _row("reference", 1)])
        assert fig_sweeps.main([artifact]) == 2
        assert "no eval-family rows" in capsys.readouterr().err
