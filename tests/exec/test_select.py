"""Hybrid routing correctness: selection, bit-identity, monotonicity.

Claims: ``select_backend`` is a pure cheapest-candidate decision that
skips unpriceable candidates; ``HybridBackend`` is bit-exact to the
reference oracle across every key-source form, residency mode, and
candidate set; and its crossover is *monotone* — once a shape's routing
flips to the GPU side at some pow2 bucket it never flips back at a
larger one.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import CPU_BASELINE, CpuBackend
from repro.crypto import get_prf
from repro.dpf import eval_full, gen, pack_keys
from repro.exec import (
    EvalRequest,
    HybridBackend,
    MultiGpuBackend,
    PlanCache,
    SimulatedBackend,
    SingleGpuBackend,
    select_backend,
)
from repro.gpu import KeyArena, V100
from repro.gpu.device import A100

from tests.strategies import STANDARD_SETTINGS, dpf_cases

CANDIDATE_SETS = {
    "cpu_only": lambda: [CpuBackend()],
    "gpu_only": lambda: [SingleGpuBackend(V100)],
    "cpu_gpu": lambda: [CpuBackend(), SingleGpuBackend(V100)],
    "cpu_mixed_gpus": lambda: [
        CpuBackend(),
        SingleGpuBackend(V100),
        MultiGpuBackend([V100, A100]),
    ],
}


def _keys(batch, domain, prf_name="aes128", seed=11):
    prf = get_prf(prf_name)
    rng = np.random.default_rng(seed)
    return [
        gen(int(rng.integers(0, domain)), domain, prf, rng, beta=i + 1)[i % 2]
        for i in range(batch)
    ]


class _Unpriced(SingleGpuBackend):
    def model_latency_s(self, *args, **kwargs):
        return None


class _Rejecting(SingleGpuBackend):
    def model_latency_s(self, *args, **kwargs):
        raise ValueError("no feasible plan")


class TestSelectBackend:
    def test_picks_the_cheapest_candidate(self):
        keys = _keys(1, 1 << 10)
        cpu, gpu = CpuBackend(), SingleGpuBackend(V100)
        choice = select_backend(EvalRequest(keys=keys, prf_name="aes128"), [gpu, cpu])
        # Single-query batch at a small table: the CPU side must win.
        assert choice.backend is cpu
        assert CPU_BASELINE.name in choice.label
        assert choice.latency_s == cpu.model_latency_s(1, 1 << 10, "aes128")
        assert len(choice.priced) == 2

    def test_large_batch_flips_to_the_gpu(self):
        keys = _keys(256, 1 << 10)
        cpu, gpu = CpuBackend(), SingleGpuBackend(V100)
        choice = select_backend(EvalRequest(keys=keys, prf_name="aes128"), [cpu, gpu])
        assert choice.backend is gpu

    def test_unpriceable_candidates_are_skipped(self):
        keys = _keys(2, 64)
        cpu = CpuBackend()
        choice = select_backend(
            EvalRequest(keys=keys, prf_name="aes128"),
            [_Unpriced(), _Rejecting(), cpu],
        )
        assert choice.backend is cpu
        assert choice.priced[0][1] is None and choice.priced[1][1] is None

    def test_empty_and_unpriceable_pools_rejected(self):
        request = EvalRequest(keys=_keys(2, 64), prf_name="aes128")
        with pytest.raises(ValueError, match="at least one"):
            select_backend(request, [])
        with pytest.raises(ValueError, match="no candidate"):
            select_backend(request, [_Unpriced(), _Rejecting()])


@pytest.mark.parametrize("candidates", sorted(CANDIDATE_SETS))
class TestHybridBitIdentity:
    """The satellite property: hybrid == reference oracle everywhere."""

    @given(case=dpf_cases(max_domain=128), data=st.data())
    @STANDARD_SETTINGS
    def test_matches_the_oracle(self, candidates, case, data):
        (k0, k1), prf = case.keys()
        keys = [k0, k1]
        source_form = data.draw(
            st.sampled_from(["objects", "arena", "wire"]), label="source_form"
        )
        resident = data.draw(st.booleans(), label="resident")
        if source_form == "objects":
            source = keys
        elif source_form == "arena":
            source = KeyArena.from_keys(keys)
        else:
            source = pack_keys(keys)
        request = EvalRequest(
            keys=source, prf_name=case.prf_name, resident=resident
        )
        hybrid = HybridBackend(CANDIDATE_SETS[candidates]())
        result = hybrid.run(request)
        oracle = SimulatedBackend().run(
            EvalRequest(keys=keys, prf_name=case.prf_name, resident=resident)
        )
        assert np.array_equal(result.answers, oracle.answers)
        assert result.plan.backend == "hybrid"
        assert result.plan.resident is resident


class TestCrossoverMonotonicity:
    @pytest.mark.parametrize("prf_name", ["aes128", "sha256"])
    @pytest.mark.parametrize("log_domain", [8, 10, 14])
    def test_once_gpu_always_gpu(self, prf_name, log_domain):
        """Scanning pow2 buckets of one shape, the routed side is a
        step function: CPU below the crossover, GPU at and above it."""
        cpu, gpu = CpuBackend(), SingleGpuBackend(V100)
        hybrid = HybridBackend([cpu, gpu])
        table = 1 << log_domain
        flipped = False
        for bucket in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024):
            # Classify the routed side behaviorally: the hybrid's price
            # is exactly one candidate's price for the same shape.
            latency = hybrid.model_latency_s(bucket, table, prf_name)
            assert latency is not None and latency > 0
            routed_gpu = latency == gpu.model_latency_s(bucket, table, prf_name)
            if flipped:
                assert routed_gpu, (
                    f"routing flipped back to CPU at bucket {bucket} "
                    f"for {prf_name} @ 2^{log_domain}"
                )
            flipped = flipped or routed_gpu

    def test_routing_follows_the_crossover_on_real_batches(self):
        """plan() on concrete key batches lands on the side the
        memoized crossover dictates."""
        hybrid = HybridBackend([CpuBackend(), SingleGpuBackend(V100)])
        table = 1 << 10
        crossover = hybrid.crossover_bucket(table, "aes128")
        assert crossover is not None and 1 < crossover <= 256
        below = hybrid.plan(
            EvalRequest(keys=_keys(crossover // 2, table), prf_name="aes128")
        )
        at = hybrid.plan(
            EvalRequest(keys=_keys(crossover, table), prf_name="aes128")
        )
        assert below.stats.shards[0].device_name == CPU_BASELINE.name
        assert at.stats.shards[0].device_name == V100.name


class TestHybridContract:
    def test_routing_counters_count_dispatches_not_plans(self):
        hybrid = HybridBackend([CpuBackend(), SingleGpuBackend(V100)])
        table = 1 << 10
        hybrid.plan(EvalRequest(keys=_keys(1, table), prf_name="aes128"))
        assert sum(hybrid.route_counts) == 0
        hybrid.run(EvalRequest(keys=_keys(1, table), prf_name="aes128"))
        hybrid.run(EvalRequest(keys=_keys(64, table), prf_name="aes128"))
        counts = hybrid.class_counts()
        assert counts.get("cpu") == 1 and counts.get("gpu") == 1
        assert sum(hybrid.routing_counts().values()) == 2

    def test_model_latency_is_the_routed_candidates(self):
        cpu, gpu = CpuBackend(), SingleGpuBackend(V100)
        hybrid = HybridBackend([cpu, gpu])
        table = 1 << 10
        assert hybrid.model_latency_s(1, table, "aes128") == cpu.model_latency_s(
            1, table, "aes128"
        )
        assert hybrid.model_latency_s(256, table, "aes128") == gpu.model_latency_s(
            256, table, "aes128"
        )

    def test_serves_through_a_plan_cache(self):
        """The bucketed decision matches the cache's bucketing, so a
        cached hybrid plan replays on the candidate that produced it."""
        hybrid = HybridBackend([CpuBackend(), SingleGpuBackend(V100)])
        cache = PlanCache()
        keys = _keys(5, 200)
        expected = np.stack(
            [eval_full(k, get_prf("aes128")) for k in keys]
        )
        for _ in range(2):
            result = cache.run(hybrid, EvalRequest(keys=keys, prf_name="aes128"))
            assert np.array_equal(result.answers, expected)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert sum(hybrid.route_counts) == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HybridBackend([])

    def test_plan_key_spans_the_candidates(self):
        cpu, gpu = CpuBackend(), SingleGpuBackend(V100)
        key = HybridBackend([cpu, gpu]).plan_key
        assert key[0] == "hybrid"
        assert cpu.plan_key in key and gpu.plan_key in key
