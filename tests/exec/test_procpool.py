"""The multi-process worker-pool backend.

Claims: ``MultiProcessBackend.run`` is bit-identical to
``SingleGpuBackend`` for every ingest form, residency mode, and eval
range — row-splitting over workers never changes an answer;
``run_combined`` against installed table slices is bit-identical to
``answers @ slice`` in one process, across partial installs and epoch
flips; worker crashes and worker exceptions surface as the typed
:class:`WorkerFailure` without poisoning later dispatches; and the
pool fronts a sharded, replicated, chaos-injected server with zero
wrong answers.
"""

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import eval_full, gen, pack_keys
from repro.exec import (
    EvalRequest,
    MultiProcessBackend,
    SingleGpuBackend,
    WorkerFailure,
)
from repro.gpu import KeyArena
from repro.pir.server import PirServer
from repro.pir.wire import PirQuery, PirReply
from repro.serve.chaos import FaultPlan, FlakyBackend
from repro.serve.shard import ShardedPirServer

PRF_NAME = "chacha20"
DOMAIN = 200


def _make_keys(batch, domain=DOMAIN, seed=11):
    prf = get_prf(PRF_NAME)
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(batch):
        k0, k1 = gen(int(rng.integers(0, domain)), domain, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    return keys, prf


def _request(keys, resident=False, eval_range=None):
    return EvalRequest(
        keys=keys,
        prf_name=PRF_NAME,
        entry_bytes=8,
        resident=resident,
        eval_range=eval_range,
    )


@pytest.fixture(scope="module")
def pool():
    with MultiProcessBackend(workers=3) as backend:
        yield backend


@pytest.fixture(scope="module")
def reference():
    keys, prf = _make_keys(5)
    return keys, np.stack([eval_full(k, prf) for k in keys])


class TestRunBitIdentity:
    @pytest.mark.parametrize("source_form", ["objects", "arena", "wire"])
    def test_matches_single_process(self, pool, reference, source_form):
        keys, expected = reference
        if source_form == "objects":
            source = keys
        elif source_form == "arena":
            source = KeyArena.from_keys(keys)
        else:
            source = pack_keys(keys)
        result = pool.run(_request(source))
        np.testing.assert_array_equal(result.answers, expected)
        np.testing.assert_array_equal(
            result.answers, SingleGpuBackend().run(_request(keys)).answers
        )

    @pytest.mark.parametrize("batch", [1, 2, 3, 7])
    def test_any_batch_to_worker_ratio(self, pool, batch):
        # Fewer keys than workers, equal, and more: the row split must
        # stay exact in every shape.
        keys, prf = _make_keys(batch, seed=batch)
        expected = np.stack([eval_full(k, prf) for k in keys])
        np.testing.assert_array_equal(pool.run(_request(keys)).answers, expected)

    def test_resident_mode_matches(self, pool, reference):
        keys, expected = reference
        result = pool.run(_request(keys, resident=True))
        np.testing.assert_array_equal(result.answers, expected)

    def test_eval_range_matches_reference_columns(self, pool, reference):
        keys, expected = reference
        result = pool.run(_request(keys).restrict(50, 150))
        assert result.answers.shape == (5, 100)
        np.testing.assert_array_equal(result.answers, expected[:, 50:150])

    def test_workers_accumulate_cache_hits(self, pool, reference):
        keys, _ = reference
        before = pool.worker_cache_stats()
        pool.run(_request(keys))
        pool.run(_request(keys))
        after = pool.worker_cache_stats()
        assert all(b[0] >= a[0] for a, b in zip(before, after))
        assert sum(b[0] for b in after) > sum(a[0] for a in before)

    def test_plan_prices_the_pool_as_a_fleet(self, pool, reference):
        keys, _ = reference
        plan = pool.plan(_request(keys))
        assert plan.backend == "multi_process"
        assert pool.model_latency_s(5, DOMAIN, prf_name=PRF_NAME) > 0.0


class TestCombinedFastPath:
    def test_full_table_partial_equals_dot(self, reference):
        keys, expected = reference
        rng = np.random.default_rng(3)
        table = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        with MultiProcessBackend(workers=3) as pool:
            pool.install_table(0, 0, table)
            partial = pool.run_combined(_request(keys), 0)
            np.testing.assert_array_equal(partial, expected @ table)

    def test_range_install_partial_equals_slice_dot(self, reference):
        keys, expected = reference
        rng = np.random.default_rng(4)
        table = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        with MultiProcessBackend(workers=2) as pool:
            pool.install_table(1, 50, table[50:150])
            restricted = _request(keys).restrict(50, 150)
            partial = pool.run_combined(restricted, 1)
            np.testing.assert_array_equal(partial, expected[:, 50:150] @ table[50:150])

    def test_epoch_flip_answers_each_version(self, reference):
        keys, expected = reference
        rng = np.random.default_rng(5)
        old = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        new = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        with MultiProcessBackend(workers=2) as pool:
            pool.install_table(0, 0, old)
            pool.install_table(1, 0, new)
            request = _request(keys)
            np.testing.assert_array_equal(pool.run_combined(request, 0), expected @ old)
            np.testing.assert_array_equal(pool.run_combined(request, 1), expected @ new)
            pool.drop_table(0)
            with pytest.raises(KeyError):
                pool.run_combined(request, 0)
            np.testing.assert_array_equal(pool.run_combined(request, 1), expected @ new)

    def test_unknown_epoch_and_range_mismatch_fail_typed(self, reference):
        keys, _ = reference
        rng = np.random.default_rng(6)
        table = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        with MultiProcessBackend(workers=2) as pool:
            with pytest.raises(KeyError):
                pool.run_combined(_request(keys), 7)
            pool.install_table(0, 50, table[50:150])
            with pytest.raises(ValueError):
                # Unrestricted request covers [0, DOMAIN), not [50, 150).
                pool.run_combined(_request(keys), 0)


class TestLifecycle:
    def test_lazy_start_and_close(self, reference):
        keys, expected = reference
        pool = MultiProcessBackend(workers=2)
        assert not pool.started
        np.testing.assert_array_equal(pool.run(_request(keys)).answers, expected)
        assert pool.started
        pool.close()
        pool.close()  # idempotent
        assert not pool.started
        with pytest.raises(RuntimeError):
            pool.run(_request(keys))

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            MultiProcessBackend(workers=0)

    def test_crashed_worker_raises_typed_and_spares_siblings(self, reference):
        keys, expected = reference
        pool = MultiProcessBackend(workers=3)
        try:
            pool.start()
            pool._procs[1].terminate()
            pool._procs[1].join(timeout=5.0)
            with pytest.raises(WorkerFailure):
                pool.run(_request(keys))
            # The surviving workers' pipes stayed aligned: a dispatch
            # that avoids the dead worker (batch of 1 rows onto worker
            # 0) still answers bit-exactly.
            np.testing.assert_array_equal(
                pool.run(_request(keys[:1])).answers, expected[:1]
            )
        finally:
            pool.close()

    def test_worker_exception_serializes_not_kills(self, reference):
        keys, expected = reference
        with MultiProcessBackend(workers=1) as pool:
            pool.start()
            # Drive a worker-side failure through the op protocol: an
            # unknown op serializes back as an error reply.
            with pytest.raises(WorkerFailure):
                pool._dispatch([(0, ("bogus",))])
            # The worker survived and still answers correctly.
            np.testing.assert_array_equal(pool.run(_request(keys)).answers, expected)


class TestShardedServing:
    """The pool fronted unchanged by ReplicaSet / ShardedPirServer."""

    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(8)
        return rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)

    def _oracle(self, table, request_bytes):
        return PirServer(table, prf_name=PRF_NAME).handle(request_bytes)

    def _query(self, keys, request_id=1, epoch=0):
        return PirQuery(
            request_id=request_id,
            count=len(keys),
            key_bytes=pack_keys(keys),
            epoch=epoch,
        ).to_bytes()

    def test_bit_identical_to_unsharded(self, table):
        keys, _ = _make_keys(5, seed=21)
        pools = []

        def factory(shard, replica):
            pool = MultiProcessBackend(workers=2)
            pools.append(pool)
            return pool

        try:
            server = ShardedPirServer(
                table, shards=2, replicas=1, backend_factory=factory,
                prf_name=PRF_NAME,
            )
            request_bytes = self._query(keys)
            assert server.handle(request_bytes) == self._oracle(table, request_bytes)
        finally:
            for pool in pools:
                pool.close()

    def test_epoch_flip_serves_both_pinned_versions(self, table):
        keys, _ = _make_keys(4, seed=22)
        rng = np.random.default_rng(9)
        new_table = rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)
        pools = []

        def factory(shard, replica):
            pool = MultiProcessBackend(workers=2)
            pools.append(pool)
            return pool

        try:
            server = ShardedPirServer(
                table, shards=2, replicas=1, backend_factory=factory,
                prf_name=PRF_NAME,
            )
            old_query = self._query(keys, request_id=1, epoch=0)
            server.publish(new_table)
            new_query = self._query(keys, request_id=2, epoch=1)
            # A query pinned pre-flip answers from the old table even
            # after the flip; a post-flip query answers from the new.
            assert server.handle(old_query) == self._oracle(table, old_query)
            old_answers = PirReply.from_bytes(server.handle(old_query)).answers
            new_answers = PirReply.from_bytes(server.handle(new_query)).answers
            prf = get_prf(PRF_NAME)
            shares = np.stack([eval_full(k, prf) for k in keys])
            np.testing.assert_array_equal(old_answers, shares @ table)
            np.testing.assert_array_equal(new_answers, shares @ new_table)
        finally:
            for pool in pools:
                pool.close()

    def test_replica_kill_fails_over_with_zero_wrong_answers(self, table):
        keys, _ = _make_keys(6, seed=23)
        pools = []

        def factory(shard, replica):
            pool = MultiProcessBackend(workers=2)
            pools.append(pool)
            if shard == 0 and replica == 0:
                # This replica dies permanently from its 2nd dispatch.
                return FlakyBackend(pool, FaultPlan.after(2))
            return pool

        try:
            server = ShardedPirServer(
                table, shards=2, replicas=2, backend_factory=factory,
                prf_name=PRF_NAME, rejoin_after=None,
            )
            for request_id in range(1, 7):
                request_bytes = self._query(keys, request_id=request_id)
                got = PirReply.from_bytes(server.handle(request_bytes)).answers
                expected = PirReply.from_bytes(
                    self._oracle(table, request_bytes)
                ).answers
                np.testing.assert_array_equal(got, expected)
            assert server.stats_totals().ejections >= 1
            assert server.stats_totals().failovers >= 1
        finally:
            for pool in pools:
                pool.close()
