"""Batch merge and per-request demux on the execution layer.

`EvalRequest.merge` fuses many requests into one kernel-sized batch and
`EvalResult.split` slices the answers back; together they must be a
lossless round trip — running the merged request yields exactly the
per-request answer rows, bit for bit, on every backend.  `KeyArena
.concat` underneath must agree with stacking the combined key list
directly.
"""

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import gen
from repro.exec import EvalRequest, SingleGpuBackend
from repro.gpu import KeyArena

from tests.strategies import BACKEND_FACTORIES


def _keys(batch, domain=32, prf="siphash", seed=0, party=0):
    prf_obj = get_prf(prf)
    rng = np.random.default_rng(seed)
    return [
        gen(int(rng.integers(0, domain)), domain, prf_obj, rng, beta=i + 1)[party]
        for i in range(batch)
    ]


class TestMergeRun:
    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
    def test_merged_run_equals_individual_runs(self, backend_name):
        backend = BACKEND_FACTORIES[backend_name]()
        requests = [
            EvalRequest(keys=_keys(batch, seed=batch), prf_name="siphash")
            for batch in (1, 3, 2)
        ]
        individual = [backend.run(r).answers for r in requests]
        merged, sizes = EvalRequest.merge(requests)
        assert sizes == (1, 3, 2)
        result = backend.run(merged)
        assert result.batch_size == 6
        for got, want in zip(result.split(sizes), individual):
            assert np.array_equal(got, want)

    def test_merge_takes_the_tightest_slo(self):
        requests = [
            EvalRequest(keys=_keys(1, seed=s), prf_name="siphash", slo_latency_s=slo)
            for s, slo in ((0, 0.5), (1, None), (2, 0.125))
        ]
        merged, _ = EvalRequest.merge(requests)
        assert merged.slo_latency_s == 0.125
        no_slo, _ = EvalRequest.merge(
            [EvalRequest(keys=_keys(1), prf_name="siphash")]
        )
        assert no_slo.slo_latency_s is None

    def test_merge_preserves_residency_and_entry_bytes(self):
        requests = [
            EvalRequest(keys=_keys(2, seed=s), resident=True, entry_bytes=16)
            for s in (0, 1)
        ]
        merged, sizes = EvalRequest.merge(requests)
        assert merged.resident and merged.entry_bytes == 16
        assert sizes == (2, 2)

    def test_merge_rejects_mismatched_settings(self):
        base = EvalRequest(keys=_keys(1, seed=0))
        with pytest.raises(ValueError, match="entry_bytes"):
            EvalRequest.merge([base, EvalRequest(keys=_keys(1, seed=1), entry_bytes=4)])
        with pytest.raises(ValueError, match="resident"):
            EvalRequest.merge([base, EvalRequest(keys=_keys(1, seed=1), resident=True)])
        with pytest.raises(ValueError, match="PRF"):
            EvalRequest.merge(
                [base, EvalRequest(keys=_keys(1, seed=1, prf="chacha20"))]
            )
        with pytest.raises(ValueError, match="at least one"):
            EvalRequest.merge([])

    def test_merge_rejects_mixed_domains(self):
        with pytest.raises(ValueError, match="domain"):
            EvalRequest.merge(
                [
                    EvalRequest(keys=_keys(1, domain=32)),
                    EvalRequest(keys=_keys(1, domain=64)),
                ]
            )


class TestSplit:
    def test_split_is_zero_copy_and_ordered(self):
        backend = SingleGpuBackend()
        merged, sizes = EvalRequest.merge(
            [EvalRequest(keys=_keys(b, seed=b), prf_name="siphash") for b in (2, 3)]
        )
        result = backend.run(merged)
        views = result.split(sizes)
        assert [v.shape[0] for v in views] == [2, 3]
        for view in views:
            assert view.base is not None  # views, not copies

    def test_split_validates_sizes(self):
        result = SingleGpuBackend().run(EvalRequest(keys=_keys(4)))
        with pytest.raises(ValueError, match="sum to 3"):
            result.split((1, 2))
        with pytest.raises(ValueError, match="positive"):
            result.split((4, 0))
        with pytest.raises(ValueError, match="at least one"):
            result.split(())


class TestArenaConcat:
    def test_concat_equals_stacking_the_combined_list(self):
        keys_a, keys_b = _keys(3, seed=1), _keys(2, seed=2)
        merged = KeyArena.concat(
            [KeyArena.from_keys(keys_a), KeyArena.from_keys(keys_b)]
        )
        assert merged == KeyArena.from_keys(keys_a + keys_b)

    def test_concat_single_arena_is_identity(self):
        arena = KeyArena.from_keys(_keys(2))
        assert KeyArena.concat([arena]) is arena

    def test_concat_rejects_heterogeneous_batches(self):
        with pytest.raises(ValueError, match="domain"):
            KeyArena.concat(
                [
                    KeyArena.from_keys(_keys(1, domain=32)),
                    KeyArena.from_keys(_keys(1, domain=64)),
                ]
            )
        with pytest.raises(ValueError, match="PRF"):
            KeyArena.concat(
                [
                    KeyArena.from_keys(_keys(1)),
                    KeyArena.from_keys(_keys(1, prf="chacha20")),
                ]
            )
        with pytest.raises(ValueError, match="at least one"):
            KeyArena.concat([])


class TestMergeEvalRange:
    """Range restrictions through the merge/unmerge round trip — what
    lets a sharded server un-merge a fused batch for failover without
    losing the shard's sub-range."""

    def test_mismatched_eval_range_rejected(self):
        restricted = EvalRequest(keys=_keys(1, seed=0), prf_name="siphash").restrict(
            0, 16
        )
        plain = EvalRequest(keys=_keys(1, seed=1), prf_name="siphash")
        with pytest.raises(ValueError, match="eval_range"):
            EvalRequest.merge([restricted, plain])

    def test_range_propagates_through_merge_and_unmerge(self):
        requests = [
            EvalRequest(keys=_keys(b, seed=b), prf_name="siphash").restrict(4, 20)
            for b in (2, 3)
        ]
        merged, sizes = EvalRequest.merge(requests)
        assert merged.eval_range == (4, 20)
        for piece in EvalRequest.unmerge(merged, sizes):
            assert piece.eval_range == (4, 20)

    def test_restricting_a_merged_batch_slices_its_columns(self):
        backend = SingleGpuBackend()
        merged, _ = EvalRequest.merge(
            [EvalRequest(keys=_keys(b, seed=b), prf_name="siphash") for b in (2, 3)]
        )
        full = backend.run(merged).answers
        restricted = backend.run(merged.restrict(7, 25)).answers
        assert np.array_equal(restricted, full[:, 7:25])


class TestUnmerge:
    """`unmerge` is the retry path's inverse of `merge`: each returned
    request must carry exactly its constituent's keys, as a zero-copy
    slice of the merged arena."""

    def _merged(self, sizes=(1, 3, 2), **kwargs):
        requests = [
            EvalRequest(keys=_keys(b, seed=b), prf_name="siphash", **kwargs)
            for b in sizes
        ]
        merged, got_sizes = EvalRequest.merge(requests)
        assert got_sizes == sizes
        return requests, merged, got_sizes

    def test_round_trips_the_merge(self):
        requests, merged, sizes = self._merged()
        pieces = EvalRequest.unmerge(merged, sizes)
        assert len(pieces) == len(requests)
        for piece, original in zip(pieces, requests):
            assert piece.arena() == original.arena()
        # Re-merging the pieces reproduces the fused batch bit for bit.
        remerged, resizes = EvalRequest.merge(pieces)
        assert resizes == sizes
        assert remerged.arena() == merged.arena()

    def test_slices_are_zero_copy_views(self):
        _, merged, sizes = self._merged()
        for piece in EvalRequest.unmerge(merged, sizes):
            arena = piece.arena()
            assert arena.cw_seeds.base is not None  # a view of merged
            assert arena.roots.base is not None

    def test_pieces_run_identically_to_the_originals(self):
        """Unmerged slices evaluate to exactly the rows the merged
        batch produced — what bit-exact retry rests on."""
        backend = SingleGpuBackend()
        _, merged, sizes = self._merged()
        merged_rows = backend.run(merged).split(sizes)
        for piece, rows in zip(EvalRequest.unmerge(merged, sizes), merged_rows):
            assert np.array_equal(backend.run(piece).answers, rows)

    def test_inherits_merged_settings(self):
        _, merged, sizes = self._merged(
            resident=True, entry_bytes=16, slo_latency_s=0.25
        )
        for piece in EvalRequest.unmerge(merged, sizes):
            assert piece.resident and piece.entry_bytes == 16
            assert piece.slo_latency_s == 0.25
            assert piece.prf_name == "siphash"

    def test_validates_sizes(self):
        _, merged, _ = self._merged()
        with pytest.raises(ValueError, match="sum to 4"):
            EvalRequest.unmerge(merged, (1, 3))
        with pytest.raises(ValueError, match="positive"):
            EvalRequest.unmerge(merged, (6, 0))
        with pytest.raises(ValueError, match="at least one"):
            EvalRequest.unmerge(merged, ())


class TestBucketedPadding:
    """Merge/unmerge composed with the plan cache's bucketing: every
    demuxed answer must align exactly with its constituent request even
    though the cache prices plans at the bucket size — through the
    straight cached path, and through mid-batch replica failover (where
    constituents re-run *individually*, each keyed to its own
    bucket)."""

    DOMAIN = 64

    def _requests(self, sizes=(3, 2), prf="siphash"):
        return [
            EvalRequest(
                keys=_keys(b, domain=self.DOMAIN, seed=b, prf=prf), prf_name=prf
            )
            for b in sizes
        ]

    def test_cached_merged_demux_matches_per_request_answers(self):
        from repro.exec import PlanCache

        backend = SingleGpuBackend()
        requests = self._requests(sizes=(3, 2))
        individual = [backend.run(r).answers for r in requests]
        merged, sizes = EvalRequest.merge(requests)
        # Merged batch 5 is keyed at bucket 8 inside the cache: the
        # slices handed back per constituent must align exactly.
        cache = PlanCache()
        result = cache.run(backend, merged)
        assert result.answers.shape[0] == 5
        assert cache.stats.misses == 1
        for got, want in zip(result.split(sizes), individual):
            assert np.array_equal(got, want)

    def test_unmerged_pieces_key_to_their_own_buckets(self):
        from repro.exec import PlanCache, batch_bucket

        backend = SingleGpuBackend()
        requests = self._requests(sizes=(3, 2))
        merged, sizes = EvalRequest.merge(requests)
        cache = PlanCache()
        for piece, original in zip(EvalRequest.unmerge(merged, sizes), requests):
            got = cache.run(backend, piece).answers
            assert got.shape[0] == piece.arena().batch
            assert np.array_equal(got, backend.run(original).answers)
        # Two distinct buckets (3 -> 4, 2 -> 2) were populated.
        assert {batch_bucket(s) for s in sizes} == {4, 2}
        assert cache.stats.misses == 2

    def test_failover_mid_batch_keeps_demux_aligned(self):
        """A fused, bucket-keyed batch served by a sharded server with
        a replica that dies mid-batch: failover un-merges each
        constituent into its own bucket entry, and every demuxed answer
        still matches the healthy oracle bit for bit."""
        from repro.crypto import get_prf as _get_prf
        from repro.dpf import eval_full
        from repro.exec import PlanCache
        from repro.serve.chaos import FaultPlan, FlakyBackend
        from repro.serve.shard import ShardedPirServer

        rng = np.random.default_rng(17)
        table = rng.integers(0, 2**63, size=self.DOMAIN, dtype=np.uint64)
        prf = "chacha20"

        def factory(shard, replica):
            if shard == 0 and replica == 0:
                return FlakyBackend(SingleGpuBackend(), FaultPlan.always())
            return SingleGpuBackend()

        server = ShardedPirServer(
            table,
            shards=2,
            replicas=2,
            backend_factory=factory,
            prf_name=prf,
            rejoin_after=None,
            plan_cache=PlanCache(),
        )
        requests = self._requests(sizes=(3, 2), prf=prf)
        merged, sizes = EvalRequest.merge(requests)
        answers = server.answer_request(merged, epoch=0, sizes=sizes)
        assert answers.shape == (5,)
        assert server.stats_totals().failovers >= 1
        prf_obj = _get_prf(prf)
        offset = 0
        for request in requests:
            shares = np.stack(
                [eval_full(k, prf_obj) for k in request.arena().to_keys()]
            )
            expected = shares @ table
            got = answers[offset : offset + request.arena().batch]
            assert np.array_equal(got, expected)
            offset += request.arena().batch
