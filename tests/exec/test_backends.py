"""The unified execution layer: one request API, three backends.

Claims: every backend's ``run`` is bit-identical to the reference
evaluator for every accepted key-source form (objects, arena, wire
bytes) in both streaming and resident modes; ``plan`` exposes the
scheduler's decision in one per-shard shape regardless of backend; and
the request normalizes/ingests key material exactly once.
"""

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import eval_full, gen, pack_keys
from repro.exec import (
    EvalRequest,
    ExecutionBackend,
    MultiGpuBackend,
    SimulatedBackend,
    SingleGpuBackend,
    merged_cost,
)
from repro.gpu import KeyArena, V100, get_strategy

from tests.strategies import BACKEND_FACTORIES

PRF_NAME = "chacha20"
DOMAIN = 200
BATCH = 5


def _make_keys(batch=BATCH, domain=DOMAIN, seed=5):
    prf = get_prf(PRF_NAME)
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(batch):
        k0, k1 = gen(int(rng.integers(0, domain)), domain, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    return keys, prf


@pytest.fixture(scope="module")
def reference():
    keys, prf = _make_keys()
    return keys, prf, np.stack([eval_full(k, prf) for k in keys])


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
class TestRunBitIdentity:
    @pytest.mark.parametrize("source_form", ["objects", "arena", "wire"])
    @pytest.mark.parametrize("resident", [False, True])
    def test_run_matches_reference(self, backend_name, source_form, resident, reference):
        keys, prf, expected = reference
        if source_form == "objects":
            source = keys
        elif source_form == "arena":
            source = KeyArena.from_keys(keys)
        else:
            source = pack_keys(keys)
        backend = BACKEND_FACTORIES[backend_name]()
        result = backend.run(
            EvalRequest(keys=source, prf_name=prf.name, resident=resident)
        )
        assert np.array_equal(result.answers, expected)
        assert result.batch_size == BATCH
        assert result.plan.backend == backend_name
        assert result.plan.resident is resident

    def test_repeated_runs_reuse_backend_state(self, backend_name, reference):
        """A serving loop over one backend stays bit-identical (the
        persistent workspace/scheduler caches must not leak state)."""
        keys, prf, expected = reference
        backend = BACKEND_FACTORIES[backend_name]()
        for _ in range(3):
            result = backend.run(EvalRequest(keys=keys, prf_name=prf.name))
            assert np.array_equal(result.answers, expected)


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
class TestPlan:
    def test_plan_shape_is_uniform_across_backends(self, backend_name, reference):
        keys, prf, _ = reference
        plan = BACKEND_FACTORIES[backend_name]().plan(
            EvalRequest(keys=keys, prf_name=prf.name)
        )
        assert plan.backend == backend_name
        assert plan.batch_size == BATCH
        assert plan.table_entries == DOMAIN
        assert plan.latency_s > 0
        assert plan.throughput_qps > 0
        assert plan.feasible
        assert len(plan.strategies) == len(plan.stats.shards) >= 1
        assert sum(s.batch_size for s in plan.stats.shards) == BATCH

    def test_resident_plans_amortize_the_key_upload(self, backend_name, reference):
        keys, prf, _ = reference
        backend = BACKEND_FACTORIES[backend_name]()
        resident = backend.plan(
            EvalRequest(keys=keys, prf_name=prf.name, resident=True)
        )
        assert all(
            s.selection.plan.host_bytes_in == 0 for s in resident.stats.shards
        )
        assert all(
            s.selection.plan.resident_bytes > 0 for s in resident.stats.shards
        )
        streaming = backend.plan(EvalRequest(keys=keys, prf_name=prf.name))
        assert resident.throughput_qps > streaming.throughput_qps

    def test_meets_slo(self, backend_name, reference):
        keys, prf, _ = reference
        plan = BACKEND_FACTORIES[backend_name]().plan(
            EvalRequest(keys=keys, prf_name=prf.name)
        )
        assert plan.meets_slo(None)
        assert plan.meets_slo(plan.latency_s * 2)
        assert not plan.meets_slo(plan.latency_s / 2)


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
class TestRangeRestriction:
    """`eval_range` through the request layer: a restricted run returns
    exactly the reference's column slice — the shard evaluation path."""

    @pytest.mark.parametrize("lo,hi", [(0, 67), (37, 151), (199, 200)])
    def test_restricted_run_matches_reference_columns(
        self, backend_name, lo, hi, reference
    ):
        keys, prf, expected = reference
        request = EvalRequest(keys=keys, prf_name=prf.name).restrict(lo, hi)
        result = BACKEND_FACTORIES[backend_name]().run(request)
        assert result.answers.shape == (BATCH, hi - lo)
        assert np.array_equal(result.answers, expected[:, lo:hi])

    def test_full_range_restriction_is_identity(self, backend_name, reference):
        keys, prf, expected = reference
        request = EvalRequest(keys=keys, prf_name=prf.name).restrict(0, DOMAIN)
        result = BACKEND_FACTORIES[backend_name]().run(request)
        assert np.array_equal(result.answers, expected)

    def test_restrict_shares_the_ingested_arena(self, backend_name, reference):
        keys, prf, _ = reference
        request = EvalRequest(keys=keys, prf_name=prf.name)
        restricted = request.restrict(10, 20)
        assert restricted.arena() is request.arena()
        assert restricted.resolved_range() == (10, 20)
        assert request.resolved_range() == (0, DOMAIN)

    def test_invalid_ranges_rejected(self, backend_name, reference):
        keys, prf, _ = reference
        request = EvalRequest(keys=keys, prf_name=prf.name)
        for lo, hi in ((5, 5), (-1, 3), (0, DOMAIN + 1), (DOMAIN, DOMAIN)):
            with pytest.raises(ValueError, match="sub-range"):
                request.restrict(lo, hi)


class TestMergedCost:
    def test_merged_cost_sums_over_shards(self, reference):
        keys, prf, _ = reference
        plan = MultiGpuBackend([V100, V100]).plan(
            EvalRequest(keys=keys, prf_name=prf.name)
        )
        cost = merged_cost(plan.stats)
        shard_costs = [
            get_strategy(s.selection.strategy).cost(s.batch_size, DOMAIN)
            for s in plan.stats.shards
        ]
        assert cost.prf_blocks == sum(c.prf_blocks for c in shard_costs) > 0
        assert cost.peak_mem_bytes == sum(c.peak_mem_bytes for c in shard_costs)
        assert cost.parallel_width == sum(c.parallel_width for c in shard_costs)
        assert cost.batch_size == BATCH
        assert cost.domain_size == DOMAIN

    def test_uniform_shards_keep_the_strategy_name(self, reference):
        keys, prf, _ = reference
        result = SingleGpuBackend().run(EvalRequest(keys=keys, prf_name=prf.name))
        assert result.cost.strategy == result.plan.strategies[0]


class TestEvalRequest:
    def test_arena_is_ingested_once(self):
        keys, prf = _make_keys()
        request = EvalRequest(keys=pack_keys(keys), prf_name=prf.name)
        assert request.arena() is request.arena()

    def test_prf_mismatch_rejected_at_ingestion(self):
        keys, _ = _make_keys()
        request = EvalRequest(keys=keys, prf_name="aes128")
        with pytest.raises(ValueError, match="would not reconstruct"):
            SingleGpuBackend().run(request)

    def test_prf_defaults_to_the_keys_prf(self):
        keys, prf = _make_keys(batch=2, domain=32)
        request = EvalRequest(keys=keys)
        assert request.resolved_prf_name == prf.name
        expected = np.stack([eval_full(k, prf) for k in keys])
        assert np.array_equal(SingleGpuBackend().run(request).answers, expected)

    def test_empty_sources_rejected(self):
        for source in ([], b"", KeyArena.from_keys(_make_keys(batch=1)[0])[0:0]):
            with pytest.raises(ValueError):
                EvalRequest(keys=source).arena()

    def test_unsupported_source_type_rejected(self):
        with pytest.raises(TypeError, match="cannot ingest"):
            EvalRequest(keys=42).arena()
        # str is a Sequence, but never key material — it must hit the
        # same TypeError, not an AttributeError deep inside from_keys.
        with pytest.raises(TypeError, match="cannot ingest"):
            EvalRequest(keys="not-wire-bytes").arena()


class TestCustomStrategyPool:
    """A backend built with a tuned pool must *execute and cost* the
    pool's instances, not re-instantiate registry defaults by name."""

    def test_run_and_cost_use_the_pool_instance(self, reference):
        from repro.gpu import MemoryBoundedTree

        keys, prf, expected = reference
        tuned = MemoryBoundedTree(log_subtrees=1)
        backend = SingleGpuBackend(strategies=[tuned])
        result = backend.run(EvalRequest(keys=keys, prf_name=prf.name))
        assert np.array_equal(result.answers, expected)
        assert result.plan.strategies == ("memory_bounded",)
        assert result.cost == tuned.cost(BATCH, DOMAIN)
        # The default-parameter instance costs differently at this
        # shape, so a silent fallback to the registry would show here.
        assert result.cost != get_strategy("memory_bounded").cost(BATCH, DOMAIN)

    def test_simulated_backend_costs_through_its_pool(self, reference):
        from repro.gpu import MemoryBoundedTree

        keys, prf, expected = reference
        tuned = MemoryBoundedTree(log_subtrees=1)
        backend = SimulatedBackend(strategies=[tuned])
        result = backend.run(EvalRequest(keys=keys, prf_name=prf.name))
        assert np.array_equal(result.answers, expected)
        assert result.cost == tuned.cost(BATCH, DOMAIN)


class TestProtocol:
    def test_backends_implement_the_abstract_protocol(self):
        for factory in BACKEND_FACTORIES.values():
            assert isinstance(factory(), ExecutionBackend)
        with pytest.raises(TypeError):
            ExecutionBackend()

    def test_multi_backend_accepts_a_bare_device(self, reference):
        keys, prf, expected = reference
        backend = MultiGpuBackend(V100)
        result = backend.run(EvalRequest(keys=keys, prf_name=prf.name))
        assert np.array_equal(result.answers, expected)
        assert len(result.plan.stats.shards) == 1

    def test_multi_backend_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one device"):
            MultiGpuBackend([])
