"""The plan/workspace cache: memoized steady-state dispatch.

Claims: cached-path answers are bit-identical to uncached
``backend.run`` for every batch size and eval range; plans are priced
once at the pow2 bucket while the kernel executes the exact batch (no
padding work on the execution path); the cache keys on everything that
changes the plan (backend, PRF, domain, residency, entry width, batch
bucket) and on nothing else; and LRU eviction is bounded by
``max_entries``.
"""

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import eval_full, gen
from repro.exec import (
    EvalRequest,
    PlanCache,
    SimulatedBackend,
    SingleGpuBackend,
    batch_bucket,
)
from repro.gpu import KeyArena

PRF_NAME = "chacha20"
DOMAIN = 200


def _make_request(batch, domain=DOMAIN, seed=7, resident=False, entry_bytes=8):
    prf = get_prf(PRF_NAME)
    rng = np.random.default_rng(seed)
    keys = []
    for i in range(batch):
        k0, k1 = gen(int(rng.integers(0, domain)), domain, prf, rng, beta=i + 1)
        keys.append(k0 if i % 2 else k1)
    request = EvalRequest(
        keys=keys,
        prf_name=PRF_NAME,
        entry_bytes=entry_bytes,
        resident=resident,
    )
    expected = np.stack([eval_full(k, prf) for k in keys])
    return request, expected


class TestBatchBucket:
    @pytest.mark.parametrize(
        "batch,bucket",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8), (9, 16), (1000, 1024)],
    )
    def test_rounds_up_to_pow2(self, batch, bucket):
        assert batch_bucket(batch) == bucket

    @pytest.mark.parametrize("batch", [0, -1])
    def test_rejects_nonpositive(self, batch):
        with pytest.raises(ValueError):
            batch_bucket(batch)


class TestBitExactness:
    @pytest.mark.parametrize("batch", [1, 2, 3, 5, 8, 13])
    def test_cached_run_matches_uncached(self, batch):
        request, expected = _make_request(batch)
        backend = SingleGpuBackend()
        cache = PlanCache()
        result = cache.run(backend, request)
        np.testing.assert_array_equal(result.answers, expected)
        np.testing.assert_array_equal(result.answers, backend.run(request).answers)

    def test_plan_priced_at_bucket_kernel_runs_exact(self):
        # Batch 5 is keyed (and priced) at bucket 8, but the kernel
        # must execute the exact 5-row request — padding is a pricing
        # artifact, never executed work.
        class Recording(SingleGpuBackend):
            def __init__(self):
                super().__init__()
                self.planned = []
                self.ran = []

            def plan(self, request):
                self.planned.append(request.arena().batch)
                return super().plan(request)

            def run_with_plan(self, request, plan, workspace=None):
                self.ran.append((request.arena().batch, plan.stats.batch_size))
                return super().run_with_plan(request, plan, workspace)

        backend = Recording()
        cache = PlanCache()
        request, expected = _make_request(5)
        result = cache.run(backend, request)
        assert backend.planned == [8]
        assert backend.ran == [(5, 8)]
        assert result.answers.shape[0] == 5
        assert result.plan.stats.batch_size == 8
        np.testing.assert_array_equal(result.answers, expected)
        # A second size in the same bucket reuses the plan unchanged
        # and still runs at its own exact batch.
        second, second_expected = _make_request(7, seed=9)
        got = cache.run(backend, second)
        assert backend.planned == [8]
        assert backend.ran == [(5, 8), (7, 8)]
        np.testing.assert_array_equal(got.answers, second_expected)

    def test_eval_range_restriction_survives_the_cache(self):
        request, expected = _make_request(6)
        restricted = request.restrict(50, 150)
        result = PlanCache().run(SingleGpuBackend(), restricted)
        assert result.answers.shape == (6, 100)
        np.testing.assert_array_equal(result.answers, expected[:, 50:150])

    def test_resident_mode_matches(self):
        request, expected = _make_request(5, resident=True)
        result = PlanCache().run(SingleGpuBackend(), request)
        np.testing.assert_array_equal(result.answers, expected)

    def test_repeated_hits_stay_bit_exact(self):
        cache = PlanCache()
        backend = SingleGpuBackend()
        for seed in (1, 2, 3):
            request, expected = _make_request(5, seed=seed)
            np.testing.assert_array_equal(cache.run(backend, request).answers, expected)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1


class TestCacheKey:
    def test_same_bucket_shares_an_entry(self):
        cache = PlanCache()
        backend = SingleGpuBackend()
        cache.run(backend, _make_request(5)[0])   # bucket 8 — miss
        cache.run(backend, _make_request(7, seed=9)[0])  # bucket 8 — hit
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_different_bucket_is_a_new_entry(self):
        cache = PlanCache()
        backend = SingleGpuBackend()
        cache.run(backend, _make_request(5)[0])  # bucket 8
        cache.run(backend, _make_request(9)[0])  # bucket 16
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_residency_splits_the_key(self):
        backend = SingleGpuBackend()
        request, _ = _make_request(5)
        resident, _ = _make_request(5, resident=True)
        cache = PlanCache()
        cache.run(backend, request)
        cache.run(backend, resident)
        assert cache.stats.misses == 2

    def test_entry_bytes_splits_the_key(self):
        backend = SingleGpuBackend()
        cache = PlanCache()
        cache.run(backend, _make_request(5, entry_bytes=8)[0])
        cache.run(backend, _make_request(5, entry_bytes=32)[0])
        assert cache.stats.misses == 2

    def test_distinct_backend_instances_never_share(self):
        # Two wrapped/unknown backends must not collide even if they
        # model the same device: the base plan_key is per-instance.
        request, _ = _make_request(5)
        cache = PlanCache()
        cache.run(SimulatedBackend(), request)
        cache.run(SimulatedBackend(), request)
        # SimulatedBackend keys on the modeled device, so these *do*
        # share; SingleGpuBackend with a private pool must not.
        assert cache.stats.hits == 1
        from repro.gpu import get_strategy

        a = SingleGpuBackend(strategies=[get_strategy("level_by_level")])
        b = SingleGpuBackend(strategies=[get_strategy("level_by_level")])
        cache2 = PlanCache()
        cache2.run(a, request)
        cache2.run(b, request)
        assert cache2.stats.misses == 2


class TestEviction:
    def test_lru_bounded_by_max_entries(self):
        cache = PlanCache(max_entries=2)
        backend = SingleGpuBackend()
        r4, _ = _make_request(4)
        r8, _ = _make_request(8)
        r16, _ = _make_request(16)
        cache.run(backend, r4)
        cache.run(backend, r8)
        cache.run(backend, r4)   # refresh bucket-4 entry
        cache.run(backend, r16)  # evicts bucket 8 (LRU)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.run(backend, r4)   # still cached
        assert cache.stats.hits == 2
        cache.run(backend, r8)   # was evicted — a fresh miss
        assert cache.stats.misses == 4

    def test_clear_resets_entries_but_not_stats(self):
        cache = PlanCache()
        cache.run(SingleGpuBackend(), _make_request(4)[0])
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestStats:
    def test_hit_rate(self):
        cache = PlanCache()
        backend = SingleGpuBackend()
        request, _ = _make_request(4)
        assert cache.stats.hit_rate == 0.0
        cache.run(backend, request)
        cache.run(backend, request)
        cache.run(backend, request)
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
