"""Repository hygiene guards.

Bytecode caches were once committed by accident; this guard fails the
suite (and therefore CI) if any ``__pycache__`` directory or compiled
``.pyc``/``.pyo`` file is ever tracked by git again, and checks the
ignore rules that prevent it.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    result = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.splitlines()


def test_no_tracked_bytecode():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, (
        f"compiled bytecode is tracked by git: {offenders}; "
        "run `git rm -r --cached` on them and keep .gitignore intact"
    )


def test_gitignore_excludes_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in gitignore
    assert "*.pyc" in gitignore
