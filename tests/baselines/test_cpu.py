"""The AES-NI CPU baseline: cost model calibration and backend contract.

Claims: the model prices *every* shape (the property drain-time
admission now leans on), its terms order the PRFs by their ``cpu_cost``
metadata, its calibration reproduces the paper's Figure 10 anchors
against the V100 model (GPU wins large batch by roughly an order of
magnitude; CPU wins single-query batches at small tables), and
``CpuBackend`` satisfies the full ExecutionBackend contract including
plan-cache reuse.  Bit-identity to the reference evaluator is pinned by
the shared equivalence suites (``tests/exec/test_backends.py`` et al.)
through ``BACKEND_FACTORIES``.
"""

import numpy as np
import pytest

from repro.baselines import CPU_BASELINE, CpuBackend, CpuCostModel, CpuSpec
from repro.crypto import get_prf
from repro.dpf import gen
from repro.exec import EvalRequest, PlanCache, SingleGpuBackend
from repro.gpu import Scheduler, V100


def _keys(batch, domain, prf_name="aes128", seed=7):
    prf = get_prf(prf_name)
    rng = np.random.default_rng(seed)
    return [
        gen(int(rng.integers(0, domain)), domain, prf, rng, beta=i + 1)[i % 2]
        for i in range(batch)
    ]


class TestCpuCostModel:
    def test_prices_every_shape(self):
        """No None, no ValueError — even shapes the GPU model rejects."""
        model = CpuCostModel()
        for batch in (1, 7, 256, 1 << 14):
            for table in (1, 200, 1 << 10, 1 << 20):
                latency = model.latency_s(batch, table)
                assert latency > 0 and np.isfinite(latency)

    def test_latency_monotone_in_batch(self):
        model = CpuCostModel()
        latencies = [model.latency_s(b, 1 << 12) for b in (1, 2, 8, 64, 512)]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]

    def test_prf_cpu_cost_orders_the_model(self):
        """ChaCha20 (no hardware assist, cpu_cost 4.0) must cost more
        CPU time than AES-NI-backed aes128 at the same shape."""
        model = CpuCostModel()
        aes = model.latency_s(16, 1 << 12, "aes128")
        chacha = model.latency_s(16, 1 << 12, "chacha20")
        siphash = model.latency_s(16, 1 << 12, "siphash")
        assert chacha > aes > siphash

    def test_resident_amortizes_the_parse(self):
        model = CpuCostModel()
        streaming = model.select(32, 1 << 10, "aes128", resident=False)
        resident = model.select(32, 1 << 10, "aes128", resident=True)
        assert streaming.plan.host_bytes_in > 0
        assert streaming.plan.resident_bytes == 0
        assert resident.plan.host_bytes_in == 0
        assert resident.plan.resident_bytes == streaming.plan.host_bytes_in
        assert resident.stats.latency_s < streaming.stats.latency_s

    def test_stats_terms_sum_to_latency(self):
        stats = CpuCostModel().select(8, 1 << 12, "aes128").stats
        assert stats.latency_s == pytest.approx(
            stats.compute_time_s + stats.memory_time_s + stats.overhead_time_s
        )
        assert stats.feasible
        assert stats.prf_blocks == 8 * 2 * ((1 << 12) - 1)


class TestFigure10Calibration:
    """The two anchors of the paper's CPU-vs-GPU crossover argument."""

    def test_gpu_wins_large_batch_by_an_order_of_magnitude(self):
        """At the 2^20-entry aes128 large-batch point the V100 model
        must lead the CPU baseline by the paper's roughly 13-14x."""
        batch, table = 1024, 1 << 20
        cpu = CpuCostModel().latency_s(batch, table, "aes128")
        gpu = Scheduler(V100).latency_s(batch, table, "aes128")
        ratio = cpu / gpu
        assert 8.0 < ratio < 20.0

    def test_cpu_wins_single_query_batches_at_small_tables(self):
        for table in (1 << 8, 1 << 10):
            cpu = CpuCostModel().latency_s(1, table, "aes128")
            gpu = Scheduler(V100).latency_s(1, table, "aes128")
            assert cpu < gpu

    def test_crossover_exists_in_between(self):
        """At 2^10 entries the lead flips from CPU to GPU somewhere
        inside the bench grid's batch range."""
        model, scheduler = CpuCostModel(), Scheduler(V100)
        wins = [
            model.latency_s(b, 1 << 10, "aes128")
            < scheduler.latency_s(b, 1 << 10, "aes128")
            for b in (1, 4, 16, 64, 256)
        ]
        assert wins[0] and not wins[-1]


class TestCpuBackend:
    def test_plan_is_one_cpu_shard(self):
        keys = _keys(4, 200)
        plan = CpuBackend().plan(EvalRequest(keys=keys, prf_name="aes128"))
        assert plan.backend == "cpu"
        assert plan.feasible
        assert plan.strategies == ("cpu_reference",)
        [shard] = plan.stats.shards
        assert shard.device_name == CPU_BASELINE.name
        assert shard.batch_size == 4

    def test_model_latency_is_the_plan_latency(self):
        """The metadata-only hook and the keyed planner agree — fleet
        routing and drain pricing share one CPU model."""
        keys = _keys(8, 1 << 10)
        backend = CpuBackend()
        plan = backend.plan(EvalRequest(keys=keys, prf_name="aes128"))
        assert plan.latency_s == backend.model_latency_s(8, 1 << 10, "aes128")

    def test_plan_key_is_the_spec_identity(self):
        assert CpuBackend().plan_key == CpuBackend().plan_key
        other = CpuBackend(
            CpuSpec(
                name="epyc-aesni",
                aes_rate=3e8,
                mem_bandwidth=150e9,
                parse_bandwidth=2e9,
                batch_overhead_s=20e-6,
                per_query_overhead_s=1e-6,
                threads=64,
            )
        )
        assert other.plan_key != CpuBackend().plan_key

    def test_device_class_splits_cpu_from_gpu(self):
        assert CpuBackend().device_class == "cpu"
        assert SingleGpuBackend().device_class == "gpu"

    def test_serves_through_a_plan_cache(self):
        keys = _keys(5, 200)
        backend, cache = CpuBackend(), PlanCache()
        request = EvalRequest(keys=keys, prf_name="aes128")
        first = cache.run(backend, request)
        second = cache.run(backend, EvalRequest(keys=keys, prf_name="aes128"))
        assert np.array_equal(first.answers, second.answers)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        # The cached plan is priced at the pow2 bucket, per cache policy.
        assert first.plan.batch_size == 8
        assert first.cost.strategy == "cpu_reference"
