"""The serving loop's headline property: aggregation changes nothing.

Answers served through the async batch-aggregation loop must be
*bit-identical* to sequential ``PirServer.handle`` for the same
queries — per reply frame, byte for byte — across every backend, at
every concurrency level, under whatever batch fusion the SLO knobs
produce.  The property draws random tables, indices, and flush
configurations, so single-query batches, partially fused batches, and
fully fused batches are all exercised against the same oracle.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pir import PirClient, PirServer
from repro.serve import AsyncPirServer, SloConfig, generate_load

from tests.strategies import BACKEND_FACTORIES, domain_sizes, fast_prf_names

CONCURRENCY_LEVELS = (2, 5, 9)
"""Concurrent client counts for the equivalence property (>= 3 levels
per the serving-loop acceptance criteria)."""

SERVE_SETTINGS = settings(max_examples=5, deadline=None)
"""Each example runs a full asyncio serving session per (backend,
concurrency) cell on top of two sequential oracle evaluations, so the
cube stays affordable with few examples per cell."""


@st.composite
def serve_cases(draw):
    domain = draw(domain_sizes(max_size=64))
    return {
        "domain": domain,
        "prf": draw(fast_prf_names),
        "table_seed": draw(st.integers(0, 2**32 - 1)),
        "key_seed": draw(st.integers(0, 2**32 - 1)),
        # Drawn so flushes happen on max_batch sometimes and on the
        # deadline otherwise; equivalence must hold either way.
        "max_batch": draw(st.sampled_from((1, 2, 64))),
        "resident": draw(st.booleans()),
    }


def _serve_concurrently(server, frames, slo):
    """All frames submitted at once through one aggregation loop."""

    async def run():
        loop = AsyncPirServer(server, slo=slo)
        async with loop:
            return await asyncio.gather(*[loop.submit(f) for f in frames])

    return asyncio.run(run())


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
@pytest.mark.parametrize("concurrency", CONCURRENCY_LEVELS)
class TestAsyncMatchesSequential:
    @given(case=serve_cases())
    @SERVE_SETTINGS
    def test_demuxed_replies_are_bit_identical(
        self, backend_name, concurrency, case
    ):
        rng = np.random.default_rng(case["table_seed"])
        table = rng.integers(0, 1 << 64, size=case["domain"], dtype=np.uint64)
        server = PirServer(
            table,
            backend=BACKEND_FACTORIES[backend_name](),
            prf_name=case["prf"],
            resident=case["resident"],
        )
        client = PirClient(
            case["domain"], case["prf"], rng=np.random.default_rng(case["key_seed"])
        )
        indices = rng.integers(0, case["domain"], size=concurrency).tolist()
        frames = [
            batch.requests[0] for batch in client.query_many(indices)
        ]

        sequential = [server.handle(frame) for frame in frames]
        slo = SloConfig(max_batch=case["max_batch"], max_wait_s=0.02)
        concurrent = _serve_concurrently(server, frames, slo)

        assert concurrent == sequential  # whole reply frames, byte for byte


class TestEndToEndReconstruction:
    @pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
    def test_two_party_load_reconstructs_the_table(self, backend_name):
        """Full protocol through two loops: every answer is the row."""
        rng = np.random.default_rng(5)
        table = rng.integers(0, 1 << 64, size=100, dtype=np.uint64)
        indices = rng.integers(0, 100, size=12).tolist()
        client = PirClient(100, "siphash", rng=np.random.default_rng(6))

        async def run():
            loops = [
                AsyncPirServer(
                    PirServer(
                        table,
                        backend=BACKEND_FACTORIES[backend_name](),
                        prf_name="siphash",
                    ),
                    slo=SloConfig(max_batch=4, max_wait_s=0.005),
                )
                for _ in range(2)
            ]
            async with loops[0], loops[1]:
                report = await generate_load(client, loops, indices)
            return report, loops

        report, loops = asyncio.run(run())
        assert report.shed == 0
        assert np.array_equal(report.answers, table[np.array(report.indices)])
        # The loop actually aggregated: fewer dispatches than queries.
        assert loops[0].stats.batches < len(indices)
        assert loops[0].stats.largest_batch > 1

    def test_load_report_counts_queries_not_requests(self):
        """`answered` and `shed` share the query unit, so they always
        sum to what was offered."""
        rng = np.random.default_rng(21)
        table = rng.integers(0, 1 << 64, size=32, dtype=np.uint64)
        client = PirClient(32, "siphash", rng=np.random.default_rng(22))
        indices = rng.integers(0, 32, size=8).tolist()

        async def run():
            loops = [
                AsyncPirServer(
                    PirServer(table, prf_name="siphash"),
                    slo=SloConfig(max_batch=4, max_wait_s=0.005),
                )
                for _ in range(2)
            ]
            async with loops[0], loops[1]:
                return await generate_load(
                    client, loops, indices, queries_per_request=2
                )

        report = asyncio.run(run())
        assert report.shed == 0
        assert report.answered == 8  # queries, not the 4 requests
        assert report.answered_requests == 4
        assert len(report.latencies_s) == 4
        assert np.array_equal(report.answers, table[np.array(report.indices)])

    def test_multi_query_requests_demux_in_order(self):
        """Requests of different sizes fuse and slice back correctly."""
        rng = np.random.default_rng(8)
        table = rng.integers(0, 1 << 64, size=50, dtype=np.uint64)
        server = PirServer(table, prf_name="siphash")
        client = PirClient(50, "siphash", rng=np.random.default_rng(9))
        batches = [client.query([1, 2, 3]), client.query([40]), client.query([7, 7])]
        frames = [b.requests[0] for b in batches]
        sequential = [server.handle(f) for f in frames]
        got = _serve_concurrently(
            server, frames, SloConfig(max_batch=64, max_wait_s=0.01)
        )
        assert got == sequential


class TestSubmitValidation:
    def test_malformed_frames_fail_synchronously(self):
        """Bad queries raise at submit and never enter the queue."""
        table = np.arange(16, dtype=np.uint64)
        server = PirServer(table, prf_name="siphash")
        client = PirClient(32, "siphash", rng=np.random.default_rng(3))
        mismatched = client.query([1]).requests[0]

        async def run():
            loop = AsyncPirServer(server)
            async with loop:
                with pytest.raises(ValueError, match="truncated"):
                    await loop.submit(b"nonsense")
                with pytest.raises(ValueError, match="table has 16"):
                    await loop.submit(mismatched)
                assert loop.pending_queries == 0
            assert loop.stats.submitted == 0

        asyncio.run(run())


class TestCancellation:
    """The cancelled-future leak fix: a caller that gives up must not
    have its query fused, evaluated, or counted as answered."""

    def _fixture(self, domain=32, seed=0):
        rng = np.random.default_rng(seed)
        table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
        server = PirServer(table, prf_name="siphash")
        client = PirClient(domain, "siphash", rng=np.random.default_rng(seed + 1))
        return table, server, client

    def test_cancelled_mid_queue_is_purged_before_merging(self):
        """A query cancelled while waiting in the queue never reaches
        the backend: the fused batch holds only live requests, and the
        counters say cancelled, not answered."""
        table, server, client = self._fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3])]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=1024, max_wait_s=30.0)
            )
            tasks = [
                asyncio.create_task(loop.submit(frame)) for frame in frames
            ]
            while loop.pending_queries < 3:
                await asyncio.sleep(0)
            tasks[1].cancel()
            await loop.start()
            await loop.stop()
            survivors = await asyncio.gather(tasks[0], tasks[2])
            with pytest.raises(asyncio.CancelledError):
                await tasks[1]
            return loop, survivors

        loop, survivors = asyncio.run(run())
        assert survivors == [server.handle(frames[0]), server.handle(frames[2])]
        assert loop.stats.cancelled == 1
        assert loop.stats.answered == 2
        assert loop.stats.largest_batch == 2  # the cancelled one wasn't fused
        assert loop.stats.mean_batch == 2.0
        assert loop.stats.submitted == 3

    def test_cancel_racing_the_dispatch_is_dropped_at_demux(self):
        """A cancel that lands while the batch is already on the
        backend is sunk cost: the reply is discarded, counted under
        cancelled, never answered."""
        table, server, client = self._fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2])]
        victim_task = {}

        class CancelDuringRun:
            """Backend wrapper that cancels a caller mid-dispatch."""

            def __init__(self, inner):
                self.inner = inner
                self.name = inner.name

            def plan(self, request):
                return self.inner.plan(request)

            def model_latency_s(self, *args, **kwargs):
                return self.inner.model_latency_s(*args, **kwargs)

            def run(self, request):
                if victim_task:
                    victim_task.pop("task").cancel()
                return self.inner.run(request)

        server.backend = CancelDuringRun(server.backend)

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=2, max_wait_s=30.0)
            )
            tasks = [
                asyncio.create_task(loop.submit(frame)) for frame in frames
            ]
            while loop.pending_queries < 2:
                await asyncio.sleep(0)
            victim_task["task"] = tasks[1]
            async with loop:
                survivor = await tasks[0]
            with pytest.raises(asyncio.CancelledError):
                await tasks[1]
            return loop, survivor

        loop, survivor = asyncio.run(run())
        assert survivor == server.handle(frames[0])
        assert loop.stats.cancelled == 1
        assert loop.stats.answered == 1
        assert loop.stats.largest_batch == 2  # it *was* fused — too late

    def test_cancelled_retry_is_purged_from_the_retry_pen(self):
        """A query parked for its retry backoff can still be cancelled;
        the next flush purges it instead of re-dispatching it."""
        from repro.serve import FaultPlan, FlakyBackend, RetryPolicy

        table, server, client = self._fixture()
        server.backend = FlakyBackend(server.backend, FaultPlan.nth(1))
        frames = [b.requests[0] for b in client.query_many([1, 2])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1, max_wait_s=0.005),
                retry=RetryPolicy(max_attempts=3, backoff_s=10.0),
            )
            async with loop:
                first = asyncio.create_task(loop.submit(frames[0]))
                # Wait for the injected fault to park it in the pen.
                while loop.stats.retried < 1:
                    await asyncio.sleep(0)
                first.cancel()
                second = await loop.submit(frames[1])
            with pytest.raises(asyncio.CancelledError):
                await first
            return loop, second

        loop, second = asyncio.run(run())
        assert second == server.handle(frames[1])
        assert loop.stats.retried == 1
        assert loop.stats.cancelled == 1
        assert loop.stats.answered == 1
        assert loop.stats.failed == 0
