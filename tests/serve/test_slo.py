"""SLO triggers, admission control, and drain behavior.

Each flush trigger — max-batch, arena-bytes budget, max-wait deadline —
gets a test constructed so *only* that trigger can fire (the others are
parked at unreachable values), asserted through the loop's observable
flush-reason counters.  Backpressure tests build deterministic
backlogs by submitting before the aggregation task starts, so shedding
is exact, not racy.
"""

import asyncio

import numpy as np
import pytest

from repro.pir import PirClient, PirServer
from repro.serve import (
    FLUSH_ARENA_BYTES,
    FLUSH_DEADLINE,
    FLUSH_DRAIN,
    FLUSH_MAX_BATCH,
    AdmissionConfig,
    AsyncPirServer,
    PirServerOverloaded,
    SloConfig,
)

NEVER = 30.0
"""A max_wait_s no test waits out — if a flush depended on it, the
test would time out instead of passing."""


def _fixture(domain=32, prf="siphash", seed=0):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
    server = PirServer(table, prf_name=prf)
    client = PirClient(domain, prf, rng=np.random.default_rng(seed + 1))
    return table, server, client


async def _backlog(loop, frames, queries=None):
    """Submit every frame before the aggregation task runs; returns the
    submission tasks once all ``queries`` (default: one per frame) are
    enqueued."""
    tasks = [asyncio.create_task(loop.submit(frame)) for frame in frames]
    queries = len(frames) if queries is None else queries
    while loop.pending_queries < queries:
        await asyncio.sleep(0)
    return tasks


class TestFlushTriggers:
    def test_max_batch_flushes_without_waiting(self):
        """Exactly max_batch queries flush immediately — max_wait is
        parked so high that reaching the deadline would hang the test."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=4, max_wait_s=NEVER)
            )
            tasks = await _backlog(loop, frames)
            async with loop:
                replies = await asyncio.gather(*tasks)
            return loop, replies

        loop, replies = asyncio.run(run())
        assert loop.stats.flushes == {FLUSH_MAX_BATCH: 1}
        assert loop.stats.largest_batch == 4
        assert replies == [server.handle(f) for f in frames]

    def test_deadline_flushes_a_lone_query(self):
        """One query under a huge max_batch is answered by the max-wait
        deadline — the only trigger that can fire."""
        table, server, client = _fixture()
        frame = client.query([5]).requests[0]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=1024, max_wait_s=0.02)
            )
            async with loop:
                return loop, await loop.submit(frame)

        loop, reply = asyncio.run(run())
        assert loop.stats.flushes == {FLUSH_DEADLINE: 1}
        assert reply == server.handle(frame)

    def test_arena_bytes_budget_flushes(self):
        """A 1-byte budget trips on any pending key material."""
        table, server, client = _fixture()
        frame = client.query([5]).requests[0]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(
                    max_batch=1024, max_wait_s=NEVER, max_arena_bytes=1
                ),
            )
            async with loop:
                return loop, await loop.submit(frame)

        loop, reply = asyncio.run(run())
        assert loop.stats.flushes == {FLUSH_ARENA_BYTES: 1}
        assert reply == server.handle(frame)

    def test_arena_budget_caps_the_merged_batch_too(self):
        """The bytes budget bounds each fused batch's arena footprint,
        not just when to flush: 4 one-key requests under a 2-key budget
        dispatch as 2+2, never as one 4-key batch."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]
        per_request = server.parse_query(frames[0])[1].arena().nbytes

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(
                    max_batch=1024,
                    max_wait_s=NEVER,
                    max_arena_bytes=2 * per_request,
                ),
            )
            tasks = await _backlog(loop, frames)
            async with loop:
                return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert loop.stats.flushes == {FLUSH_ARENA_BYTES: 2}
        assert loop.stats.batches == 2
        assert loop.stats.largest_batch == 2
        assert replies == [server.handle(f) for f in frames]

    def test_stop_drains_pending_queries(self):
        """Stopping the loop answers the backlog (reason: drain)."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2])]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=1024, max_wait_s=NEVER)
            )
            tasks = await _backlog(loop, frames)
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert loop.stats.flushes == {FLUSH_DRAIN: 1}
        assert replies == [server.handle(f) for f in frames]

    def test_oversized_stream_flushes_in_max_batch_chunks(self):
        """8 queries under max_batch=3 dispatch as 3+3+2."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many(list(range(8)))]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=3, max_wait_s=0.02)
            )
            tasks = await _backlog(loop, frames)
            async with loop:
                return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert loop.stats.batches == 3
        assert loop.stats.largest_batch == 3
        assert replies == [server.handle(f) for f in frames]


class TestAdmissionControl:
    def test_overload_sheds_with_error(self):
        """Past max_pending, submissions fail fast; admitted ones are
        still answered correctly."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1024, max_wait_s=NEVER),
                admission=AdmissionConfig(max_pending=3),
            )
            admitted = await _backlog(loop, frames[:3])
            with pytest.raises(PirServerOverloaded, match="max_pending=3"):
                await loop.submit(frames[3])
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*admitted)

        loop, replies = asyncio.run(run())
        assert loop.stats.shed == 1
        assert loop.stats.submitted == 3
        assert loop.stats.answered == 3
        assert replies == [server.handle(f) for f in frames[:3]]

    def test_queue_reopens_after_flush(self):
        """Shedding is a function of *current* depth, not history."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=2, max_wait_s=0.01),
                admission=AdmissionConfig(max_pending=2),
            )
            tasks = await _backlog(loop, frames[:2])
            async with loop:
                await asyncio.gather(*tasks)
                # Depth is back to 0: the shed-worthy submission is now
                # admitted and served.
                reply = await loop.submit(frames[2])
            return loop, reply

        loop, reply = asyncio.run(run())
        assert loop.stats.shed == 0
        assert reply == server.handle(frames[2])

    def test_shedding_happens_before_key_ingestion(self):
        """Admission reads only the frame header, so an overloaded
        server sheds a frame without parsing its (here: garbage) key
        payload — overload handling stays O(header)."""
        from repro.pir import PirQuery

        table, server, _ = _fixture()
        flood = PirQuery(
            request_id=9, count=10**6, key_bytes=b"not keys at all"
        ).to_bytes()

        async def run():
            loop = AsyncPirServer(
                server, admission=AdmissionConfig(max_pending=8)
            )
            async with loop:
                with pytest.raises(PirServerOverloaded):
                    await loop.submit(flood)
            return loop

        loop = asyncio.run(run())
        assert loop.stats.shed == 10**6
        assert loop.stats.submitted == 0

    def test_multi_query_request_counts_keys_not_frames(self):
        """Admission is per query, so one 3-key frame fills a 3-slot
        queue."""
        table, server, client = _fixture()
        big = client.query([1, 2, 3]).requests[0]
        small = client.query([4]).requests[0]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1024, max_wait_s=NEVER),
                admission=AdmissionConfig(max_pending=3),
            )
            tasks = await _backlog(loop, [big], queries=3)
            with pytest.raises(PirServerOverloaded):
                await loop.submit(small)
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert loop.stats.shed == 1
        assert replies == [server.handle(big)]


class TestLifecycle:
    def test_submit_after_stop_raises_instead_of_hanging(self):
        """A stopped loop never silently enqueues a query no flush
        would answer."""
        table, server, client = _fixture()
        frame = client.query([1]).requests[0]

        async def run():
            loop = AsyncPirServer(server)
            async with loop:
                await loop.submit(frame)
            with pytest.raises(RuntimeError, match="stopped"):
                await loop.submit(frame)
            # Restarting reopens submission.
            async with loop:
                return await loop.submit(frame)

        assert asyncio.run(run()) == server.handle(frame)


class TestConfigValidation:
    def test_slo_rejects_nonsense(self):
        with pytest.raises(ValueError, match="max_batch"):
            SloConfig(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            SloConfig(max_wait_s=-1.0)
        with pytest.raises(ValueError, match="max_arena_bytes"):
            SloConfig(max_arena_bytes=0)

    def test_admission_rejects_nonsense(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionConfig(max_pending=0)


class TestRestartLifecycle:
    """Stop → start is a supported cycle: stats persist, the queue
    re-opens, and drain flushes obey the same SLO caps as live ones."""

    def test_submit_during_stop_raises(self):
        """A submission racing an in-progress stop() is refused — it
        could otherwise enqueue a query no flush would ever answer."""
        table, server, client = _fixture()
        frame = client.query([1]).requests[0]

        async def run():
            loop = AsyncPirServer(server)
            await loop.start()
            await loop.submit(frame)
            stopping = asyncio.create_task(loop.stop())
            await asyncio.sleep(0)  # stop() has set the flag, not finished
            with pytest.raises(RuntimeError, match="stopped"):
                await loop.submit(frame)
            await stopping

        asyncio.run(run())

    def test_restarted_loop_serves_again_and_keeps_stats(self):
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2])]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=1, max_wait_s=NEVER)
            )
            async with loop:
                first = await loop.submit(frames[0])
            async with loop:
                second = await loop.submit(frames[1])
            return loop, [first, second]

        loop, replies = asyncio.run(run())
        assert replies == [server.handle(f) for f in frames]
        assert loop.stats.answered == 2  # counters span both lifetimes
        assert loop.stats.batches == 2

    def test_drain_respects_max_batch(self):
        """Draining a deep backlog flushes in max_batch-sized fused
        batches — stop() gets no oversized-kernel exemption."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many(list(range(8)))]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=3, max_wait_s=NEVER)
            )
            tasks = await _backlog(loop, frames)
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert replies == [server.handle(f) for f in frames]
        # 8 queries drain as 3+3+2; the first two may fire as max-batch
        # flushes if the loop wins the race, but every drain flush is
        # capped at 3.
        assert loop.stats.batches == 3
        assert loop.stats.largest_batch == 3
        assert loop.stats.flushes.get(FLUSH_DRAIN, 0) >= 1

    def test_drain_respects_arena_bytes_budget(self):
        """The arena-bytes cap bounds drain flushes too."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]
        per_request = server.parse_query(frames[0])[1].arena().nbytes

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(
                    max_batch=1024,
                    max_wait_s=NEVER,
                    max_arena_bytes=2 * per_request,
                ),
            )
            tasks = await _backlog(loop, frames)
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert replies == [server.handle(f) for f in frames]
        assert loop.stats.batches == 2
        assert loop.stats.largest_batch == 2
