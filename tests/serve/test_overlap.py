"""Double-buffered ingest: parse batch N+1 while batch N expands.

Claims: with ``overlap=True`` the serving loop dispatches each fused
batch on a dedicated thread while the event loop keeps admitting and
parsing the next batch's queries, and every reply stays bit-identical
to the sequential path (exactly one dispatch is ever in flight);
``overlap_flushes`` counts only flushes that actually hid ingest work;
and the plan-cache counters are mirrored into :class:`ServingStats`
after every flush.
"""

import asyncio

import numpy as np
import pytest

from repro.crypto import get_prf
from repro.dpf import gen, pack_keys
from repro.exec import PlanCache, SingleGpuBackend
from repro.pir.server import PirServer
from repro.pir.wire import PirQuery, PirReply
from repro.serve.loop import AsyncPirServer, SloConfig

PRF_NAME = "chacha20"
DOMAIN = 256


def _make_queries(count, per_query=3, seed=0):
    prf = get_prf(PRF_NAME)
    rng = np.random.default_rng(seed)
    queries = []
    for request_id in range(1, count + 1):
        keys = [
            gen(int(rng.integers(0, DOMAIN)), DOMAIN, prf, rng)[0]
            for _ in range(per_query)
        ]
        queries.append(
            PirQuery(
                request_id=request_id, count=per_query, key_bytes=pack_keys(keys)
            ).to_bytes()
        )
    return queries


def _table(seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**63, size=DOMAIN, dtype=np.uint64)


def _drive(table, queries, overlap, plan_cache=None, stagger_s=0.0):
    async def main():
        server = PirServer(
            table,
            backend=SingleGpuBackend(),
            prf_name=PRF_NAME,
            plan_cache=plan_cache,
        )
        loop_server = AsyncPirServer(
            server,
            slo=SloConfig(max_batch=4, max_wait_s=0.005),
            overlap=overlap,
        )
        async with loop_server:
            tasks = []
            for query in queries:
                tasks.append(asyncio.create_task(loop_server.submit(query)))
                if stagger_s:
                    await asyncio.sleep(stagger_s)
            replies = await asyncio.gather(*tasks)
        return replies, loop_server.stats

    return asyncio.run(main())


class TestBitIdentity:
    def test_overlap_replies_equal_sequential_replies(self):
        table = _table()
        queries = _make_queries(10)
        sequential, _ = _drive(table, queries, overlap=False)
        overlapped, _ = _drive(table, queries, overlap=True)
        seq_answers = [PirReply.from_bytes(r).answers.tolist() for r in sequential]
        ovl_answers = [PirReply.from_bytes(r).answers.tolist() for r in overlapped]
        assert seq_answers == ovl_answers

    def test_overlap_replies_equal_synchronous_handle(self):
        table = _table()
        queries = _make_queries(6, seed=3)
        oracle = PirServer(table, prf_name=PRF_NAME)
        replies, _ = _drive(table, queries, overlap=True)
        for query, reply in zip(queries, replies):
            assert reply == oracle.handle(query)


class TestTwoPartyConcurrency:
    def test_both_parties_overlapped_stay_bit_exact(self):
        # Two AsyncPirServers in one process — the two-server protocol's
        # normal bench/smoke shape — each dispatch on its own executor
        # thread, so expansions run genuinely concurrently.  This is the
        # regression shape for the AES scratch-workspace race: with a
        # module-global workspace every answer of an aes128 burst came
        # back corrupted; the thread-local workspace must keep each
        # party's replies equal to a synchronous oracle.
        from repro.serve import generate_load
        from repro.pir import PirClient

        domain = 1024
        rng = np.random.default_rng(11)
        table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
        indices = rng.integers(0, domain, size=32).tolist()
        client = PirClient(domain, "aes128", rng=np.random.default_rng(13))

        async def main():
            loops = [
                AsyncPirServer(
                    PirServer(
                        table,
                        backend=SingleGpuBackend(),
                        prf_name="aes128",
                        plan_cache=PlanCache(),
                    ),
                    slo=SloConfig(max_batch=16, max_wait_s=0.001),
                    overlap=True,
                )
                for _ in range(2)
            ]
            async with loops[0], loops[1]:
                return await generate_load(client, loops, indices)

        report = asyncio.run(main())
        assert report.shed == 0 and report.failed == 0
        assert np.array_equal(report.answers, table[np.array(report.indices)])


class TestOverlapCounter:
    def test_streaming_arrivals_count_overlap_flushes(self):
        # Staggered submissions land while earlier batches run on the
        # dispatch thread — some flushes must observe new ingest work.
        replies, stats = _drive(
            _table(), _make_queries(20, seed=5), overlap=True, stagger_s=0.001
        )
        assert len(replies) == 20
        assert stats.overlap_flushes > 0
        assert stats.overlap_flushes <= stats.batches

    def test_sequential_mode_never_counts_overlap(self):
        _, stats = _drive(
            _table(), _make_queries(8, seed=6), overlap=False, stagger_s=0.001
        )
        assert stats.overlap_flushes == 0


class TestPlanCacheMirroring:
    def test_stats_mirror_the_caches_counters(self):
        cache = PlanCache()
        _, stats = _drive(
            _table(), _make_queries(10, seed=7), overlap=True, plan_cache=cache
        )
        assert stats.plan_cache_misses == cache.stats.misses
        assert stats.plan_cache_hits == cache.stats.hits
        assert cache.stats.lookups == stats.batches
        # Steady state: every batch after the first warm one hits.
        assert stats.plan_cache_hits > 0

    def test_no_cache_leaves_counters_zero(self):
        _, stats = _drive(_table(), _make_queries(6, seed=8), overlap=True)
        assert stats.plan_cache_hits == 0
        assert stats.plan_cache_misses == 0


class TestExecutorLifecycle:
    def test_executor_exists_only_while_running(self):
        async def main():
            server = PirServer(_table(), prf_name=PRF_NAME)
            loop_server = AsyncPirServer(server, overlap=True)
            assert loop_server._executor is None
            await loop_server.start()
            assert loop_server._executor is not None
            await loop_server.stop()
            assert loop_server._executor is None

        asyncio.run(main())

    def test_sequential_mode_never_builds_an_executor(self):
        async def main():
            server = PirServer(_table(), prf_name=PRF_NAME)
            loop_server = AsyncPirServer(server, overlap=False)
            await loop_server.start()
            assert loop_server._executor is None
            await loop_server.stop()

        asyncio.run(main())

    def test_both_parties_share_one_dispatch_thread(self):
        # Two overlapped loops on one event loop must dispatch through
        # the same single-thread executor: expansions serialize instead
        # of running concurrently (kernel/kernel concurrency is not
        # what double-buffering means, and on a core-starved host it
        # loses throughput to GIL convoying).  The executor dies with
        # its last holder.
        async def main():
            loops = [
                AsyncPirServer(
                    PirServer(_table(), prf_name=PRF_NAME), overlap=True
                )
                for _ in range(2)
            ]
            await loops[0].start()
            await loops[1].start()
            assert loops[0]._executor is loops[1]._executor
            executor = loops[0]._executor
            await loops[0].stop()
            # Still alive for the surviving holder.
            assert not executor._shutdown
            await loops[1].stop()
            assert executor._shutdown

        asyncio.run(main())
