"""Fault injection against the serving loop: failures change nothing.

The control plane's headline property extends the loop's: answers
served through the aggregation loop must stay *bit-identical* to
sequential ``PirServer.handle`` even when the backend fails mid-batch.
A fused batch concentrates risk — one exception would fail every query
in it — so these tests kill dispatches with :class:`FlakyBackend` and
assert that the retry/requeue path un-merges the batch, retries the
survivors, and produces byte-for-byte the same reply frames a healthy
sequential server would, across every backend and with or without a
fleet.  Only a request whose retry budget is exhausted may fail, and it
fails *individually*.

Every fault here is deterministic (:class:`FaultPlan`), so a failing
example replays exactly.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pir import PirClient, PirServer
from repro.serve import (
    FLUSH_DRAIN,
    AsyncPirServer,
    BackendFault,
    FaultPlan,
    FleetScheduler,
    FlakyBackend,
    RetryPolicy,
    SloConfig,
    flaky_fleet,
)

from tests.strategies import BACKEND_FACTORIES, domain_sizes, fast_prf_names

NEVER = 30.0
"""A max_wait_s no test waits out (see tests/serve/test_slo.py)."""

CHAOS_SETTINGS = settings(max_examples=5, deadline=None)
"""Each example runs a full serving session plus a sequential oracle
per (backend, fleet) cell, so the grid stays affordable."""


def _fixture(domain=32, prf="siphash", seed=0, backend=None):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
    server = PirServer(table, backend=backend, prf_name=prf)
    client = PirClient(domain, prf, rng=np.random.default_rng(seed + 1))
    return table, server, client


async def _backlog(loop, frames, queries=None):
    """Submit every frame before the aggregation task runs."""
    tasks = [asyncio.create_task(loop.submit(frame)) for frame in frames]
    queries = len(frames) if queries is None else queries
    while loop.pending_queries < queries:
        await asyncio.sleep(0)
    return tasks


@st.composite
def chaos_cases(draw):
    domain = draw(domain_sizes(max_size=64))
    return {
        "domain": domain,
        "prf": draw(fast_prf_names),
        "table_seed": draw(st.integers(0, 2**32 - 1)),
        "key_seed": draw(st.integers(0, 2**32 - 1)),
        # Small max_batch splits the backlog into several fused
        # batches (only some of which fault); a large one fuses
        # everything into the single batch the fault hits.
        "max_batch": draw(st.sampled_from((2, 3, 64))),
        "concurrency": draw(st.integers(2, 8)),
    }


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
@pytest.mark.parametrize("with_fleet", (False, True), ids=("direct", "fleet"))
class TestFaultsPreserveBitExactness:
    """The acceptance property: a fault in >= 1 fused batch, every
    non-shed reply still byte-identical to the sequential oracle."""

    @given(case=chaos_cases())
    @CHAOS_SETTINGS
    def test_replies_survive_an_injected_batch_failure(
        self, backend_name, with_fleet, case
    ):
        factory = BACKEND_FACTORIES[backend_name]
        rng = np.random.default_rng(case["table_seed"])
        table = rng.integers(0, 1 << 64, size=case["domain"], dtype=np.uint64)
        # The oracle server runs on its own healthy backend: handle()
        # consumes backend runs, which must not perturb the fault plan.
        oracle = PirServer(table, backend=factory(), prf_name=case["prf"])
        if with_fleet:
            # Both fleet members fail their first run, so the fault
            # lands no matter where the router sends the first batch.
            fleet = FleetScheduler(
                flaky_fleet(
                    [factory(), factory()],
                    [FaultPlan.nth(1), FaultPlan.nth(1)],
                )
            )
            server = PirServer(table, backend=factory(), prf_name=case["prf"])
        else:
            fleet = None
            server = PirServer(
                table,
                backend=FlakyBackend(factory(), FaultPlan.nth(1)),
                prf_name=case["prf"],
            )
        client = PirClient(
            case["domain"],
            case["prf"],
            rng=np.random.default_rng(case["key_seed"]),
        )
        indices = rng.integers(
            0, case["domain"], size=case["concurrency"]
        ).tolist()
        frames = [batch.requests[0] for batch in client.query_many(indices)]
        sequential = [oracle.handle(frame) for frame in frames]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=case["max_batch"], max_wait_s=0.02),
                fleet=fleet,
            )
            async with loop:
                return loop, await asyncio.gather(
                    *[loop.submit(f) for f in frames]
                )

        loop, replies = asyncio.run(run())
        assert replies == sequential  # byte for byte, through the fault
        assert loop.stats.retried > 0  # the fault hit a fused batch
        assert loop.stats.failed == 0
        assert loop.stats.shed == 0
        assert set(loop.stats.failures) == {"BackendFault"}
        assert sum(loop.stats.failures.values()) >= 1
        assert loop.stats.answered == len(frames)


class TestFailOnceThenRecover:
    def test_first_batch_fails_retry_recovers_bit_exact(self):
        """Deterministic mid-session kill: the first fused batch dies,
        its queries are un-merged, requeued, and answered correctly by
        the retry — with every counter pinned."""
        flaky = FlakyBackend(
            BACKEND_FACTORIES["single_gpu"](), FaultPlan.nth(1)
        )
        table, server, client = _fixture(backend=flaky)
        oracle = PirServer(table, prf_name="siphash")
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=4, max_wait_s=NEVER)
            )
            tasks = await _backlog(loop, frames)
            async with loop:
                return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        assert replies == [oracle.handle(f) for f in frames]
        assert flaky.runs == 2  # the faulted dispatch plus the retry
        assert flaky.faults == 1
        assert loop.stats.retried == 4  # the whole fused batch requeued
        assert loop.stats.failed == 0
        assert loop.stats.failures == {"BackendFault": 1}
        assert loop.stats.batches == 1  # only successful dispatches count
        assert loop.stats.answered == 4

    def test_multi_query_requests_unmerge_and_retry_in_order(self):
        """Requests of different sizes survive the un-merge: each retry
        carries exactly its own key slice, so the demux stays aligned."""
        flaky = FlakyBackend(
            BACKEND_FACTORIES["single_gpu"](), FaultPlan.nth(1)
        )
        table, server, client = _fixture(domain=50, backend=flaky)
        oracle = PirServer(table, prf_name="siphash")
        batches = [
            client.query([1, 2, 3]),
            client.query([40]),
            client.query([7, 7]),
        ]
        frames = [b.requests[0] for b in batches]

        async def run():
            loop = AsyncPirServer(
                server, slo=SloConfig(max_batch=64, max_wait_s=0.01)
            )
            async with loop:
                return loop, await asyncio.gather(
                    *[loop.submit(f) for f in frames]
                )

        loop, replies = asyncio.run(run())
        assert replies == [oracle.handle(f) for f in frames]
        assert loop.stats.retried == 6  # queries, not requests
        assert loop.stats.failed == 0


class TestRetryExhaustion:
    def test_dead_backend_fails_requests_individually(self):
        """Against an always-failing backend every request fails — each
        with its own exception, after its own retry budget, never as a
        collective batch error — and the drain still terminates."""
        flaky = FlakyBackend(
            BACKEND_FACTORIES["single_gpu"](), FaultPlan.always()
        )
        table, server, client = _fixture(backend=flaky)
        frames = [b.requests[0] for b in client.query_many([1, 2, 3])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=4, max_wait_s=NEVER),
                retry=RetryPolicy(max_attempts=3),
            )
            tasks = await _backlog(loop, frames)
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*tasks, return_exceptions=True)

        loop, outcomes = asyncio.run(run())
        assert all(isinstance(o, BackendFault) for o in outcomes)
        assert loop.stats.failed == 3
        assert loop.stats.answered == 0
        # Two retries each (attempts 2 and 3) before giving up.
        assert loop.stats.retried == 6
        assert loop.stats.batches == 0
        assert FLUSH_DRAIN not in loop.stats.flushes  # no successful flush

    def test_retry_disabled_fails_on_first_fault(self):
        """max_attempts=1 turns retries off: the faulted batch fails
        immediately, no requeue."""
        flaky = FlakyBackend(
            BACKEND_FACTORIES["single_gpu"](), FaultPlan.nth(1)
        )
        table, server, client = _fixture(backend=flaky)
        frames = [b.requests[0] for b in client.query_many([1, 2])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=2, max_wait_s=NEVER),
                retry=RetryPolicy(max_attempts=1),
            )
            tasks = await _backlog(loop, frames)
            async with loop:
                return loop, await asyncio.gather(*tasks, return_exceptions=True)

        loop, outcomes = asyncio.run(run())
        assert all(isinstance(o, BackendFault) for o in outcomes)
        assert loop.stats.retried == 0
        assert loop.stats.failed == 2
        assert flaky.runs == 1

    def test_backoff_budget_exhaustion_fails_instead_of_waiting(self):
        """A retry whose backoff would blow the budget fails the
        request even though attempts remain — SLO time is the real
        constraint, not the attempt count."""
        flaky = FlakyBackend(
            BACKEND_FACTORIES["single_gpu"](), FaultPlan.nth(1)
        )
        table, server, client = _fixture(backend=flaky)
        frame = client.query([5]).requests[0]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1, max_wait_s=NEVER),
                retry=RetryPolicy(
                    max_attempts=5, backoff_s=10.0, backoff_budget_s=1.0
                ),
            )
            tasks = await _backlog(loop, [frame])
            async with loop:
                return loop, await asyncio.gather(*tasks, return_exceptions=True)

        loop, outcomes = asyncio.run(run())
        assert isinstance(outcomes[0], BackendFault)
        assert loop.stats.retried == 0  # the 10s first backoff > 1s budget
        assert loop.stats.failed == 1


class TestFaultPlan:
    def test_nth_fails_exactly_the_named_runs(self):
        plan = FaultPlan.nth(2, 4)
        assert [plan.should_fail(n) for n in range(1, 6)] == [
            False, True, False, True, False,
        ]

    def test_always_fails_every_run(self):
        plan = FaultPlan.always()
        assert all(plan.should_fail(n) for n in range(1, 10))

    def test_after_is_dead_from_run_n(self):
        plan = FaultPlan.after(3)
        assert [plan.should_fail(n) for n in range(1, 6)] == [
            False, False, True, True, True,
        ]
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan.after(0)

    def test_random_is_deterministic_per_seed(self):
        plan_a, plan_b = FaultPlan.random(0.5, seed=7), FaultPlan.random(0.5, seed=7)
        a = [plan_a.should_fail(n) for n in range(1, 50)]
        b = [plan_b.should_fail(n) for n in range(1, 50)]
        assert a == b
        assert any(a) and not all(a)  # actually Bernoulli, not constant

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan.nth(0)
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan.nth()
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.random(1.5)


class TestSharedRandomPlans:
    def test_shared_plan_streams_are_interleaving_independent(self):
        """One random plan shared across two FlakyBackends: each
        wrapper draws from its own spawned stream, so whether a given
        run of backend A faults depends only on A's run count — never
        on how A's calls interleave with B's.  Multi-replica chaos with
        a shared plan therefore replays exactly."""
        table, server, client = _fixture()
        request = server.parse_query(client.query([1]).requests[0])[1]

        def run_once(backend):
            try:
                backend.run(request)
                return False
            except BackendFault:
                return True

        def patterns(interleaved, runs=24):
            plan = FaultPlan.random(0.5, seed=123)
            backends = [
                FlakyBackend(BACKEND_FACTORIES["single_gpu"](), plan)
                for _ in range(2)
            ]
            results = [[], []]
            if interleaved:
                for _ in range(runs):
                    for i, backend in enumerate(backends):
                        results[i].append(run_once(backend))
            else:
                for i, backend in enumerate(backends):
                    for _ in range(runs):
                        results[i].append(run_once(backend))
            return results

        interleaved = patterns(interleaved=True)
        sequential = patterns(interleaved=False)
        assert interleaved == sequential
        # The two wrappers draw *different* streams (wrap order), and
        # each is genuinely Bernoulli.
        assert interleaved[0] != interleaved[1]
        for pattern in interleaved:
            assert any(pattern) and not all(pattern)


class TestFlakyBackend:
    def test_model_hooks_delegate_while_run_faults(self):
        """The *model* of a flaky device is intact — planning and
        pricing answer exactly like the inner backend, so fleet routing
        and drain-time admission keep working mid-outage."""
        inner = BACKEND_FACTORIES["single_gpu"]()
        flaky = FlakyBackend(inner, FaultPlan.always())
        table, server, client = _fixture()
        request = server.parse_query(client.query([1]).requests[0])[1]
        assert flaky.plan(request) == inner.plan(request)
        assert flaky.model_latency_s(8, 32) == inner.model_latency_s(8, 32)
        with pytest.raises(BackendFault, match="run #1"):
            flaky.run(request)
        assert flaky.runs == 1 and flaky.faults == 1

    def test_flaky_fleet_wraps_per_plan(self):
        backends = [BACKEND_FACTORIES["single_gpu"]() for _ in range(2)]
        wrapped = flaky_fleet(backends, [FaultPlan.nth(1), None])
        assert isinstance(wrapped[0], FlakyBackend)
        assert wrapped[1] is backends[1]  # None leaves it healthy
        with pytest.raises(ValueError, match="one plan per backend"):
            flaky_fleet(backends, [None])
