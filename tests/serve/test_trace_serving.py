"""End-to-end tracing through the serving loop: complete chains, always.

The acceptance criterion for the observability stack, pinned against
the live loop: every query served in a session — including sessions
with batch fusion, un-merge/retry, shard fan-out and replica
failover — yields a trace whose span chain is complete and orphan-free
(``chain_problems`` returns nothing), and tracing never perturbs the
served bytes (traced replies stay bit-identical to the sequential
oracle and to an untraced loop).  Terminal statuses are covered too:
shed, failed, and cancelled queries must close their traces with the
matching status rather than leaking open contexts.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import PlanCache, SingleGpuBackend
from repro.obs import (
    NULL_TRACER,
    REQUIRED_STAGES,
    MetricsRegistry,
    Tracer,
    chain_problems,
)
from repro.pir import PirClient, PirServer
from repro.serve import (
    AdmissionConfig,
    AsyncPirServer,
    FaultPlan,
    FlakyBackend,
    FleetScheduler,
    PirServerOverloaded,
    RetryPolicy,
    ShardedPirServer,
    SloConfig,
)

from tests.strategies import domain_sizes, fast_prf_names

TRACE_SETTINGS = settings(max_examples=5, deadline=None)
"""Each example runs a traced serving session, an untraced one, and a
sequential oracle, so the property stays affordable."""


def _fixture(domain=32, prf="siphash", seed=0, backend=None, **server_kwargs):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
    server = PirServer(table, backend=backend, prf_name=prf, **server_kwargs)
    client = PirClient(domain, prf, rng=np.random.default_rng(seed + 1))
    return table, server, client


def _serve(server, frames, tracer=None, slo=None, **loop_kwargs):
    async def run():
        loop = AsyncPirServer(
            server,
            slo=slo if slo is not None else SloConfig(max_batch=4, max_wait_s=0.02),
            tracer=tracer,
            **loop_kwargs,
        )
        async with loop:
            return loop, await asyncio.gather(*[loop.submit(f) for f in frames])

    return asyncio.run(run())


def _assert_complete(traces, expected):
    answered = [t for t in traces if t.status == "answered"]
    assert len(answered) == len(traces) == expected
    broken = {t.trace_id: chain_problems(t) for t in traces if chain_problems(t)}
    assert not broken, f"incomplete span chains: {broken}"
    return answered


@st.composite
def trace_cases(draw):
    return {
        "domain": draw(domain_sizes(max_size=64)),
        "prf": draw(fast_prf_names),
        "seed": draw(st.integers(0, 2**32 - 1)),
        "max_batch": draw(st.sampled_from((1, 3, 64))),
        "concurrency": draw(st.integers(2, 8)),
    }


class TestTracingChangesNothing:
    @given(case=trace_cases())
    @TRACE_SETTINGS
    def test_traced_replies_bit_identical_with_complete_chains(self, case):
        """The property: traced == untraced == sequential, and every
        answered query's chain is whole."""
        rng = np.random.default_rng(case["seed"])
        table = rng.integers(0, 1 << 64, size=case["domain"], dtype=np.uint64)
        server = PirServer(table, prf_name=case["prf"])
        client = PirClient(
            case["domain"],
            case["prf"],
            rng=np.random.default_rng(case["seed"] + 1),
        )
        indices = rng.integers(
            0, case["domain"], size=case["concurrency"]
        ).tolist()
        frames = [b.requests[0] for b in client.query_many(indices)]
        slo = SloConfig(max_batch=case["max_batch"], max_wait_s=0.02)

        sequential = [server.handle(f) for f in frames]
        _, untraced = _serve(server, frames, slo=slo)
        tracer = Tracer()
        _, traced = _serve(server, frames, tracer=tracer, slo=slo)

        assert traced == untraced == sequential
        answered = _assert_complete(tracer.drain(), len(frames))
        for trace in answered:
            names = {span.name for span in trace.spans}
            assert names == set(REQUIRED_STAGES)


class TestRetryKeepsChainsWhole:
    def test_unmerged_retry_adds_a_balanced_round_and_a_retry_event(self):
        """A fused batch dies once; its queries retry to bit-exact
        answers, each trace carrying one extra queue/merge/plan/dispatch
        round plus a retry event — no orphans."""
        table, server, client = _fixture(
            backend=FlakyBackend(SingleGpuBackend(), FaultPlan.nth(1))
        )
        oracle = PirServer(table, prf_name="siphash")
        frames = [b.requests[0] for b in client.query_many([1, 5, 9, 13])]
        tracer = Tracer()
        loop, replies = _serve(
            server,
            frames,
            tracer=tracer,
            slo=SloConfig(max_batch=4, max_wait_s=0.02),
            retry=RetryPolicy(max_attempts=3),
        )
        assert replies == [oracle.handle(f) for f in frames]
        assert loop.stats.retried == len(frames)
        answered = _assert_complete(tracer.drain(), len(frames))
        for trace in answered:
            assert "retry" in trace.event_names()
            # One failed dispatch + one successful: two full rounds.
            names = [span.name for span in trace.spans]
            assert names.count("dispatch") == 2
            assert names.count("queue") == 2
            dispatch_spans = [s for s in trace.spans if s.name == "dispatch"]
            assert dispatch_spans[0].annotations.get("error") == "BackendFault"
            assert "error" not in dispatch_spans[1].annotations

    def test_fleet_failure_keeps_chains_whole(self):
        table, _, client = _fixture()
        server = PirServer(table, prf_name="siphash")
        oracle = PirServer(table, prf_name="siphash")
        fleet = FleetScheduler(
            [FlakyBackend(SingleGpuBackend(), FaultPlan.nth(1)), SingleGpuBackend()]
        )
        frames = [b.requests[0] for b in client.query_many([2, 4, 6])]
        tracer = Tracer()
        _, replies = _serve(
            server,
            frames,
            tracer=tracer,
            fleet=fleet,
            retry=RetryPolicy(max_attempts=3),
        )
        assert replies == [oracle.handle(f) for f in frames]
        _assert_complete(tracer.drain(), len(frames))


class TestFailoverAnnotations:
    def test_replica_failover_lands_on_the_affected_traces(self):
        """Sharded serving with a dying replica: answers stay bit-exact,
        chains stay whole, and the shard layer's failover annotation
        reaches the traces of the queries it rescued."""
        rng = np.random.default_rng(31)
        domain = 64
        table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)

        def factory(shard, replica):
            if replica == 0:
                return FlakyBackend(SingleGpuBackend(), FaultPlan.after(1))
            return SingleGpuBackend()

        server = ShardedPirServer(
            table,
            shards=2,
            replicas=2,
            backend_factory=factory,
            retry=RetryPolicy(max_attempts=2),
            rejoin_after=None,
            prf_name="siphash",
        )
        oracle = PirServer(table, prf_name="siphash")
        client = PirClient(domain, "siphash", rng=np.random.default_rng(32))
        indices = rng.integers(0, domain, size=12).tolist()
        frames = [b.requests[0] for b in client.query_many(indices)]
        tracer = Tracer()
        loop, replies = _serve(
            server,
            frames,
            tracer=tracer,
            slo=SloConfig(max_batch=4, max_wait_s=0.02),
            retry=RetryPolicy(max_attempts=3),
        )
        assert replies == [oracle.handle(f) for f in frames]
        assert server.stats_totals().failovers >= 1
        answered = _assert_complete(tracer.drain(), len(frames))
        failed_over = [t for t in answered if "failover" in t.event_names()]
        assert failed_over, "no trace carries the shard layer's annotation"
        shard_indices = {
            event["shard"]
            for trace in failed_over
            for event in trace.events
            if event["name"] == "failover"
        }
        assert shard_indices <= {0, 1}


class TestTerminalStatuses:
    def test_shed_query_closes_its_trace_as_shed(self):
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]
        tracer = Tracer()

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=4, max_wait_s=30.0),
                admission=AdmissionConfig(max_pending=3, drain_budget_s=None),
                tracer=tracer,
            )
            tasks = [asyncio.create_task(loop.submit(f)) for f in frames[:3]]
            while loop.pending_queries < 3:
                await asyncio.sleep(0)
            with pytest.raises(PirServerOverloaded):
                await loop.submit(frames[3])
            async with loop:
                await asyncio.gather(*tasks)

        asyncio.run(run())
        traces = tracer.drain()
        statuses = sorted(t.status for t in traces)
        assert statuses == ["answered", "answered", "answered", "shed"]
        (shed,) = [t for t in traces if t.status == "shed"]
        assert "shed" in shed.event_names()
        assert shed.spans[0].annotations.get("shed") == "depth"
        assert shed.open_spans() == []

    def test_exhausted_retries_close_the_trace_as_failed(self):
        table, server, client = _fixture(
            backend=FlakyBackend(SingleGpuBackend(), FaultPlan.always())
        )
        frames = [b.requests[0] for b in client.query_many([1, 2])]
        tracer = Tracer()

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=2, max_wait_s=0.02),
                retry=RetryPolicy(max_attempts=2),
                tracer=tracer,
            )
            async with loop:
                results = await asyncio.gather(
                    *[loop.submit(f) for f in frames], return_exceptions=True
                )
            return loop, results

        loop, results = asyncio.run(run())
        assert all(isinstance(r, Exception) for r in results)
        assert loop.stats.failed == len(frames)
        traces = tracer.drain()
        assert [t.status for t in traces] == ["failed", "failed"]
        for trace in traces:
            assert "failed" in trace.event_names()
            assert trace.open_spans() == []
            # max_attempts=2: two balanced rounds, then no demux.
            names = [span.name for span in trace.spans]
            assert names.count("dispatch") == 2
            assert names.count("queue") == 2
            assert "demux" not in names

    def test_rejected_frame_closes_its_trace_as_rejected(self):
        # A frame that *parses* but fails key ingestion (wrong domain):
        # rejection happens after the trace opens, so the trace must
        # close as rejected.  (A frame that fails header parsing never
        # gets a trace at all — nothing was admitted.)
        _, server, _ = _fixture(domain=32)
        wrong_client = PirClient(64, "siphash", rng=np.random.default_rng(9))
        frame = wrong_client.query([1]).requests[0]
        tracer = Tracer()

        async def run():
            loop = AsyncPirServer(server, tracer=tracer)
            async with loop:
                with pytest.raises(ValueError):
                    await loop.submit(frame)

        asyncio.run(run())
        (trace,) = tracer.drain()
        assert trace.status == "rejected"
        assert trace.open_spans() == []


class TestMetricsIntegration:
    def test_views_absorb_every_visible_subsystem(self):
        table, _, client = _fixture()
        registry = MetricsRegistry()
        server = PirServer(table, prf_name="siphash", plan_cache=PlanCache())
        fleet = FleetScheduler([SingleGpuBackend(), SingleGpuBackend()])
        frames = [b.requests[0] for b in client.query_many([3, 7])]
        tracer = Tracer(metrics=registry)
        loop, _ = _serve(
            server, frames, tracer=tracer, fleet=fleet, metrics=registry
        )
        snap = registry.snapshot()
        assert {"serving", "plan_cache", "fleet"} <= set(snap["views"])
        assert snap["views"]["serving"]["answered"] == len(frames)
        assert snap["views"]["serving"]["plan_cache_hits"] == (
            loop.stats.plan_cache_hits
        )
        # Per-stage histograms landed via the tracer.
        assert set(registry.histograms("stage.")) == {
            f"stage.{stage}" for stage in REQUIRED_STAGES
        }

    def test_two_loops_share_one_registry_under_unique_names(self):
        table, _, client = _fixture()
        registry = MetricsRegistry()
        servers = [PirServer(table, prf_name="siphash") for _ in range(2)]
        frames = [b.requests[0] for b in client.query_many([1, 2])]

        async def run():
            loops = [
                AsyncPirServer(server, metrics=registry) for server in servers
            ]
            async with loops[0], loops[1]:
                await asyncio.gather(
                    *[loop.submit(f) for loop in loops for f in frames]
                )

        asyncio.run(run())
        views = registry.snapshot()["views"]
        assert {"serving", "serving.2"} <= set(views)
        assert views["serving"]["answered"] == len(frames)
        assert views["serving.2"]["answered"] == len(frames)

    def test_periodic_snapshots_record_and_finish_at_drain(self):
        table, server, client = _fixture()
        registry = MetricsRegistry()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1, max_wait_s=0.005),
                metrics=registry,
                snapshot_every_s=1e-4,
            )
            async with loop:
                for frame in frames:
                    await loop.submit(frame)

        asyncio.run(run())
        assert registry.snapshots, "no periodic/terminal snapshot recorded"
        final = registry.snapshots[-1]
        assert final["views"]["serving"]["answered"] == len(frames)

    def test_snapshot_knob_validation(self):
        _, server, _ = _fixture()
        with pytest.raises(ValueError, match="requires a metrics registry"):
            AsyncPirServer(server, snapshot_every_s=1.0)
        with pytest.raises(ValueError, match="must be positive"):
            AsyncPirServer(
                server, metrics=MetricsRegistry(), snapshot_every_s=0.0
            )


class TestDisabledModeDefault:
    def test_loop_defaults_to_the_null_tracer_and_attaches_nothing(self):
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([4, 8])]
        loop, replies = _serve(server, frames)
        assert loop.tracer is NULL_TRACER
        assert loop.tracer.drain() == []
        assert replies == [PirServer(table, prf_name="siphash").handle(f) for f in frames]
