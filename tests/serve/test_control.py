"""Control-plane policies: QoS priority, tenant buckets, drain admission.

The policies are deterministic by construction — buckets refill from an
injected clock and the drain model prices through the analytic cost
model — so every test here pins an *exact* decision: which submission
sheds, with which reason, and in which order queries leave the queue.
The drain-vs-depth comparison is the PR's acceptance scenario: against
a slow (modeled) backend, drain-time admission sheds queries that
depth-only admission would happily queue past their latency budget.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.baselines import CpuBackend
from repro.exec import SingleGpuBackend
from repro.pir import PirClient, PirServer
from repro.serve import (
    BATCH,
    INTERACTIVE,
    SHED_DEPTH,
    SHED_DRAIN,
    SHED_RATE_LIMIT,
    AdmissionConfig,
    AsyncPirServer,
    DrainTimeModel,
    FleetScheduler,
    PirServerOverloaded,
    QosPolicy,
    RetryPolicy,
    SloConfig,
    TenantRateLimited,
    TenantSpec,
    TokenBucket,
)

NEVER = 30.0
"""A max_wait_s no test waits out (see tests/serve/test_slo.py)."""


def _fixture(domain=32, prf="siphash", seed=0):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1 << 64, size=domain, dtype=np.uint64)
    server = PirServer(table, prf_name=prf)
    client = PirClient(domain, prf, rng=np.random.default_rng(seed + 1))
    return table, server, client


async def _backlog(loop, frames, queries=None, tenants=None):
    """Submit every frame before the aggregation task runs."""
    tenants = tenants if tenants is not None else [None] * len(frames)
    tasks = [
        asyncio.create_task(loop.submit(frame, tenant=tenant))
        for frame, tenant in zip(frames, tenants)
    ]
    queries = len(frames) if queries is None else queries
    while loop.pending_queries < queries:
        await asyncio.sleep(0)
    return tasks


class TestTokenBucket:
    def test_starts_full_and_depletes(self):
        bucket = TokenBucket(rate_qps=1.0, capacity=2.0, now=0.0)
        assert bucket.try_take(2, now=0.0)
        assert not bucket.try_take(1, now=0.0)

    def test_refills_at_rate_up_to_capacity(self):
        bucket = TokenBucket(rate_qps=2.0, capacity=4.0, now=0.0)
        assert bucket.try_take(4, now=0.0)
        assert not bucket.try_take(1, now=0.4)  # 0.8 tokens accrued
        assert bucket.try_take(1, now=0.5)  # the 0.1s wait tops it to 1
        # A long idle period caps at capacity, not rate * elapsed.
        bucket.try_take(0, now=100.0)
        assert bucket.try_take(4, now=100.0)
        assert not bucket.try_take(1, now=100.0)

    def test_clock_going_backwards_never_mints_tokens(self):
        bucket = TokenBucket(rate_qps=1.0, capacity=1.0, now=10.0)
        assert bucket.try_take(1, now=10.0)
        assert not bucket.try_take(1, now=5.0)  # negative elapsed clamps
        # The rewound call must not have moved the refill mark back:
        # refill accrues from the high-water mark (10.0), so the
        # already-elapsed 5..10 interval is never credited twice.
        assert not bucket.try_take(1, now=10.5)  # only 0.5 tokens since 10
        assert bucket.try_take(1, now=11.0)


class TestTenantSpec:
    def test_capacity_defaults_to_one_second_of_rate(self):
        assert TenantSpec(rate_qps=8.0).capacity == 8.0
        assert TenantSpec(rate_qps=8.0, burst=2.0).capacity == 2.0
        assert TenantSpec().capacity == math.inf  # unlimited

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_qps"):
            TenantSpec(rate_qps=0.0)
        with pytest.raises(ValueError, match="burst"):
            TenantSpec(burst=-1.0)
        with pytest.raises(ValueError, match="qos"):
            TenantSpec(qos="premium")


class TestQosPolicy:
    def test_spec_falls_back_to_default(self):
        policy = QosPolicy(
            tenants={"paid": TenantSpec(rate_qps=100.0, qos=BATCH)},
            default=TenantSpec(qos=INTERACTIVE),
        )
        assert policy.spec("paid").rate_qps == 100.0
        assert policy.qos_class("paid") == BATCH
        assert policy.spec("unknown") is policy.default
        assert policy.qos_class(None) == INTERACTIVE

    def test_admit_is_deterministic_per_clock(self):
        policy = QosPolicy(tenants={"t": TenantSpec(rate_qps=1.0, burst=2.0)})
        decisions = [policy.admit("t", 1, now=0.0) for _ in range(3)]
        assert decisions == [True, True, False]  # burst of 2, then dry
        assert policy.admit("t", 1, now=1.0)  # 1 qps refills one token
        assert policy.admit("other", 10**6, now=0.0)  # unlimited default

    def test_validation(self):
        with pytest.raises(ValueError, match="starvation_s"):
            QosPolicy(starvation_s=-1.0)


class TestRetryPolicy:
    def test_backoff_doubles_per_attempt(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1)
        assert policy.next_backoff_s(1) == pytest.approx(0.1)
        assert policy.next_backoff_s(2) == pytest.approx(0.2)
        assert policy.next_backoff_s(3) == pytest.approx(0.4)

    def test_allows_retry_bounds_attempts_and_budget(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=1.0, backoff_budget_s=2.5)
        assert policy.allows_retry(1, 0.0)  # next backoff 1.0 fits
        assert not policy.allows_retry(3, 0.0)  # attempts exhausted
        assert not policy.allows_retry(2, 1.0)  # 1.0 + 2.0 > 2.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError, match="backoff_budget_s"):
            RetryPolicy(backoff_budget_s=-1.0)


class _UnpricedBackend(SingleGpuBackend):
    """A backend whose cost model is unavailable."""

    def model_latency_s(self, *args, **kwargs):
        return None


class _RejectingBackend(SingleGpuBackend):
    """A backend whose cost model rejects every shape as infeasible."""

    def model_latency_s(self, *args, **kwargs):
        raise ValueError("no feasible plan at this shape")


class TestDrainTimeModel:
    def test_prices_through_the_analytic_model(self):
        backend = SingleGpuBackend()
        model = DrainTimeModel([backend], flush_batch=8)
        latency = backend.model_latency_s(8, 64, prf_name="siphash")
        qps = model.modeled_qps(64, "siphash", False)
        assert qps == pytest.approx(8 / latency)
        assert model.drain_s(16, 64, "siphash", False) == pytest.approx(16 / qps)
        assert model.drain_s(0, 64, "siphash", False) == 0.0

    def test_fleet_of_two_drains_twice_as_fast(self):
        single = DrainTimeModel([SingleGpuBackend()], flush_batch=8)
        dual = DrainTimeModel(
            [SingleGpuBackend(), SingleGpuBackend()], flush_batch=8
        )
        assert dual.modeled_qps(64, "siphash", False) == pytest.approx(
            2 * single.modeled_qps(64, "siphash", False)
        )

    def test_unpriced_backend_fails_open(self):
        """No cost model means infinite modeled QPS — drain shedding
        disables itself rather than shedding on a guess."""
        model = DrainTimeModel([_UnpricedBackend()], flush_batch=8)
        assert math.isinf(model.modeled_qps(64, "siphash", False))
        assert model.drain_s(10**9, 64, "siphash", False) == 0.0

    def test_infeasible_member_contributes_zero_qps(self):
        """A fleet member raising ValueError on an infeasible shape
        drops out of the aggregate — the rest of the fleet still prices
        the shape honestly instead of failing open."""
        priced = SingleGpuBackend()
        model = DrainTimeModel([priced, _RejectingBackend()], flush_batch=8)
        qps = model.modeled_qps(64, "siphash", False)
        assert qps == pytest.approx(8 / priced.model_latency_s(8, 64, "siphash"))
        assert math.isfinite(model.drain_s(10**9, 64, "siphash", False))

    def test_fails_open_only_when_no_member_prices(self):
        """Every member rejecting the shape is the one remaining
        fail-open case: admit rather than shed on a guess (and never
        crash the admission path)."""
        model = DrainTimeModel(
            [_RejectingBackend(), _RejectingBackend()], flush_batch=8
        )
        assert math.isinf(model.modeled_qps(64, "siphash", False))
        assert model.drain_s(10**9, 64, "siphash", False) == 0.0

    def test_cpu_entry_closes_the_fail_open_path(self):
        """With a CpuBackend in the fleet, shapes the GPU model rejects
        are still priced — drain admission never takes the fail-open
        ValueError path (the ISSUE 9 regression)."""
        model = DrainTimeModel(
            [_RejectingBackend(), CpuBackend()], flush_batch=8
        )
        qps = model.modeled_qps(64, "siphash", False)
        assert math.isfinite(qps) and qps > 0
        cpu = CpuBackend()
        assert qps == pytest.approx(8 / cpu.model_latency_s(8, 64, "siphash"))
        assert model.drain_s(100, 64, "siphash", False) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="flush_batch"):
            DrainTimeModel([SingleGpuBackend()], flush_batch=0)


class TestTenantRateLimiting:
    def test_over_quota_tenant_sheds_with_rate_limit_reason(self):
        """A limited tenant's burst is admitted, the next query sheds
        with TenantRateLimited — while the server itself has room."""
        table, server, client = _fixture()
        frames = [b.requests[0] for b in client.query_many([1, 2, 3, 4])]
        qos = QosPolicy(tenants={"metered": TenantSpec(rate_qps=1.0, burst=2.0)})

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1024, max_wait_s=NEVER),
                qos=qos,
                clock=lambda: 100.0,  # frozen clock: no refill mid-test
            )
            admitted = await _backlog(
                loop, frames[:2], tenants=["metered", "metered"]
            )
            with pytest.raises(TenantRateLimited, match="metered"):
                await loop.submit(frames[2], tenant="metered")
            # An unlimited tenant is still welcome: the limit is the
            # tenant's, not the server's.
            extra = await _backlog(
                loop, frames[3:], queries=3, tenants=["free-rider"]
            )
            await loop.start()
            await loop.stop()
            return loop, await asyncio.gather(*admitted, *extra)

        loop, replies = asyncio.run(run())
        assert loop.stats.shed == 1
        assert loop.stats.shed_reasons == {SHED_RATE_LIMIT: 1}
        assert loop.stats.answered == 3
        assert replies == [server.handle(f) for f in (frames[0], frames[1], frames[3])]

    def test_rate_limited_is_catchable_as_overloaded(self):
        assert issubclass(TenantRateLimited, PirServerOverloaded)
        assert TenantRateLimited("m").reason == SHED_RATE_LIMIT


class TestDrainTimeAdmission:
    """The acceptance scenario: drain-time admission sheds earlier than
    depth-only against a slow (modeled) backend."""

    def _shed_profile(self, drain_budget_s, offered=8, fleet=None):
        """Submit `offered` queries under a roomy depth cap; return the
        loop and how many were shed (everything is deterministic: the
        drain model prices through the analytic cost model)."""
        table, server, client = _fixture()
        frames = [
            b.requests[0] for b in client.query_many(list(range(offered)))
        ]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=4, max_wait_s=NEVER),
                admission=AdmissionConfig(
                    max_pending=1024, drain_budget_s=drain_budget_s
                ),
                fleet=fleet,
            )
            tasks = []
            for frame in frames:
                # Sequential submits (the aggregation task is not
                # running yet), so the k-th admission decision sees
                # exactly the k-1 previously admitted queries.
                tasks.append(asyncio.ensure_future(loop.submit(frame)))
                await asyncio.sleep(0)
            await loop.start()
            await loop.stop()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return loop, results

        loop, results = asyncio.run(run())
        shed = [r for r in results if isinstance(r, PirServerOverloaded)]
        answered = [r for r in results if isinstance(r, bytes)]
        return loop, shed, answered

    def test_drain_budget_sheds_what_depth_only_accepts(self):
        """Pin the cutoff: a budget worth 6 queries of modeled drain
        admits exactly 6 of 8 and sheds 2 with SHED_DRAIN, while
        depth-only admission (same depth cap) accepts all 8."""
        model = DrainTimeModel([SingleGpuBackend()], flush_batch=4)
        per_query_s = 1.0 / model.modeled_qps(32, "siphash", False)
        budget = 6.5 * per_query_s  # 6 queries fit, the 7th would not

        loop, shed, answered = self._shed_profile(budget)
        assert len(answered) == 6
        assert len(shed) == 2
        assert all(exc.reason == SHED_DRAIN for exc in shed)
        assert loop.stats.shed_reasons == {SHED_DRAIN: 2}

        depth_only, shed_d, answered_d = self._shed_profile(None)
        assert len(answered_d) == 8
        assert not shed_d
        assert depth_only.stats.shed == 0

    def test_fleet_capacity_raises_the_admission_cutoff(self):
        """Drain admission is fleet-aware: the same budget that sheds
        on one backend admits everything when a two-backend fleet
        halves the modeled drain time."""
        model = DrainTimeModel([SingleGpuBackend()], flush_batch=4)
        per_query_s = 1.0 / model.modeled_qps(32, "siphash", False)
        budget = 6.5 * per_query_s

        _, shed_single, _ = self._shed_profile(budget)
        assert len(shed_single) == 2

        fleet = FleetScheduler([SingleGpuBackend(), SingleGpuBackend()])
        loop, shed_fleet, answered = self._shed_profile(budget, fleet=fleet)
        assert not shed_fleet  # 8 * per_query / 2 = 4 "queries" < 6.5
        assert len(answered) == 8
        assert loop.stats.shed == 0

    def test_depth_cap_still_backstops_the_drain_layer(self):
        """An unpriceable backend disables drain shedding, but the
        max_pending hard cap still sheds — the layers are independent."""
        table, _, client = _fixture()
        server = PirServer(table, backend=_UnpricedBackend(), prf_name="siphash")
        frames = [b.requests[0] for b in client.query_many([1, 2, 3])]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=1024, max_wait_s=NEVER),
                admission=AdmissionConfig(max_pending=2, drain_budget_s=1e-12),
            )
            tasks = await _backlog(loop, frames[:2])
            with pytest.raises(PirServerOverloaded) as excinfo:
                await loop.submit(frames[2])
            await loop.start()
            await loop.stop()
            await asyncio.gather(*tasks)
            return loop, excinfo.value

        loop, exc = asyncio.run(run())
        assert exc.reason == SHED_DEPTH
        assert loop.stats.shed_reasons == {SHED_DEPTH: 1}


class TestQosPriority:
    def _completion_order(self, tenants, qos, clock=None, advance=None):
        """Serve one labeled request per tenant through max_batch=2
        flushes; returns labels in completion order (set_result order
        is flush order, so the take order is observable)."""
        table, server, client = _fixture()
        frames = [
            b.requests[0] for b in client.query_many(list(range(len(tenants))))
        ]
        order = []

        async def tracked(loop, frame, label, tenant):
            reply = await loop.submit(frame, tenant=tenant)
            order.append(label)
            return reply

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=2, max_wait_s=NEVER),
                qos=qos,
                clock=clock if clock is not None else (lambda: 0.0),
            )
            tasks = []
            for i, tenant in enumerate(tenants):
                tasks.append(
                    asyncio.create_task(
                        tracked(loop, frames[i], f"{tenant}:{i}", tenant)
                    )
                )
                while loop.pending_queries < i + 1:
                    await asyncio.sleep(0)
                if advance is not None:
                    advance(i)
            await loop.start()
            await loop.stop()
            replies = await asyncio.gather(*tasks)
            return loop, replies

        loop, replies = asyncio.run(run())
        expected = [server.handle(f) for f in frames]
        assert replies == expected  # priority reorders service, not bits
        return loop, order

    def test_interactive_class_is_taken_first(self):
        """Batch-class requests enqueued *first* are still served after
        interactive ones: the take order is priority, not FIFO."""
        qos = QosPolicy(
            tenants={
                "bulk": TenantSpec(qos=BATCH),
                "ui": TenantSpec(qos=INTERACTIVE),
            }
        )
        loop, order = self._completion_order(
            ["bulk", "bulk", "ui", "ui"], qos
        )
        assert order == ["ui:2", "ui:3", "bulk:0", "bulk:1"]
        assert loop.stats.batches == 2  # two max_batch=2 fused batches

    def test_starved_batch_class_preempts_interactive(self):
        """Once the oldest batch-class query ages past starvation_s it
        is taken ahead of interactive traffic — delayed, never starved."""
        state = {"t": 0.0}
        qos = QosPolicy(
            tenants={
                "bulk": TenantSpec(qos=BATCH),
                "ui": TenantSpec(qos=INTERACTIVE),
            },
            starvation_s=0.05,
        )

        def advance(i):
            if i == 0:  # age the bulk request past the bound
                state["t"] += 1.0

        loop, order = self._completion_order(
            ["bulk", "ui", "ui"],
            qos,
            clock=lambda: state["t"],
            advance=advance,
        )
        # First flush takes the starved bulk request (plus one ui to
        # fill the batch); the remaining ui lands in flush two.
        assert order[0] == "bulk:0"
        assert set(order[1:]) == {"ui:1", "ui:2"}

    def test_untagged_traffic_is_interactive_by_default(self):
        qos = QosPolicy(tenants={"bulk": TenantSpec(qos=BATCH)})
        loop, order = self._completion_order(["bulk", None, None], qos)
        assert order[:2] == ["None:1", "None:2"]
        assert order[2] == "bulk:0"
