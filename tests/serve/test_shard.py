"""Sharded, replicated serving: bit-exactness through every failure.

The acceptance property of the sharding layer: a
:class:`ShardedPirServer`'s reply frames are *byte-identical* to the
unsharded ``PirServer.handle`` for every shard count, replication
factor, and backend — with and without injected replica faults, across
replica kills mid-batch, kills during an epoch flip, and probation
rejoins.  An all-replicas-down shard fails with the typed
:class:`ShardUnavailable` (never a hang, never a wrong answer); a
query pinned to a retired epoch fails with the typed
:class:`EpochRetired`.

Every fault here is deterministic (:class:`FaultPlan`), and every
health transition counts batches, so failing scenarios replay exactly.
"""

import asyncio

import numpy as np
import pytest

from repro.pir import PirClient, PirReply, PirServer
from repro.serve import (
    EJECTED,
    AsyncPirServer,
    EpochRegistry,
    EpochRetired,
    FaultPlan,
    FlakyBackend,
    HEALTHY,
    PROBATION,
    RetryPolicy,
    ShardUnavailable,
    ShardedPirServer,
    SloConfig,
    shard_ranges,
)

from tests.strategies import BACKEND_FACTORIES

DOMAIN = 61
PRF = "siphash"

NEVER = 30.0
"""A max_wait_s no test waits out (see tests/serve/test_slo.py)."""


def _table(seed=0, domain=DOMAIN):
    return np.random.default_rng(seed).integers(
        0, 1 << 64, size=domain, dtype=np.uint64
    )


def _client(seed=1, domain=DOMAIN, epoch=0):
    return PirClient(domain, PRF, rng=np.random.default_rng(seed), epoch=epoch)


def _pair(table, factory=None, **kwargs):
    """The two non-colluding parties as identically-configured servers."""
    kwargs.setdefault("prf_name", PRF)
    if factory is not None:
        kwargs["backend_factory"] = factory
    return [ShardedPirServer(table, **kwargs) for _ in range(2)]


def _reconstruct(client, batch, servers):
    return client.reconstruct(
        batch,
        servers[0].handle(batch.requests[0]),
        servers[1].handle(batch.requests[1]),
    )


async def _backlog(loop, frames, queries):
    """Submit every frame before the aggregation task runs."""
    tasks = [asyncio.create_task(loop.submit(frame)) for frame in frames]
    while loop.pending_queries < queries:
        await asyncio.sleep(0)
    return tasks


class TestShardRanges:
    def test_partition_is_exact_and_near_equal(self):
        for domain in (1, 2, 7, 61, 64, 100):
            for shards in range(1, min(domain, 9) + 1):
                ranges = shard_ranges(domain, shards)
                assert ranges[0][0] == 0 and ranges[-1][1] == domain
                sizes = [hi - lo for lo, hi in ranges]
                assert sum(sizes) == domain
                assert max(sizes) - min(sizes) <= 1
                for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
                    assert a_hi == b_lo  # contiguous: no gap, no overlap

    def test_invalid_splits_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            shard_ranges(4, 0)
        with pytest.raises(ValueError, match="shards"):
            shard_ranges(4, 5)
        with pytest.raises(ValueError, match="domain_size"):
            shard_ranges(0, 1)


@pytest.mark.parametrize("backend_name", sorted(BACKEND_FACTORIES))
@pytest.mark.parametrize("shards", [1, 2, 3, 5])
@pytest.mark.parametrize("replicas", [1, 2])
@pytest.mark.parametrize("faulty", [False, True], ids=["healthy", "faulted"])
class TestBitIdenticalToUnsharded:
    """The tentpole acceptance grid — shards x replication x backend,
    with and without injected replica faults, reply frames byte-equal
    to the unsharded server's."""

    def test_handle_matches_unsharded(self, backend_name, shards, replicas, faulty):
        table = _table()
        plain = [
            PirServer(table, backend=BACKEND_FACTORIES[backend_name](), prf_name=PRF)
            for _ in range(2)
        ]

        def factory(shard, replica):
            backend = BACKEND_FACTORIES[backend_name]()
            if faulty and replica == 0:
                # Replica 0 of every shard dies on its first run and
                # recovers: a same-replica retry (replicas=1) or a
                # sibling (replicas=2) must absorb it either way.
                return FlakyBackend(backend, FaultPlan.nth(1))
            return backend

        sharded = _pair(table, factory, shards=shards, replicas=replicas)
        client = _client()
        for indices in ([0], [5, 60, 17], [33, 33, 2, 50]):
            batch = client.query(indices)
            for party in range(2):
                assert sharded[party].handle(batch.requests[party]) == plain[
                    party
                ].handle(batch.requests[party])
        if faulty:
            for server in sharded:
                stats = server.stats_totals()
                assert stats.retries + stats.failovers > 0


class TestReplicaFailover:
    def test_persistent_fault_ejects_and_fails_over(self):
        """A replica dead from run 1 exhausts its retry budget, is
        ejected, and the sibling answers — bit-exact."""

        def factory(shard, replica):
            inner = BACKEND_FACTORIES["single_gpu"]()
            if shard == 0 and replica == 0:
                return FlakyBackend(inner, FaultPlan.after(1))
            return inner

        table = _table()
        servers = _pair(table, factory, shards=2, replicas=2, rejoin_after=None)
        client = _client()
        batch = client.query([4, 19, 44])
        assert np.array_equal(_reconstruct(client, batch, servers), table[[4, 19, 44]])
        for server in servers:
            assert server.replica_states() == [
                (EJECTED, HEALTHY),
                (HEALTHY, HEALTHY),
            ]
            stats = server.stats_totals()
            assert stats.ejections == 1
            assert stats.failovers >= 1

    def test_failover_unmerges_and_preserves_order(self):
        """With merge sizes provided, failover re-dispatches the
        constituents individually, in original order."""

        class CountingBackend:
            """Records each dispatched batch size; delegates the rest."""

            def __init__(self, inner):
                self.inner = inner
                self.name = inner.name
                self.batch_sizes = []

            def plan(self, request):
                return self.inner.plan(request)

            def model_latency_s(self, *args, **kwargs):
                return self.inner.model_latency_s(*args, **kwargs)

            def run(self, request):
                self.batch_sizes.append(request.arena().batch)
                return self.inner.run(request)

        sibling = CountingBackend(BACKEND_FACTORIES["single_gpu"]())
        grid = {
            (0, 0): FlakyBackend(BACKEND_FACTORIES["single_gpu"](), FaultPlan.always()),
            (0, 1): sibling,
        }
        table = _table(domain=16)
        server = ShardedPirServer(
            table,
            shards=1,
            replicas=2,
            backend_factory=lambda s, r: grid[(s, r)],
            prf_name=PRF,
        )
        client = _client(domain=16)
        requests = [
            server.parse_query(client.query(idx).requests[0])[1]
            for idx in ([1, 2], [3], [4, 5, 6])
        ]
        from repro.exec import EvalRequest

        merged, sizes = EvalRequest.merge(requests)
        answers = server.answer_request(merged, epoch=0, sizes=sizes)
        # The survivor served the constituents individually, in order.
        assert sibling.batch_sizes == [2, 1, 3]
        expected = server.combine(BACKEND_FACTORIES["single_gpu"]().run(merged).answers)
        assert np.array_equal(answers, expected)

    def test_all_replicas_down_raises_shard_unavailable(self):
        def dead(shard, replica):
            return FlakyBackend(BACKEND_FACTORIES["single_gpu"](), FaultPlan.always())

        table = _table()
        server = ShardedPirServer(
            table, shards=3, replicas=2, backend_factory=dead, prf_name=PRF
        )
        client = _client()
        with pytest.raises(ShardUnavailable) as excinfo:
            server.handle(client.query([7]).requests[0])
        assert 0 <= excinfo.value.shard_index < 3
        assert excinfo.value.lo < excinfo.value.hi

    def test_probation_rejoin_then_recovery(self):
        """Eject on a transient burst, sit out rejoin_after batches,
        carry probation traffic, recover to healthy — deterministic."""
        # Fails runs 1-3 (exhausting the 3-attempt budget within one
        # batch), healthy forever after.
        flaky = FlakyBackend(BACKEND_FACTORIES["single_gpu"](), FaultPlan.nth(1, 2, 3))
        grid = {(0, 0): flaky, (0, 1): BACKEND_FACTORIES["single_gpu"]()}
        table = _table(domain=16)
        server = ShardedPirServer(
            table,
            shards=1,
            replicas=2,
            backend_factory=lambda s, r: grid[(s, r)],
            prf_name=PRF,
            rejoin_after=2,
            probation_successes=2,
        )
        client = _client(domain=16)
        oracle = PirServer(
            table, backend=BACKEND_FACTORIES["single_gpu"](), prf_name=PRF
        )

        def serve_one(i):
            batch = client.query([i % 16])
            assert server.handle(batch.requests[0]) == oracle.handle(batch.requests[0])

        serve_one(0)  # batch 1: replica 0 exhausts retries, ejected
        assert server.replica_states()[0] == (EJECTED, HEALTHY)
        serve_one(1)  # batch 2: sibling serves; rejoin countdown done
        assert server.replica_states()[0][0] == PROBATION
        # Round-robin hands the probation replica real traffic; two
        # consecutive successes promote it back to healthy.
        while server.replica_states()[0][0] == PROBATION:
            serve_one(2)
        assert server.replica_states()[0][0] == HEALTHY
        stats = server.stats_totals()
        assert stats.ejections == 1
        assert stats.rejoins == 1
        assert stats.recoveries == 1

    def test_probation_fault_re_ejects_without_retries(self):
        always_dead = FlakyBackend(BACKEND_FACTORIES["single_gpu"](), FaultPlan.always())
        grid = {(0, 0): always_dead, (0, 1): BACKEND_FACTORIES["single_gpu"]()}
        table = _table(domain=16)
        server = ShardedPirServer(
            table,
            shards=1,
            replicas=2,
            backend_factory=lambda s, r: grid[(s, r)],
            prf_name=PRF,
            rejoin_after=2,
            probation_successes=2,
        )
        client = _client(domain=16)
        server.handle(client.query([1]).requests[0])  # eject
        assert server.replica_states()[0][0] == EJECTED
        server.handle(client.query([2]).requests[0])  # rejoin countdown
        assert server.replica_states()[0][0] == PROBATION
        runs_before = always_dead.runs
        while always_dead.runs == runs_before:
            server.handle(client.query([3]).requests[0])
        # The probation trial consumed exactly one run — no retry loop
        # — and re-ejected immediately.
        assert always_dead.runs == runs_before + 1
        assert server.replica_states()[0][0] == EJECTED
        assert server.stats_totals().ejections == 2


class TestEpochUpdates:
    def test_stepwise_publish_serves_old_epoch_throughout(self):
        table = _table()
        new_table = _table(seed=9)
        servers = _pair(table, shards=3, replicas=1)
        client = _client()
        pinned = client.query([3, 58])  # pinned to epoch 0 pre-flip
        for server in servers:
            assert server.begin_update(new_table) == 1
            server.ingest_shard(0)
        # Mid-ingest: epoch 0 still answers bit-exact.
        assert np.array_equal(_reconstruct(client, pinned, servers), table[[3, 58]])
        for server in servers:
            server.ingest_shard(2)
            server.ingest_shard(1)
            assert server.flip() == 1
        # Post-flip: a query still pinned to epoch 0 answers from the
        # retained old table...
        late = client.query([3, 58])
        assert np.array_equal(_reconstruct(client, late, servers), table[[3, 58]])
        # ...and an epoch-1 client sees the new one.
        client.epoch = 1
        fresh = client.query([3, 58])
        assert np.array_equal(_reconstruct(client, fresh, servers), new_table[[3, 58]])

    def test_replica_kill_during_flip_stays_bit_exact(self):
        """A replica dies between ingest steps; both epochs keep
        answering correctly through ejection and failover."""
        killable = []

        def factory(shard, replica):
            inner = BACKEND_FACTORIES["single_gpu"]()
            if shard == 1 and replica == 0:
                wrapped = FlakyBackend(inner, FaultPlan())  # armed below
                killable.append(wrapped)
                return wrapped
            return inner

        table = _table()
        new_table = _table(seed=9)
        servers = _pair(table, factory, shards=2, replicas=2)
        client = _client()
        warm = client.query([10, 40])
        assert np.array_equal(_reconstruct(client, warm, servers), table[[10, 40]])
        for server in servers:
            server.begin_update(new_table)
            server.ingest_shard(0)
        # Kill the replica mid-update: dead from its next run onward.
        for wrapped in killable:
            wrapped.fault_plan = FaultPlan.always()
        mid = client.query([10, 40])
        assert np.array_equal(_reconstruct(client, mid, servers), table[[10, 40]])
        for server in servers:
            server.ingest_shard(1)
            server.flip()
        client.epoch = 1
        post = client.query([10, 40])
        assert np.array_equal(_reconstruct(client, post, servers), new_table[[10, 40]])
        for server in servers:
            assert EJECTED in server.replica_states()[1]
            assert server.stats_totals().failovers >= 1

    def test_retired_epoch_raises_typed_error(self):
        table = _table()
        server = ShardedPirServer(
            table, shards=2, replicas=1, prf_name=PRF, retain_epochs=2
        )
        client = _client()
        stale = client.query([1])
        server.publish(_table(seed=2))  # epoch 1; epoch 0 retained
        assert server.handle(stale.requests[0])  # still answerable
        server.publish(_table(seed=3))  # epoch 2; epoch 0 retired
        with pytest.raises(EpochRetired) as excinfo:
            server.handle(stale.requests[0])
        assert excinfo.value.epoch == 0
        assert excinfo.value.retained == (1, 2)
        assert isinstance(excinfo.value, ValueError)

    def test_staged_and_future_epochs_rejected(self):
        table = _table()
        server = ShardedPirServer(table, shards=2, replicas=1, prf_name=PRF)
        early = _client(epoch=1).query([0])
        with pytest.raises(ValueError, match="never been published"):
            server.handle(early.requests[0])
        server.begin_update(_table(seed=2))
        with pytest.raises(ValueError, match="still ingesting"):
            server.handle(early.requests[0])

    def test_flip_refuses_partial_ingest(self):
        server = ShardedPirServer(_table(), shards=3, replicas=1, prf_name=PRF)
        server.begin_update(_table(seed=2))
        server.ingest_shard(0)
        with pytest.raises(ValueError, match="have not ingested"):
            server.flip()

    def test_update_must_keep_table_size(self):
        server = ShardedPirServer(_table(), shards=2, replicas=1, prf_name=PRF)
        with pytest.raises(ValueError, match="table size"):
            server.begin_update(np.zeros(DOMAIN + 1, dtype=np.uint64))

    def test_one_update_in_flight_at_a_time(self):
        server = ShardedPirServer(_table(), shards=2, replicas=1, prf_name=PRF)
        server.begin_update(_table(seed=2))
        with pytest.raises(ValueError, match="already staged"):
            server.begin_update(_table(seed=3))

    def test_registry_state_machine(self):
        registry = EpochRegistry(retain=2)
        assert registry.retained == (0,)
        assert registry.begin() == 1
        with pytest.raises(ValueError, match="already staged"):
            registry.begin()
        registry.check(0)
        with pytest.raises(ValueError, match="still ingesting"):
            registry.check(1)
        assert registry.flip() == (1, [])
        assert registry.retained == (0, 1)
        registry.begin()
        assert registry.flip() == (2, [0])
        with pytest.raises(EpochRetired):
            registry.check(0)
        with pytest.raises(ValueError, match="no epoch is staged"):
            registry.flip()


class TestAsyncIntegration:
    """The sharded server under the aggregation loop: fused batches fan
    out across shards, chaos included, replies bit-exact."""

    def _oracle(self, table, epoch=0):
        oracle = PirServer(
            table, backend=BACKEND_FACTORIES["single_gpu"](), prf_name=PRF
        )
        oracle.epoch = epoch
        return oracle

    def test_loop_over_sharded_server_is_bit_exact_through_kill(self):
        def factory(shard, replica):
            inner = BACKEND_FACTORIES["single_gpu"]()
            if replica == 0:
                # Every shard's replica 0 dies permanently mid-session
                # (run 2): fused batches in flight must fail over.
                return FlakyBackend(inner, FaultPlan.after(2))
            return inner

        table = _table()
        server = ShardedPirServer(
            table, shards=2, replicas=2, backend_factory=factory, prf_name=PRF
        )
        client = _client()
        frames = [client.query([i, (i * 7) % DOMAIN]).requests[0] for i in range(8)]

        async def run():
            loop = AsyncPirServer(server, slo=SloConfig(max_batch=4, max_wait_s=NEVER))
            tasks = await _backlog(loop, frames, queries=16)
            async with loop:
                pass  # drain-on-stop flushes the whole backlog
            return await asyncio.gather(*tasks)

        replies = asyncio.run(run())
        oracle = self._oracle(table)
        assert replies == [oracle.handle(frame) for frame in frames]
        assert server.stats_totals().ejections >= 1
        assert server.stats_totals().failovers >= 1

    def test_loop_splits_batches_at_epoch_boundaries(self):
        """Queries pinned to different epochs never fuse; each answers
        from its own table version, bit-exact."""
        table = _table()
        new_table = _table(seed=9)
        server = ShardedPirServer(table, shards=2, replicas=1, prf_name=PRF)
        client = _client()
        old_batches = [client.query([i]) for i in range(3)]
        server.publish(new_table)
        client.epoch = 1
        new_batches = [client.query([i]) for i in range(3)]
        frames = [b.requests[0] for b in old_batches + new_batches]

        async def run():
            loop = AsyncPirServer(server, slo=SloConfig(max_batch=64, max_wait_s=NEVER))
            tasks = await _backlog(loop, frames, queries=6)
            async with loop:
                pass
            return loop, await asyncio.gather(*tasks)

        loop, replies = asyncio.run(run())
        # Mixed epochs force at least two fused batches even though all
        # six queries fit one max_batch.
        assert loop.stats.batches >= 2
        for batch, reply in zip(old_batches + new_batches, replies):
            assert PirReply.from_bytes(reply).epoch == batch.epoch
        old_oracle = self._oracle(table)
        new_oracle = self._oracle(new_table, epoch=1)
        for batch, reply in zip(old_batches, replies[:3]):
            assert reply == old_oracle.handle(batch.requests[0])
        for batch, reply in zip(new_batches, replies[3:]):
            assert reply == new_oracle.handle(batch.requests[0])

    def test_all_replicas_down_fails_typed_not_hung(self):
        def dead(shard, replica):
            return FlakyBackend(BACKEND_FACTORIES["single_gpu"](), FaultPlan.always())

        table = _table()
        server = ShardedPirServer(
            table, shards=2, replicas=1, backend_factory=dead, prf_name=PRF
        )
        client = _client()
        frames = [client.query([i]).requests[0] for i in range(3)]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=3, max_wait_s=NEVER),
                retry=RetryPolicy(max_attempts=2),
            )
            tasks = await _backlog(loop, frames, queries=3)
            async with loop:
                pass
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(run())
        assert len(outcomes) == 3
        assert all(isinstance(o, ShardUnavailable) for o in outcomes)


class TestServerSurface:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            ShardedPirServer(_table(), shards=2, replicas=0)
        with pytest.raises(ValueError, match="shards"):
            ShardedPirServer(_table(domain=4), shards=5)
        with pytest.raises(ValueError, match="non-empty"):
            ShardedPirServer(np.zeros(0, dtype=np.uint64))

    def test_fleet_routing_rejected(self):
        server = ShardedPirServer(_table(), shards=2, replicas=1, prf_name=PRF)
        request = server.parse_query(_client().query([1]).requests[0])[1]
        with pytest.raises(ValueError, match="routes across its own replicas"):
            server.answer_request(
                request, epoch=0, backend=BACKEND_FACTORIES["single_gpu"]()
            )

    def test_epoch_table_oracle_hook(self):
        table = _table()
        server = ShardedPirServer(table, shards=2, replicas=1, prf_name=PRF)
        new_table = _table(seed=4)
        server.publish(new_table)
        assert np.array_equal(server.epoch_table(0), table)
        assert np.array_equal(server.epoch_table(1), new_table)
        assert server.epoch == 1
