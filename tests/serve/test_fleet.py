"""Fleet routing: deterministic, model-priced, and answer-preserving.

The router must be a pure function of the request sequence (replays
route identically), must spread equal batches across equal devices,
must prefer the modeled-faster device from a cold start, and must never
affect answers — only which backend computes them.
"""

import asyncio

import numpy as np
import pytest

from repro.baselines import CpuBackend
from repro.dpf import gen
from repro.crypto import get_prf
from repro.exec import EvalRequest, HybridBackend, SingleGpuBackend
from repro.gpu import Scheduler
from repro.gpu.device import A100, V100
from repro.pir import PirClient, PirServer
from repro.serve import AsyncPirServer, FleetScheduler, SloConfig


def _request(batch=4, domain=64, prf="siphash", seed=0):
    prf_obj = get_prf(prf)
    rng = np.random.default_rng(seed)
    keys = [
        gen(int(rng.integers(0, domain)), domain, prf_obj, rng, beta=1)[0]
        for _ in range(batch)
    ]
    return EvalRequest(keys=keys, prf_name=prf)


def _mixed_fleet():
    return FleetScheduler([SingleGpuBackend(V100), SingleGpuBackend(A100)])


class TestRoutingDeterminism:
    def test_replayed_stream_routes_identically(self):
        stream = [_request(batch=b, seed=b) for b in (1, 4, 2, 4, 8, 1, 4, 4)]
        fleet_a, fleet_b = _mixed_fleet(), _mixed_fleet()
        decisions_a = [fleet_a.route(r) for r in stream]
        decisions_b = [fleet_b.route(r) for r in stream]
        assert [d.backend_index for d in decisions_a] == [
            d.backend_index for d in decisions_b
        ]
        assert [d.predicted_finish_s for d in decisions_a] == [
            d.predicted_finish_s for d in decisions_b
        ]
        assert fleet_a.route_counts == fleet_b.route_counts

    def test_homogeneous_fleet_alternates_by_tie_break(self):
        """Equal devices, equal batches: 0, 1, 0, 1, ... exactly."""
        fleet = FleetScheduler([SingleGpuBackend(V100), SingleGpuBackend(V100)])
        picks = [fleet.route(_request(seed=i)).backend_index for i in range(6)]
        assert picks == [0, 1, 0, 1, 0, 1]

    def test_cold_mixed_fleet_prefers_the_faster_model(self):
        """First batch goes to the A100 (higher modeled rate)."""
        fleet = _mixed_fleet()
        first = fleet.route(_request())
        assert "A100" in first.backend_label
        assert first.predicted_start_s == 0.0

    def test_mixed_fleet_loads_proportionally(self):
        """Over a stream of equal compute-dominant batches, both
        devices serve, and the A100 serves more."""
        fleet = _mixed_fleet()
        for i in range(10):
            # Large-enough domain that modeled compute (where the A100
            # leads) dominates the launch overheads (where it doesn't).
            fleet.route(_request(batch=8, domain=1 << 14, prf="aes128", seed=i))
        v100_count, a100_count = fleet.route_counts
        assert v100_count > 0
        assert a100_count > v100_count

    def test_virtual_clock_accumulates(self):
        """Routing the same backend twice stacks its modeled latency."""
        fleet = FleetScheduler([SingleGpuBackend(V100)])
        first = fleet.route(_request())
        second = fleet.route(_request())
        assert first.predicted_start_s == 0.0
        assert second.predicted_start_s == first.predicted_finish_s
        assert second.predicted_finish_s > first.predicted_finish_s


class TestDispatch:
    def test_dispatch_answers_match_direct_run(self):
        request = _request(batch=3, seed=42)
        direct = SingleGpuBackend(V100).run(
            EvalRequest(keys=request.keys, prf_name="siphash")
        )
        result, decision = _mixed_fleet().dispatch(request)
        assert np.array_equal(result.answers, direct.answers)
        assert decision.plan.latency_s > 0

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetScheduler([])

    def test_serving_through_a_fleet_is_bit_identical(self):
        """The loop with a fleet attached still equals sequential
        handling — routing moves work, never changes it."""
        rng = np.random.default_rng(17)
        table = rng.integers(0, 1 << 64, size=64, dtype=np.uint64)
        server = PirServer(table, prf_name="siphash")
        client = PirClient(64, "siphash", rng=np.random.default_rng(18))
        frames = [b.requests[0] for b in client.query_many(list(range(9)))]
        sequential = [server.handle(f) for f in frames]

        async def run():
            loop = AsyncPirServer(
                server,
                slo=SloConfig(max_batch=3, max_wait_s=0.02),
                fleet=_mixed_fleet(),
            )
            async with loop:
                return loop, await asyncio.gather(
                    *[loop.submit(f) for f in frames]
                )

        loop, got = asyncio.run(run())
        assert got == sequential
        assert sum(loop.stats.routes.values()) == loop.stats.batches


class _RejectingPlanBackend(SingleGpuBackend):
    """A fleet member whose model rejects every shape as infeasible."""

    def plan(self, request):
        raise ValueError("no feasible strategy for this shape")

    def model_latency_s(self, *args, **kwargs):
        raise ValueError("no feasible strategy for this shape")


class TestHeterogeneousCpuFleet:
    """CPU entries in the fleet mix: priced by the same virtual clocks,
    answering bit-identically, and closing the infeasible-shape hole."""

    def test_cpu_label_comes_from_the_spec(self):
        fleet = FleetScheduler([SingleGpuBackend(V100), CpuBackend()])
        assert any("xeon" in label for label in fleet.labels)

    def test_dispatch_through_a_cpu_entry_is_bit_identical(self):
        request = _request(batch=3, seed=9)
        direct = SingleGpuBackend(V100).run(
            EvalRequest(keys=request.keys, prf_name="siphash")
        )
        fleet = FleetScheduler([CpuBackend()])
        result, decision = fleet.dispatch(request)
        assert np.array_equal(result.answers, direct.answers)
        assert decision.plan.backend == "cpu"

    def test_mixed_cpu_gpu_fleet_loads_both_sides(self):
        """Virtual clocks spill work onto the CPU when the GPU is busy:
        over a stream, both entries serve."""
        fleet = FleetScheduler([SingleGpuBackend(V100), CpuBackend()])
        for i in range(12):
            fleet.route(_request(batch=2, domain=256, prf="aes128", seed=i))
        assert all(count > 0 for count in fleet.route_counts)

    def test_route_skips_members_that_cannot_plan(self):
        fleet = FleetScheduler([_RejectingPlanBackend(), CpuBackend()])
        decision = fleet.route(_request(batch=2, seed=3))
        assert decision.backend_index == 1
        assert fleet.route_counts == [0, 1]

    def test_route_raises_when_no_member_can_plan(self):
        fleet = FleetScheduler([_RejectingPlanBackend()])
        with pytest.raises(ValueError, match="no backend in the fleet"):
            fleet.route(_request(batch=2, seed=3))

    def test_model_latency_skips_infeasible_members(self):
        cpu = CpuBackend()
        fleet = FleetScheduler([_RejectingPlanBackend(), cpu])
        latency = fleet.model_latency_s(8, 64, prf_name="siphash")
        assert latency == pytest.approx(cpu.model_latency_s(8, 64, "siphash"))
        with pytest.raises(ValueError, match="no backend in the fleet"):
            FleetScheduler([_RejectingPlanBackend()]).model_latency_s(
                8, 64, prf_name="siphash"
            )

    def test_hybrid_backend_drops_into_the_fleet(self):
        """A HybridBackend is itself a routable fleet member."""
        hybrid = HybridBackend([CpuBackend(), SingleGpuBackend(V100)])
        fleet = FleetScheduler([hybrid])
        result, decision = fleet.dispatch(_request(batch=3, seed=21))
        direct = SingleGpuBackend(V100).run(
            EvalRequest(keys=_request(batch=3, seed=21).keys, prf_name="siphash")
        )
        assert "hybrid" in decision.backend_label
        assert result.plan.backend == "hybrid"
        assert np.array_equal(result.answers, direct.answers)


class TestSchedulerCostHook:
    def test_latency_s_is_the_winning_plans_latency(self):
        scheduler = Scheduler(V100)
        for batch, table in ((1, 1 << 10), (64, 1 << 14), (256, 1 << 16)):
            selection = scheduler.select(batch, table)
            assert scheduler.latency_s(batch, table) == selection.stats.latency_s > 0

    def test_single_gpu_plan_prices_through_the_hook(self):
        """A backend's plan latency IS the scheduler hook's number, so
        the fleet router and the strategy scheduler share one model."""
        request = _request(batch=8, domain=128)
        backend = SingleGpuBackend(A100)
        plan = backend.plan(request)
        hook = Scheduler(A100).latency_s(8, 128, prf_name="siphash")
        assert plan.latency_s == hook
