#!/usr/bin/env python
"""CI serve-smoke: a short async serving session, checked bit-exact.

Runs concurrent simulated clients against two SLO-aware aggregation
loops (`repro.serve.AsyncPirServer`) backed by a mixed V100 + A100
fleet, and asserts:

* every reconstructed answer equals the table row (bit-exact through
  batch aggregation, fleet routing, and demultiplexing),
* the loops actually aggregated (fused batches larger than one query),
* the fleet router used the model (at least one batch on each party's
  fastest device).

With ``--chaos`` the session additionally kills one fleet backend on
its first dispatch (`FlakyBackend` + `FaultPlan.nth(1)` — the
mid-session backend-kill scenario) and asserts the control plane's
fault-tolerance claim end to end: the failed fused batch is un-merged
and retried, no query fails or is shed, and every answer is *still*
bit-exact.

Exit status is the assertion outcome, so this is runnable as a bare CI
step with only numpy installed:

    PYTHONPATH=src python scripts/serve_smoke.py
    PYTHONPATH=src python scripts/serve_smoke.py --chaos
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.exec import SingleGpuBackend  # noqa: E402
from repro.gpu.device import A100, V100  # noqa: E402
from repro.pir import PirClient, PirServer  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncPirServer,
    FaultPlan,
    FleetScheduler,
    RetryPolicy,
    SloConfig,
    flaky_fleet,
    generate_load,
)

TABLE_ENTRIES = 256
CLIENTS = 24
PRF = "chacha20"


def main(chaos: bool = False) -> int:
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=TABLE_ENTRIES, dtype=np.uint64)
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(7))

    def fleet_backends():
        backends = [SingleGpuBackend(V100), SingleGpuBackend(A100)]
        if chaos:
            # Both devices die on their first dispatch, so the kill
            # lands wherever the router sends the first fused batch;
            # every retry finds a recovered device.
            backends = flaky_fleet(
                backends, [FaultPlan.nth(1), FaultPlan.nth(1)]
            )
        return backends

    async def session():
        loops = [
            AsyncPirServer(
                PirServer(table, prf_name=PRF),
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                fleet=FleetScheduler(fleet_backends()),
                retry=RetryPolicy(max_attempts=3),
            )
            for _ in range(2)
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(session())

    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == CLIENTS, (
        f"answered {report.answered} of {CLIENTS} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "served answers diverged from the table"
    )
    for party, loop in enumerate(loops):
        stats = loop.stats
        assert stats.batches < CLIENTS, (
            f"party {party} never aggregated: {stats.batches} batches "
            f"for {CLIENTS} queries"
        )
        assert stats.largest_batch > 1, f"party {party} fused no batch"
        assert any("A100" in label for label in stats.routes), (
            f"party {party} never routed to the modeled A100: {stats.routes}"
        )
        if chaos:
            assert stats.retried > 0, (
                f"party {party} saw no retries — the injected fault "
                "never hit a fused batch"
            )
            assert stats.failed == 0, (
                f"party {party} failed {stats.failed} queries; the retry "
                "path should have recovered all of them"
            )
            assert stats.failures.get("BackendFault", 0) >= 1, (
                f"party {party} recorded no BackendFault dispatch "
                f"failure: {stats.failures}"
            )
        print(
            f"party {party}: {stats.answered} queries in {stats.batches} "
            f"batches (largest {stats.largest_batch}, mean "
            f"{stats.mean_batch:.1f}), flushes={stats.flushes}, "
            f"routes={stats.routes}"
            + (
                f", retried={stats.retried}, failures={stats.failures}"
                if chaos
                else ""
            )
        )
    label = "serve-smoke (chaos) ok" if chaos else "serve-smoke ok"
    print(
        f"{label}: {report.answered} answers bit-exact, "
        f"p50={report.p50_ms:.2f}ms p99={report.p99_ms:.2f}ms "
        f"({report.achieved_qps:.0f} qps"
        + (f", {report.retried} queries retried)" if chaos else ")")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(chaos="--chaos" in sys.argv[1:]))
