#!/usr/bin/env python
"""CI serve-smoke: a short async serving session, checked bit-exact.

Runs concurrent simulated clients against two SLO-aware aggregation
loops (`repro.serve.AsyncPirServer`) backed by a mixed V100 + A100
fleet, and asserts:

* every reconstructed answer equals the table row (bit-exact through
  batch aggregation, fleet routing, and demultiplexing),
* the loops actually aggregated (fused batches larger than one query),
* the fleet router used the model (at least one batch on each party's
  fastest device).

With ``--chaos`` the session additionally kills one fleet backend on
its first dispatch (`FlakyBackend` + `FaultPlan.nth(1)` — the
mid-session backend-kill scenario) and asserts the control plane's
fault-tolerance claim end to end: the failed fused batch is un-merged
and retried, no query fails or is shed, and every answer is *still*
bit-exact.

With ``--shards N`` the session serves from a sharded, replicated
front-end (`repro.serve.ShardedPirServer`, N contiguous sub-ranges
with two replicas each) instead of a fleet, asserting the shard
partials recombine bit-exact through the aggregation loop.  Combined
with ``--chaos``, replica 0 of *every* shard is killed permanently on
its first dispatch mid-session: the replica sets must eject the dead
replicas, fail the in-flight batches over to the surviving siblings,
and every answer must still be bit-exact with zero queries failed.

With ``--steady`` the session instead exercises the persistent-kernel
steady state: both parties serve through a shared-shape
:class:`repro.exec.PlanCache` with double-buffered ingest
(``overlap=True``), under *paced* arrivals so later batches are parsed
while earlier ones run on the dispatch thread.  The smoke asserts the
new ``ServingStats`` counters are live — ``plan_cache_hits > 0`` (the
plan/workspace pair was reused across flushes) and
``overlap_flushes > 0`` (at least one flush hid ingest work) — on top
of the usual bit-exactness checks.

With ``--hybrid`` the session exercises hybrid CPU/GPU execution end
to end, in two parts.  First, both parties serve through a
:class:`repro.exec.HybridBackend` (AES-NI CPU baseline + V100 model)
across one session fusing batches *below* the shape's modeled
crossover and one fusing batches *at or above* it, asserting every
answer is bit-exact and the routing counters are nonzero on **both**
sides — the cost model demonstrably moved real traffic across the
crossover.  Second, a mixed CPU+GPU :class:`repro.serve.FleetScheduler`
session asserts both the GPU member and the CPU member actually served
fused batches (virtual-clock spillover), still bit-exact.

With ``--trace`` the smoke turns the observability stack on and runs
two chaos sessions under one live :class:`repro.obs.Tracer` + shared
:class:`repro.obs.MetricsRegistry`: the mixed-fleet backend-kill
session (both devices die on their first dispatch, every query must be
retried to an answer) and the sharded replica-kill session (replica 0
of every shard dies permanently, in-flight batches fail over to the
surviving siblings).  On top of the usual bit-exactness checks it
asserts *every* answered query carries a complete, orphan-free span
chain (``chain_problems`` returns nothing), retried queries carry
``retry`` events, and failed-over queries carry ``failover``
annotations from the shard layer.  The session's traces and registry
snapshots are exported to ``obs_smoke.jsonl`` for
``scripts/obs_report.py`` to render.

Exit status is the assertion outcome, so this is runnable as a bare CI
step with only numpy installed:

    PYTHONPATH=src python scripts/serve_smoke.py
    PYTHONPATH=src python scripts/serve_smoke.py --chaos
    PYTHONPATH=src python scripts/serve_smoke.py --shards 3
    PYTHONPATH=src python scripts/serve_smoke.py --shards 3 --chaos
    PYTHONPATH=src python scripts/serve_smoke.py --steady
    PYTHONPATH=src python scripts/serve_smoke.py --hybrid
    PYTHONPATH=src python scripts/serve_smoke.py --trace
"""

from __future__ import annotations

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.baselines import CpuBackend  # noqa: E402
from repro.exec import HybridBackend, PlanCache, SingleGpuBackend  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    Tracer,
    chain_problems,
    write_jsonl,
)
from repro.gpu.device import A100, V100  # noqa: E402
from repro.pir import PirClient, PirServer  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncPirServer,
    EJECTED,
    FaultPlan,
    FlakyBackend,
    FleetScheduler,
    RetryPolicy,
    ShardedPirServer,
    SloConfig,
    flaky_fleet,
    generate_load,
)

TABLE_ENTRIES = 256
CLIENTS = 24
PRF = "chacha20"


def run_sharded(chaos: bool, shards: int) -> int:
    """The sharded session: N shards x 2 replicas, optional replica kill."""
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=TABLE_ENTRIES, dtype=np.uint64)
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(7))

    def replica_backend(shard: int, replica: int):
        inner = SingleGpuBackend(A100 if replica else V100)
        if chaos and replica == 0:
            # Replica 0 of every shard dies for good on its first
            # dispatch — the kill lands mid-session, once traffic flows.
            return FlakyBackend(inner, FaultPlan.after(1))
        return inner

    def make_server():
        return ShardedPirServer(
            table,
            shards=shards,
            replicas=2,
            backend_factory=replica_backend,
            retry=RetryPolicy(max_attempts=2),
            rejoin_after=None,  # a killed replica stays dead; no rejoin noise
            prf_name=PRF,
        )

    servers = [make_server() for _ in range(2)]

    async def session():
        loops = [
            AsyncPirServer(
                server,
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                retry=RetryPolicy(max_attempts=3),
            )
            for server in servers
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(session())

    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == CLIENTS, (
        f"answered {report.answered} of {CLIENTS} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "sharded answers diverged from the table — recombination is broken"
    )
    for party, (server, loop) in enumerate(zip(servers, loops)):
        stats = loop.stats
        totals = server.stats_totals()
        assert server.shard_count == shards
        assert stats.largest_batch > 1, f"party {party} fused no batch"
        assert stats.failed == 0, f"party {party} failed {stats.failed} queries"
        if chaos:
            assert totals.ejections >= shards, (
                f"party {party} ejected {totals.ejections} replicas; every "
                f"shard's replica 0 was killed ({shards} expected)"
            )
            assert totals.failovers >= 1, (
                f"party {party} recorded no failover — the kill never "
                "caught a batch in flight"
            )
            assert all(
                states[0] == EJECTED for states in server.replica_states()
            ), f"party {party} kept a dead replica: {server.replica_states()}"
        print(
            f"party {party}: {stats.answered} queries in {stats.batches} "
            f"batches across {shards}x2 replicas, "
            f"retries={totals.retries} ejections={totals.ejections} "
            f"failovers={totals.failovers}, states={server.replica_states()}"
        )
    label = "serve-smoke (sharded, chaos) ok" if chaos else "serve-smoke (sharded) ok"
    print(
        f"{label}: {report.answered} answers bit-exact across {shards} shards, "
        f"p50={report.p50_ms:.2f}ms p99={report.p99_ms:.2f}ms "
        f"({report.achieved_qps:.0f} qps)"
    )
    return 0


def run_steady() -> int:
    """The steady-state session: plan cache + double-buffered ingest.

    Paced arrivals keep queries landing while earlier fused batches run
    on the dispatch thread, so the overlap path (not just the cache)
    is genuinely exercised; the assertions pin the new counters live.
    """
    clients = 2 * CLIENTS
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=TABLE_ENTRIES, dtype=np.uint64)
    indices = rng.integers(0, TABLE_ENTRIES, size=clients).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(7))

    async def session():
        loops = [
            AsyncPirServer(
                PirServer(
                    table,
                    backend=SingleGpuBackend(),
                    prf_name=PRF,
                    plan_cache=PlanCache(),
                ),
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                retry=RetryPolicy(max_attempts=3),
                overlap=True,
            )
            for _ in range(2)
        ]
        async with loops[0], loops[1]:
            report = await generate_load(
                client, loops, indices, offered_qps=1500.0
            )
        return report, loops

    report, loops = asyncio.run(session())

    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == clients, (
        f"answered {report.answered} of {clients} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "steady-state answers diverged from the table"
    )
    for party, loop in enumerate(loops):
        stats = loop.stats
        assert stats.failed == 0, f"party {party} failed {stats.failed} queries"
        assert stats.largest_batch > 1, f"party {party} fused no batch"
        assert stats.plan_cache_hits > 0, (
            f"party {party} never hit the plan cache "
            f"({stats.plan_cache_hits}h/{stats.plan_cache_misses}m over "
            f"{stats.batches} batches) — bucketed keys are not being reused"
        )
        assert stats.plan_cache_hits + stats.plan_cache_misses == stats.batches, (
            f"party {party}: cache lookups "
            f"({stats.plan_cache_hits + stats.plan_cache_misses}) != batches "
            f"({stats.batches}) — some flush bypassed the plan cache"
        )
        assert stats.overlap_flushes > 0, (
            f"party {party} recorded no overlap flush across {stats.batches} "
            "batches — paced ingest never ran concurrently with a dispatch"
        )
        print(
            f"party {party}: {stats.answered} queries in {stats.batches} "
            f"batches, plan_cache={stats.plan_cache_hits}h/"
            f"{stats.plan_cache_misses}m, "
            f"overlap_flushes={stats.overlap_flushes}, "
            f"flush_reasons={stats.flushes}"
        )
    print(
        f"serve-smoke (steady) ok: {report.answered} answers bit-exact "
        f"through a warm plan cache with double-buffered ingest, "
        f"p50={report.p50_ms:.2f}ms p99={report.p99_ms:.2f}ms "
        f"({report.achieved_qps:.0f} qps)"
    )
    return 0


def run_hybrid() -> int:
    """The hybrid-routing session: real traffic on both crossover sides.

    aes128 at a 1024-entry table puts the modeled CPU/GPU crossover
    inside serveable batch sizes, so a session fusing small batches
    must route CPU-side and a burst fusing the full batch must route
    GPU-side — the counters prove the cost model moved the traffic.
    """
    entries = 1 << 10
    prf = "aes128"
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=entries, dtype=np.uint64)
    hybrids = [
        HybridBackend([CpuBackend(), SingleGpuBackend(V100)]) for _ in range(2)
    ]
    crossover = hybrids[0].crossover_bucket(entries, prf)
    assert crossover is not None and 2 < crossover <= 64, (
        f"aes128 @ 2^10 crossover bucket {crossover} left the serveable "
        "range — the calibration moved; pick a shape with both sides"
    )

    for label, clients, max_batch in (
        ("below-crossover", 6, 2),
        ("above-crossover", 64, 64),
    ):
        indices = rng.integers(0, entries, size=clients).tolist()
        client = PirClient(entries, prf, rng=np.random.default_rng(7))

        async def session():
            loops = [
                AsyncPirServer(
                    PirServer(table, backend=hybrid, prf_name=prf),
                    slo=SloConfig(max_batch=max_batch, max_wait_s=20e-3),
                    retry=RetryPolicy(max_attempts=3),
                )
                for hybrid in hybrids
            ]
            async with loops[0], loops[1]:
                report = await generate_load(client, loops, indices)
            return report, loops

        report, loops = asyncio.run(session())
        assert report.shed == 0, f"{label}: shed {report.shed} queries"
        assert report.answered == clients, (
            f"{label}: answered {report.answered} of {clients}"
        )
        assert np.array_equal(report.answers, table[np.array(report.indices)]), (
            f"{label}: hybrid answers diverged from the table — routing "
            "changed the computation, not just its cost"
        )
        for party, loop in enumerate(loops):
            assert loop.stats.failed == 0, (
                f"{label}: party {party} failed {loop.stats.failed} queries"
            )
        print(
            f"{label}: {report.answered} answers bit-exact "
            f"(fused up to {max(l.stats.largest_batch for l in loops)}), "
            f"p99={report.p99_ms:.2f}ms"
        )

    counts = {
        side: sum(h.class_counts().get(side, 0) for h in hybrids)
        for side in ("cpu", "gpu")
    }
    routes = {}
    for hybrid in hybrids:
        for name, count in hybrid.routing_counts().items():
            routes[name] = routes.get(name, 0) + count
    assert counts["cpu"] > 0, (
        f"no batch routed to the CPU side below the crossover: {routes}"
    )
    assert counts["gpu"] > 0, (
        f"no batch routed to the GPU side at the crossover: {routes}"
    )
    print(
        f"hybrid routing ok: crossover bucket {crossover}, "
        f"class_counts={counts}, routes={routes}"
    )

    # Part two: the CPU baseline as a *fleet member* — virtual clocks
    # spill fused batches onto it alongside the GPU, answers bit-exact.
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    small_table = table[:TABLE_ENTRIES]
    client = PirClient(TABLE_ENTRIES, prf, rng=np.random.default_rng(9))

    async def fleet_session():
        loops = [
            AsyncPirServer(
                PirServer(small_table, prf_name=prf),
                slo=SloConfig(max_batch=2, max_wait_s=5e-3),
                fleet=FleetScheduler([SingleGpuBackend(V100), CpuBackend()]),
                retry=RetryPolicy(max_attempts=3),
            )
            for _ in range(2)
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(fleet_session())
    assert report.shed == 0 and report.answered == CLIENTS
    assert np.array_equal(
        report.answers, small_table[np.array(report.indices)]
    ), "mixed-fleet answers diverged from the table"
    fleet_routes: dict[str, int] = {}
    for loop in loops:
        for name, count in loop.stats.routes.items():
            fleet_routes[name] = fleet_routes.get(name, 0) + count
    assert any("V100" in name for name in fleet_routes), (
        f"the GPU fleet member never served: {fleet_routes}"
    )
    assert any("xeon" in name for name in fleet_routes), (
        f"the CPU fleet member never served: {fleet_routes}"
    )
    print(
        f"serve-smoke (hybrid) ok: mixed CPU+GPU fleet served "
        f"{report.answered} answers bit-exact across {fleet_routes}"
    )
    return 0


def run_traced(export_path: str = "obs_smoke.jsonl") -> int:
    """The traced chaos sessions: every answer must have a span chain.

    Both parties of both sessions share one tracer and one metrics
    registry (per-loop views register under unique names), so the
    export is a single file covering the whole smoke.  Each logical
    query is submitted to both parties, so a session with N clients
    must finish exactly 2N answered traces.
    """
    registry = MetricsRegistry()
    tracer = Tracer(metrics=registry)
    all_traces = []

    # -- part one: mixed V100+A100 fleet, both devices killed on their
    #    first dispatch, every query retried to a bit-exact answer.
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=TABLE_ENTRIES, dtype=np.uint64)
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(7))

    async def fleet_session():
        loops = [
            AsyncPirServer(
                PirServer(table, prf_name=PRF),
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                fleet=FleetScheduler(
                    flaky_fleet(
                        [SingleGpuBackend(V100), SingleGpuBackend(A100)],
                        [FaultPlan.nth(1), FaultPlan.nth(1)],
                    )
                ),
                retry=RetryPolicy(max_attempts=3),
                tracer=tracer,
                metrics=registry,
                snapshot_every_s=2e-3,
            )
            for _ in range(2)
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(fleet_session())
    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == CLIENTS, (
        f"answered {report.answered} of {CLIENTS} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "traced chaos answers diverged from the table — tracing must "
        "never change the computation"
    )
    traces = tracer.drain()
    answered = [t for t in traces if t.status == "answered"]
    assert len(answered) == len(traces) == 2 * CLIENTS, (
        f"expected {2 * CLIENTS} answered traces (one per query per "
        f"party), got {len(answered)} answered of {len(traces)} total"
    )
    broken = {t.trace_id: chain_problems(t) for t in answered if chain_problems(t)}
    assert not broken, f"incomplete span chains after retry: {broken}"
    retried_traces = [t for t in answered if "retry" in t.event_names()]
    total_retried = sum(loop.stats.retried for loop in loops)
    assert total_retried > 0 and retried_traces, (
        f"the injected faults never forced a retry "
        f"(stats={total_retried}, traces={len(retried_traces)})"
    )
    all_traces.extend(traces)
    print(
        f"traced fleet chaos ok: {len(answered)} complete span chains, "
        f"{len(retried_traces)} with retry events "
        f"(stats.retried={total_retried})"
    )

    # -- part two: sharded 2x2, replica 0 of every shard killed for
    #    good; failed-over queries must carry failover annotations.
    shards = 2
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(11))

    def replica_backend(shard: int, replica: int):
        inner = SingleGpuBackend(A100 if replica else V100)
        if replica == 0:
            return FlakyBackend(inner, FaultPlan.after(1))
        return inner

    servers = [
        ShardedPirServer(
            table,
            shards=shards,
            replicas=2,
            backend_factory=replica_backend,
            retry=RetryPolicy(max_attempts=2),
            rejoin_after=None,
            prf_name=PRF,
        )
        for _ in range(2)
    ]

    async def sharded_session():
        loops = [
            AsyncPirServer(
                server,
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                retry=RetryPolicy(max_attempts=3),
                tracer=tracer,
                metrics=registry,
                snapshot_every_s=2e-3,
            )
            for server in servers
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(sharded_session())
    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == CLIENTS, (
        f"answered {report.answered} of {CLIENTS} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "traced sharded answers diverged from the table"
    )
    traces = tracer.drain()
    answered = [t for t in traces if t.status == "answered"]
    assert len(answered) == len(traces) == 2 * CLIENTS, (
        f"expected {2 * CLIENTS} answered traces, got {len(answered)} "
        f"answered of {len(traces)} total"
    )
    broken = {t.trace_id: chain_problems(t) for t in answered if chain_problems(t)}
    assert not broken, f"incomplete span chains after failover: {broken}"
    failed_over = [t for t in answered if "failover" in t.event_names()]
    total_failovers = sum(s.stats_totals().failovers for s in servers)
    assert total_failovers > 0 and failed_over, (
        f"the replica kills never caught a batch in flight "
        f"(stats={total_failovers}, traces={len(failed_over)})"
    )
    all_traces.extend(traces)
    print(
        f"traced sharded chaos ok: {len(answered)} complete span chains, "
        f"{len(failed_over)} with failover annotations "
        f"(stats.failovers={total_failovers})"
    )

    records = write_jsonl(export_path, traces=all_traces, registry=registry)
    print(
        f"serve-smoke (trace) ok: {len(all_traces)} traces, zero orphaned "
        f"spans; exported {records} records -> {export_path}"
    )
    return 0


def main(
    chaos: bool = False,
    shards: int = 0,
    steady: bool = False,
    hybrid: bool = False,
    traced: bool = False,
) -> int:
    if traced:
        if chaos or shards or steady or hybrid:
            raise SystemExit(
                "--trace does not combine with other session flags"
            )
        return run_traced()
    if hybrid:
        if chaos or shards or steady:
            raise SystemExit(
                "--hybrid does not combine with --chaos/--shards/--steady"
            )
        return run_hybrid()
    if steady:
        if chaos or shards:
            raise SystemExit("--steady does not combine with --chaos/--shards")
        return run_steady()
    if shards:
        return run_sharded(chaos, shards)
    rng = np.random.default_rng(2024)
    table = rng.integers(0, 1 << 64, size=TABLE_ENTRIES, dtype=np.uint64)
    indices = rng.integers(0, TABLE_ENTRIES, size=CLIENTS).tolist()
    client = PirClient(TABLE_ENTRIES, PRF, rng=np.random.default_rng(7))

    def fleet_backends():
        backends = [SingleGpuBackend(V100), SingleGpuBackend(A100)]
        if chaos:
            # Both devices die on their first dispatch, so the kill
            # lands wherever the router sends the first fused batch;
            # every retry finds a recovered device.
            backends = flaky_fleet(
                backends, [FaultPlan.nth(1), FaultPlan.nth(1)]
            )
        return backends

    async def session():
        loops = [
            AsyncPirServer(
                PirServer(table, prf_name=PRF),
                slo=SloConfig(max_batch=8, max_wait_s=5e-3),
                fleet=FleetScheduler(fleet_backends()),
                retry=RetryPolicy(max_attempts=3),
            )
            for _ in range(2)
        ]
        async with loops[0], loops[1]:
            report = await generate_load(client, loops, indices)
        return report, loops

    report, loops = asyncio.run(session())

    assert report.shed == 0, f"admission control shed {report.shed} queries"
    assert report.answered == CLIENTS, (
        f"answered {report.answered} of {CLIENTS} queries"
    )
    assert np.array_equal(report.answers, table[np.array(report.indices)]), (
        "served answers diverged from the table"
    )
    for party, loop in enumerate(loops):
        stats = loop.stats
        assert stats.batches < CLIENTS, (
            f"party {party} never aggregated: {stats.batches} batches "
            f"for {CLIENTS} queries"
        )
        assert stats.largest_batch > 1, f"party {party} fused no batch"
        assert any("A100" in label for label in stats.routes), (
            f"party {party} never routed to the modeled A100: {stats.routes}"
        )
        if chaos:
            assert stats.retried > 0, (
                f"party {party} saw no retries — the injected fault "
                "never hit a fused batch"
            )
            assert stats.failed == 0, (
                f"party {party} failed {stats.failed} queries; the retry "
                "path should have recovered all of them"
            )
            assert stats.failures.get("BackendFault", 0) >= 1, (
                f"party {party} recorded no BackendFault dispatch "
                f"failure: {stats.failures}"
            )
        print(
            f"party {party}: {stats.answered} queries in {stats.batches} "
            f"batches (largest {stats.largest_batch}, mean "
            f"{stats.mean_batch:.1f}), flushes={stats.flushes}, "
            f"routes={stats.routes}"
            + (
                f", retried={stats.retried}, failures={stats.failures}"
                if chaos
                else ""
            )
        )
    label = "serve-smoke (chaos) ok" if chaos else "serve-smoke ok"
    print(
        f"{label}: {report.answered} answers bit-exact, "
        f"p50={report.p50_ms:.2f}ms p99={report.p99_ms:.2f}ms "
        f"({report.achieved_qps:.0f} qps"
        + (f", {report.retried} queries retried)" if chaos else ")")
    )
    return 0


def _parse_shards(argv: list[str]) -> int:
    if "--shards" not in argv:
        return 0
    try:
        shards = int(argv[argv.index("--shards") + 1])
    except (IndexError, ValueError):
        raise SystemExit("--shards needs an integer argument")
    if shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {shards}")
    return shards


if __name__ == "__main__":
    raise SystemExit(
        main(
            chaos="--chaos" in sys.argv[1:],
            shards=_parse_shards(sys.argv[1:]),
            steady="--steady" in sys.argv[1:],
            hybrid="--hybrid" in sys.argv[1:],
            traced="--trace" in sys.argv[1:],
        )
    )
