#!/usr/bin/env python
"""Render an observability report from a JSONL trace/metric export.

Usage:
    python scripts/obs_report.py obs_smoke.jsonl [--top N] [--out FILE]

Reads the export written by ``repro.obs.export.write_jsonl`` (for
example by ``scripts/serve_smoke.py --trace``) and prints the session's
per-stage latency breakdown, chain-integrity census, top-N slowest
traces, and the final registry snapshot's histogram percentiles.  With
``--out`` the same rendering is additionally written to a file (the CI
artifact path).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import chain_problems, read_jsonl, render_report  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("export", help="JSONL file from repro.obs.export")
    parser.add_argument(
        "--top", type=int, default=10, help="slowest traces to show (default 10)"
    )
    parser.add_argument(
        "--out", default=None, help="also write the rendered report to this file"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any answered trace has an incomplete span chain",
    )
    args = parser.parse_args(argv)

    traces, snapshots = read_jsonl(args.export)
    report = render_report(traces, snapshots, top=args.top)
    print(report, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
    if args.strict:
        broken = [
            (trace["trace_id"], problems)
            for trace in traces
            if trace["status"] == "answered"
            and (problems := chain_problems(trace))
        ]
        if broken:
            for trace_id, problems in broken:
                print(f"BROKEN trace #{trace_id}: {problems}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
