#!/usr/bin/env python
"""Figure 8/9 batch-size sweeps as CSV, from a BENCH_dpf.json run.

The paper's Figures 8 and 9 plot expansion throughput against batch
size, per traversal strategy and table size.  This script re-derives
those sweeps from a bench-harness artifact so the harness stays the
single source of numbers: every *measured* point comes from the JSON,
and each point is paired with the analytic model's prediction for the
same shape (`GpuSimulator.simulate`) plus the steady-state pipelined
prediction (`GpuSimulator.pipelined_latency_s`, the double-buffered
ingest path the serving loop runs with ``overlap=True``).

Rows are the eval-family results (the four GGM traversal strategies;
reference / ingest / pir_roundtrip / serving families carry no kernel
plan and are skipped), grouped by ``(prf, strategy, log_domain,
ingest)`` and ordered by batch within each group — one CSV line per
measured point, ready to pivot into either figure:

    prf,strategy,log_domain,ingest,batch,measured_qps,modeled_qps,
    modeled_pipelined_qps,pipeline_speedup

``modeled_qps`` prices kernel + host parse sequentially
(``overlap=False``); ``modeled_pipelined_qps`` overlaps them
(``overlap=False`` vs ``True`` of the same two-stage pipeline), so
``pipeline_speedup`` is the modeled win of double-buffered ingest for
that exact shape.  ``ingest="arena"`` rows model resident keys (no
per-batch wire parse), so their speedup is 1.0 by construction.

Usage:
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --out sweeps.csv
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --device A100
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.gpu import available_strategies, get_strategy  # noqa: E402
from repro.gpu.device import A100, V100  # noqa: E402
from repro.gpu.sim import GpuSimulator  # noqa: E402

#: Emitted header, in order.  CI checks this exact schema.
CSV_COLUMNS = (
    "prf",
    "strategy",
    "log_domain",
    "ingest",
    "batch",
    "measured_qps",
    "modeled_qps",
    "modeled_pipelined_qps",
    "pipeline_speedup",
)

DEVICES = {"V100": V100, "A100": A100}

#: Table entries are uint64 throughout the bench grid.
ENTRY_BYTES = 8


def sweep_rows(results: list[dict], device_name: str = "V100") -> list[dict]:
    """One CSV row per eval-family result, grouped and batch-ordered."""
    sim = GpuSimulator(DEVICES[device_name])
    strategies = set(available_strategies())
    eval_rows = [r for r in results if r["strategy"] in strategies]
    eval_rows.sort(
        key=lambda r: (r["prf"], r["strategy"], r["log_domain"], r["ingest"], r["batch"])
    )
    out = []
    for row in eval_rows:
        plan = get_strategy(row["strategy"]).plan(
            row["batch"],
            row["domain_size"],
            entry_bytes=ENTRY_BYTES,
            prf_name=row["prf"],
            resident_keys=row["ingest"] == "arena",
        )
        sequential_s = sim.pipelined_latency_s(plan, overlap=False)
        pipelined_s = sim.pipelined_latency_s(plan, overlap=True)
        out.append(
            {
                "prf": row["prf"],
                "strategy": row["strategy"],
                "log_domain": row["log_domain"],
                "ingest": row["ingest"],
                "batch": row["batch"],
                "measured_qps": round(row["qps"], 2),
                "modeled_qps": round(row["batch"] / sequential_s, 2),
                "modeled_pipelined_qps": round(row["batch"] / pipelined_s, 2),
                "pipeline_speedup": round(sequential_s / pipelined_s, 4),
            }
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_dpf.json-format input")
    parser.add_argument(
        "--out", default="-", help="output CSV path ('-' for stdout, the default)"
    )
    parser.add_argument(
        "--device",
        default="V100",
        choices=sorted(DEVICES),
        help="device spec the model prices plans on",
    )
    args = parser.parse_args(argv)

    with open(args.bench_json) as handle:
        payload = json.load(handle)
    if "results" not in payload:
        print(f"{args.bench_json}: not a bench artifact (no 'results')", file=sys.stderr)
        return 2
    rows = sweep_rows(payload["results"], device_name=args.device)
    if not rows:
        print(f"{args.bench_json}: no eval-family rows to sweep", file=sys.stderr)
        return 2

    handle = sys.stdout if args.out == "-" else open(args.out, "w", newline="")
    try:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)
    finally:
        if handle is not sys.stdout:
            handle.close()
            print(f"wrote {len(rows)} sweep rows -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
