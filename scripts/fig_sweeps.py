#!/usr/bin/env python
"""Figure/table sweeps as CSV, from a BENCH_dpf.json run.

The paper's throughput figures are different pivots of the same
measurement grid.  This script re-derives each from a bench-harness
artifact so the harness stays the single source of numbers: every
*measured* point comes from the JSON, and each point is paired with
the analytic model's prediction for the same shape
(`GpuSimulator.simulate`) plus, for the batch/table sweeps, the
steady-state pipelined prediction (`GpuSimulator.pipelined_latency_s`,
the double-buffered ingest path the serving loop runs with
``overlap=True``).  ``--sweep`` picks the pivot:

* ``batch`` (default) — Figures 8/9: throughput vs batch size, one
  group per ``(prf, strategy, log_domain, ingest)``, batch-ordered:

      prf,strategy,log_domain,ingest,batch,measured_qps,modeled_qps,
      modeled_pipelined_qps,pipeline_speedup

* ``table`` — Figures 13/14: throughput vs table size, the same
  measured points re-grouped by ``(prf, strategy, batch, ingest)``
  and ordered by ``log_domain`` within each group:

      prf,strategy,batch,ingest,log_domain,measured_qps,modeled_qps,
      modeled_pipelined_qps,pipeline_speedup

* ``prf`` — Table 5: the per-PRF comparison.  One row per
  ``(prf, log_domain, batch)`` taking the best-measured eval
  strategy, priced against the AES-NI-aware CPU baseline
  (``repro.baselines.CpuCostModel``), with ``gpu_vs_cpu`` the modeled
  GPU-over-CPU speedup at that shape — the per-PRF acceleration
  story (hardware AES on both sides vs GPU-only ChaCha20 wins):

      prf,log_domain,batch,strategy,measured_qps,modeled_qps,
      cpu_modeled_qps,gpu_vs_cpu

In every sweep, rows are the eval-family results (the GGM traversal
strategies; reference / ingest / pir_roundtrip / serving /
backend_select families carry no kernel plan and are skipped).
``modeled_qps`` prices kernel + host parse sequentially
(``overlap=False``); ``modeled_pipelined_qps`` overlaps them
(``overlap=False`` vs ``True`` of the same two-stage pipeline), so
``pipeline_speedup`` is the modeled win of double-buffered ingest for
that exact shape.  ``ingest="arena"`` rows model resident keys (no
per-batch wire parse), so their speedup is 1.0 by construction.

Usage:
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --out sweeps.csv
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --device A100
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --sweep table
    PYTHONPATH=src python scripts/fig_sweeps.py BENCH_dpf.json --sweep prf
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import CpuCostModel  # noqa: E402
from repro.gpu import available_strategies, get_strategy  # noqa: E402
from repro.gpu.device import A100, V100  # noqa: E402
from repro.gpu.sim import GpuSimulator  # noqa: E402

#: Emitted header for ``--sweep batch``, in order.  CI checks this
#: exact schema.
CSV_COLUMNS = (
    "prf",
    "strategy",
    "log_domain",
    "ingest",
    "batch",
    "measured_qps",
    "modeled_qps",
    "modeled_pipelined_qps",
    "pipeline_speedup",
)

#: Emitted header for ``--sweep table`` (Figures 13/14), in order.
TABLE_CSV_COLUMNS = (
    "prf",
    "strategy",
    "batch",
    "ingest",
    "log_domain",
    "measured_qps",
    "modeled_qps",
    "modeled_pipelined_qps",
    "pipeline_speedup",
)

#: Emitted header for ``--sweep prf`` (Table 5), in order.
PRF_CSV_COLUMNS = (
    "prf",
    "log_domain",
    "batch",
    "strategy",
    "measured_qps",
    "modeled_qps",
    "cpu_modeled_qps",
    "gpu_vs_cpu",
)

DEVICES = {"V100": V100, "A100": A100}

#: Table entries are uint64 throughout the bench grid.
ENTRY_BYTES = 8


def sweep_rows(results: list[dict], device_name: str = "V100") -> list[dict]:
    """One CSV row per eval-family result, grouped and batch-ordered."""
    sim = GpuSimulator(DEVICES[device_name])
    strategies = set(available_strategies())
    eval_rows = [r for r in results if r["strategy"] in strategies]
    eval_rows.sort(
        key=lambda r: (r["prf"], r["strategy"], r["log_domain"], r["ingest"], r["batch"])
    )
    out = []
    for row in eval_rows:
        plan = get_strategy(row["strategy"]).plan(
            row["batch"],
            row["domain_size"],
            entry_bytes=ENTRY_BYTES,
            prf_name=row["prf"],
            resident_keys=row["ingest"] == "arena",
        )
        sequential_s = sim.pipelined_latency_s(plan, overlap=False)
        pipelined_s = sim.pipelined_latency_s(plan, overlap=True)
        out.append(
            {
                "prf": row["prf"],
                "strategy": row["strategy"],
                "log_domain": row["log_domain"],
                "ingest": row["ingest"],
                "batch": row["batch"],
                "measured_qps": round(row["qps"], 2),
                "modeled_qps": round(row["batch"] / sequential_s, 2),
                "modeled_pipelined_qps": round(row["batch"] / pipelined_s, 2),
                "pipeline_speedup": round(sequential_s / pipelined_s, 4),
            }
        )
    return out


def table_sweep_rows(results: list[dict], device_name: str = "V100") -> list[dict]:
    """Figure 13/14 pivot: the same measured points, table-size-ordered.

    The pricing is identical to :func:`sweep_rows`; only the grouping
    changes — ``(prf, strategy, batch, ingest)`` groups ordered by
    ``log_domain``, so each group is one throughput-vs-table-size line.
    """
    rows = sweep_rows(results, device_name=device_name)
    rows.sort(
        key=lambda r: (r["prf"], r["strategy"], r["batch"], r["ingest"], r["log_domain"])
    )
    return [{column: row[column] for column in TABLE_CSV_COLUMNS} for row in rows]


def prf_sweep_rows(results: list[dict], device_name: str = "V100") -> list[dict]:
    """Table 5 pivot: best-measured eval strategy per (prf, shape),
    priced against the AES-NI-aware CPU baseline."""
    sim = GpuSimulator(DEVICES[device_name])
    cpu = CpuCostModel(entry_bytes=ENTRY_BYTES)
    strategies = set(available_strategies())
    best: dict[tuple, dict] = {}
    for row in results:
        if row["strategy"] not in strategies:
            continue
        shape = (row["prf"], row["log_domain"], row["batch"])
        if shape not in best or row["qps"] > best[shape]["qps"]:
            best[shape] = row
    out = []
    for shape in sorted(best):
        row = best[shape]
        plan = get_strategy(row["strategy"]).plan(
            row["batch"],
            row["domain_size"],
            entry_bytes=ENTRY_BYTES,
            prf_name=row["prf"],
            resident_keys=row["ingest"] == "arena",
        )
        gpu_s = sim.pipelined_latency_s(plan, overlap=False)
        cpu_s = cpu.latency_s(row["batch"], row["domain_size"], row["prf"])
        out.append(
            {
                "prf": row["prf"],
                "log_domain": row["log_domain"],
                "batch": row["batch"],
                "strategy": row["strategy"],
                "measured_qps": round(row["qps"], 2),
                "modeled_qps": round(row["batch"] / gpu_s, 2),
                "cpu_modeled_qps": round(row["batch"] / cpu_s, 2),
                "gpu_vs_cpu": round(cpu_s / gpu_s, 3),
            }
        )
    return out


SWEEPS = {
    "batch": (sweep_rows, CSV_COLUMNS),
    "table": (table_sweep_rows, TABLE_CSV_COLUMNS),
    "prf": (prf_sweep_rows, PRF_CSV_COLUMNS),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_dpf.json-format input")
    parser.add_argument(
        "--out", default="-", help="output CSV path ('-' for stdout, the default)"
    )
    parser.add_argument(
        "--device",
        default="V100",
        choices=sorted(DEVICES),
        help="device spec the model prices plans on",
    )
    parser.add_argument(
        "--sweep",
        default="batch",
        choices=sorted(SWEEPS),
        help="pivot to emit: batch (Fig 8/9), table (Fig 13/14), prf (Table 5)",
    )
    args = parser.parse_args(argv)

    with open(args.bench_json) as handle:
        payload = json.load(handle)
    if "results" not in payload:
        print(f"{args.bench_json}: not a bench artifact (no 'results')", file=sys.stderr)
        return 2
    rows_fn, columns = SWEEPS[args.sweep]
    rows = rows_fn(payload["results"], device_name=args.device)
    if not rows:
        print(f"{args.bench_json}: no eval-family rows to sweep", file=sys.stderr)
        return 2

    handle = sys.stdout if args.out == "-" else open(args.out, "w", newline="")
    try:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    finally:
        if handle is not sys.stdout:
            handle.close()
            print(f"wrote {len(rows)} sweep rows -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
