#!/usr/bin/env python
"""Benchmark the DPF hot path and emit BENCH_dpf.json.

Usage:
    PYTHONPATH=src python scripts/bench.py                # full grid
    PYTHONPATH=src python scripts/bench.py --smoke        # CI smoke grid
    PYTHONPATH=src python scripts/bench.py --prfs aes128 --log-domains 16
    PYTHONPATH=src python scripts/bench.py --list         # show the grid, run nothing
    PYTHONPATH=src python scripts/bench.py --filter pir_roundtrip

``--filter`` keeps only the cases whose one-line description contains
the given substring (case-insensitive; repeatable — a case runs if any
filter matches), which is how you iterate locally without paying for
the full 100+-case grid.  ``--list`` prints the selected cases and
exits without running anything.

The emitted JSON (schema in ``repro.bench.harness``) is the perf
trajectory every future optimisation PR is compared against.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    default_grid,
    run_grid,
    smoke_grid,
    write_results,
)
from repro.bench.harness import (  # noqa: E402
    BACKEND_SELECT,
    INGEST,
    PIR_ROUNDTRIP,
    REFERENCE,
    SERVING,
)
from repro.crypto import available_prfs  # noqa: E402
from repro.gpu import available_strategies  # noqa: E402


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long CI grid")
    parser.add_argument("--out", default="BENCH_dpf.json", help="output JSON path")
    parser.add_argument(
        "--prfs", nargs="+", choices=available_prfs(), help="restrict the PRF axis"
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        choices=[
            REFERENCE,
            INGEST,
            PIR_ROUNDTRIP,
            SERVING,
            BACKEND_SELECT,
            *available_strategies(),
        ],
        help="restrict the strategy axis",
    )
    parser.add_argument("--batches", nargs="+", type=int, help="batch sizes")
    parser.add_argument(
        "--log-domains", nargs="+", type=int, help="table size exponents"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed reps per case")
    parser.add_argument(
        "--filter",
        action="append",
        metavar="SUBSTRING",
        help="run only cases whose description contains SUBSTRING "
        "(case-insensitive; repeatable, any match keeps the case)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the selected cases and exit without running",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity check against the reference evaluator",
    )
    parser.add_argument("--quiet", action="store_true", help="no per-case progress")
    return parser.parse_args(argv)


def select_cases(args: argparse.Namespace) -> list:
    """The case grid after axis restrictions and --filter."""
    if args.smoke:
        cases = smoke_grid()
    else:
        kwargs = {}
        if args.prfs:
            kwargs["prfs"] = args.prfs
        if args.strategies:
            kwargs["strategies"] = args.strategies
        if args.batches:
            kwargs["batches"] = args.batches
        if args.log_domains:
            kwargs["log_domains"] = args.log_domains
        cases = default_grid(repeats=args.repeats, **kwargs)
    if args.filter:
        needles = [f.lower() for f in args.filter]
        cases = [
            case
            for case in cases
            if any(needle in case.describe().lower() for needle in needles)
        ]
    return cases


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    cases = select_cases(args)

    if args.list:
        for case in cases:
            print(case.describe())
        families: dict[str, int] = {}
        for case in cases:
            family = (
                case.strategy
                if case.strategy
                in (REFERENCE, INGEST, PIR_ROUNDTRIP, SERVING, BACKEND_SELECT)
                else "eval"
            )
            families[family] = families.get(family, 0) + 1
        breakdown = ", ".join(
            f"{family}={count}" for family, count in sorted(families.items())
        )
        print(f"{len(cases)} cases selected ({breakdown})")
        return 0
    if not cases:
        # Exit 2 (usage error), and before any output file is touched —
        # a typo'd --filter must never overwrite a good run with an
        # empty one.
        print("no cases match the given filters", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(f"  {line}", flush=True)
    print(f"running {len(cases)} benchmark cases -> {args.out}")
    results = run_grid(cases, verify=not args.no_verify, progress=progress)
    write_results(results, args.out)

    print(f"\n{'prf':12s} {'strategy':18s} {'ingest':8s} {'B':>3s} {'L':>8s} "
          f"{'ms':>9s} {'QPS':>10s} {'ns/blk':>8s} {'peak MiB':>9s}")
    for r in results:
        line = (
            f"{r.prf:12s} {r.strategy:18s} {r.ingest:8s} {r.batch:>3d} "
            f"{r.domain_size:>8d} {r.seconds * 1e3:>9.2f} {r.qps:>10.1f} "
            f"{r.ns_per_prf_block:>8.1f} {r.peak_mem_bytes / 2**20:>9.2f}"
        )
        if r.strategy == SERVING:
            load = f"{r.offered_qps:g}" if r.offered_qps > 0 else "burst"
            line += (
                f"  load={load} slo={r.slo_ms:g}ms "
                f"p50={r.p50_ms:.2f}ms p99={r.p99_ms:.2f}ms"
            )
            if r.shards:
                line += f" shards={r.shards}x{r.replicas}"
                if r.ejections or r.failovers:
                    line += f" ejections={r.ejections} failovers={r.failovers}"
            if r.plan_cache:
                line += (
                    f" cache={r.plan_cache_hits}h/{r.plan_cache_misses}m"
                    f" overlap={r.overlap_flushes}"
                )
            if r.procs:
                line += f" procs={r.procs}"
            if r.stage_p99_ms:
                stages = " ".join(
                    f"{stage}={p99:.2f}"
                    for stage, p99 in r.stage_p99_ms.items()
                )
                line += f"\n{'':14s}stage p99 ms: {stages}"
        if r.strategy == BACKEND_SELECT:
            line += f"  backend={r.backend} (modeled)"
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
